#!/usr/bin/env python
"""Regenerate the checked-in scenario-matrix baseline.

Run after an *intentional* performance change so the gate compares
future PRs against the new reality::

    PYTHONPATH=src python scripts/refresh_baseline.py

The baseline is the full default matrix at the CI scale (50k points,
5 repeats) — the exact configuration ``repro bench --check`` replays.
Before overwriting, the fresh run is gated against the existing
baseline so the refresh prints what it is about to absorb; pass
``--force`` to skip that preview (e.g. on a brand-new machine where
the old baseline cannot be reproduced).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                        "BENCH_matrix.json")
POINTS = 50_000
REPEATS = 5


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=POINTS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out", default=BASELINE)
    parser.add_argument("--force", action="store_true",
                        help="skip the diff against the old baseline")
    args = parser.parse_args(argv)

    from repro.bench import (
        SchemaError,
        compare_artifacts,
        load_artifact,
        run_matrix,
        write_artifact,
    )

    fresh = run_matrix(points=args.points, repeats=args.repeats,
                       progress=lambda msg: print(msg, flush=True))
    if not args.force and os.path.exists(args.out):
        try:
            old = load_artifact(args.out, kind="matrix")
            print("--- diff vs the baseline being replaced ---")
            print(compare_artifacts(fresh, old).render())
        except SchemaError as exc:
            print("old baseline not comparable (%s); replacing" % exc)
    write_artifact(args.out, fresh)
    print("wrote %d cells to %s" % (len(fresh["rows"]), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
