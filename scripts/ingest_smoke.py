"""End-to-end streaming ingest smoke: serve, torture-stream, verify.

CI runs this after the trace smoke as a "does streaming ingest actually
work over the wire" check:

1. a live server is booted over an empty store (tile cache on, a small
   ingest queue so backpressure is actually exercised);
2. a seeded torture stream (out-of-order, late and duplicate batches)
   is POSTed to ``/ingest``, retrying 429 sheds losslessly, while a
   ``/live`` long-poll follows the applied ranges;
3. the queue is drained and the store is checked **byte-identical** to
   the generator's ground truth (the sorted last-write-wins union) and
   **pixel-identical** to a bulk load of that union;
4. the server stops gracefully and the reopened store still matches
   (the recovery contract covers streamed data too).

Exits non-zero on any violation.

Usage: PYTHONPATH=src python scripts/ingest_smoke.py
"""

import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

from repro.backoff import Backoff
from repro.core import M4UDFOperator
from repro.datasets import generate_torture
from repro.server import ReproClient, ServerConfig, start_server
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine

SERIES = "torture"


def _storage_config():
    return StorageConfig(avg_series_point_number_threshold=500,
                         tile_cache_bytes=4 * 1024 * 1024,
                         tile_cache_spans=16)


def main():
    data_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-ingest-smoke-"))
    engine = StorageEngine(data_dir / "db", _storage_config())
    handle = start_server(engine, ServerConfig(
        port=0, quiet=True, ingest_queue_bytes=64 * 1024))
    print("serving on %s" % handle.url)
    client = ReproClient(handle.url)

    stream = generate_torture(n_points=20_000, batch_size=500,
                              out_of_order_fraction=0.1,
                              duplicate_fraction=0.02, max_lag_batches=4,
                              seed=7)
    stats = stream.stats()
    print("stream: %(batches)d batches, %(emitted)d points "
          "(%(out_of_order)d out-of-order, %(duplicates)d duplicates)"
          % stats)

    # Follow the live feed while streaming: the delta ranges must cover
    # every applied point by the time the queue drains.
    live = {"cursor": 0, "events": 0, "resets": 0}
    live_stop = threading.Event()

    def follow():
        while not live_stop.is_set():
            poll = client.live_poll(SERIES, cursor=live["cursor"],
                                    timeout_ms=500)
            if poll["reset"]:
                live["resets"] += 1
            if poll["cursor"] > live["cursor"]:
                live["events"] += 1
                live["cursor"] = poll["cursor"]

    follower = threading.Thread(target=follow, daemon=True)
    follower.start()

    # The client's shared retry loop (jittered backoff, Retry-After as
    # a floor) replaces the old hand-rolled sleep-and-retry here.
    backoff = Backoff(base=0.01, cap=0.1)
    accepted = 0
    for t, v in stream.batches:
        ack = client.ingest_retry(SERIES, t, v, attempts=1000,
                                  backoff=backoff)
        accepted += ack["accepted"]
    print("accepted %d points (%d backpressure retries)"
          % (accepted, client.ingest_retries))
    if accepted != stats["emitted"]:
        print("FAIL: accepted %d != emitted %d"
              % (accepted, stats["emitted"]), file=sys.stderr)
        return 1

    # Drain over the wire: pending bytes must reach zero promptly.
    deadline = time.monotonic() + 30
    while True:
        health = client.healthz()
        if health["ingest_pending_bytes"] == 0:
            break
        if time.monotonic() > deadline:
            print("FAIL: ingest queue did not drain (pending %d bytes)"
                  % health["ingest_pending_bytes"], file=sys.stderr)
            return 1
        time.sleep(0.05)
    live_stop.set()
    follower.join(timeout=5)
    print("drained; healthz: points=%d sheds=%d; live: %d events, "
          "cursor %d" % (health["ingest_points_total"],
                         health["ingest_sheds_total"],
                         live["events"], live["cursor"]))
    if live["events"] == 0:
        print("FAIL: the live feed never reported progress",
              file=sys.stderr)
        return 1

    # Identity: the streamed store equals a bulk load of the sorted
    # last-write-wins union — as merged arrays and as pixels.
    t_exp, v_exp = stream.expected()
    lo, hi = int(t_exp[0]), int(t_exp[-1]) + 1
    merged = M4UDFOperator(engine).merged_series(SERIES, lo, hi)
    if not (np.array_equal(merged.timestamps, t_exp)
            and np.array_equal(merged.values, v_exp)):
        print("FAIL: streamed store diverges from the ground truth "
              "(%d points vs %d expected)"
              % (len(merged.timestamps), len(t_exp)), file=sys.stderr)
        return 1

    with StorageEngine(data_dir / "bulk", _storage_config()) as bulk:
        bulk.create_series(SERIES)
        bulk.write_batch(SERIES, t_exp, v_exp)
        bulk.flush_all()
        m_stream, r_stream = render_chart(engine, SERIES, 256, 96,
                                          t_qs=lo, t_qe=hi)
        m_bulk, r_bulk = render_chart(bulk, SERIES, 256, 96,
                                      t_qs=lo, t_qe=hi)
    if r_stream != r_bulk or not np.array_equal(m_stream, m_bulk):
        print("FAIL: streamed render differs from the bulk-load render",
              file=sys.stderr)
        return 1
    print("identity: merged arrays, M4 result and %dx%d pixels all "
          "match the bulk load" % (256, 96))

    # Graceful stop, then recovery: the reopened store still matches.
    handle.stop()
    engine.close()
    with StorageEngine(data_dir / "db", _storage_config()) as reopened:
        reopened.flush_all()
        merged = M4UDFOperator(reopened).merged_series(SERIES, lo, hi)
        if not (np.array_equal(merged.timestamps, t_exp)
                and np.array_equal(merged.values, v_exp)):
            print("FAIL: reopened store diverges from the ground truth",
                  file=sys.stderr)
            return 1
    print("OK: streamed, drained, verified and recovered "
          "(%d unique points)" % len(t_exp))
    return 0


if __name__ == "__main__":
    sys.exit(main())
