"""End-to-end server smoke: build a store, serve it, load-test it.

CI runs this after the unit suites as a "does the whole stack actually
serve traffic" check: a tiny store is built through the public engine
API, a real server boots on an ephemeral port, one closed-loop loadgen
burst runs against it, and the process exits non-zero unless the burst
completed requests and the server drained cleanly (parseable
``obs.json`` included).

Usage: PYTHONPATH=src python scripts/server_smoke.py
"""

import json
import pathlib
import sys
import tempfile

import numpy as np

from repro.server import ReproClient, ServerConfig, start_server
from repro.server.workload import SessionWorkload
from repro.storage import StorageConfig, StorageEngine


def main():
    data_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    engine = StorageEngine(
        data_dir / "db",
        StorageConfig(avg_series_point_number_threshold=500))
    t = np.arange(20_000, dtype=np.int64) * 7
    engine.create_series("smoke")
    engine.write_batch("smoke", t, np.sin(t / 211.0))
    engine.flush_all()

    handle = start_server(engine, ServerConfig(port=0, quiet=True))
    print("serving on %s" % handle.url)
    client = ReproClient(handle.url)
    assert client.healthz()["status"] == "ok"

    workload = SessionWorkload(handle.url, width=128, seed=0,
                               timeout_ms=5000)
    report = workload.run(mode="closed", users=4, duration=2.0)
    print(report.render())

    handle.stop()
    engine.close()
    snapshot = json.loads((data_dir / "db" / "obs.json").read_text())

    if report.ok == 0 or report.throughput <= 0:
        print("FAIL: no completed requests", file=sys.stderr)
        return 1
    if report.errors:
        print("FAIL: %d transport/server errors" % report.errors,
              file=sys.stderr)
        return 1
    if "metrics" not in snapshot:
        print("FAIL: obs.json missing metrics section", file=sys.stderr)
        return 1
    print("OK: %.1f req/s, obs.json intact" % report.throughput)
    return 0


if __name__ == "__main__":
    sys.exit(main())
