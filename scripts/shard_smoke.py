"""End-to-end shard smoke: serve a 4-shard store, kill one, stay up.

CI runs this after the unit suites as a "does the sharded stack serve
traffic and survive a worker crash" check:

1. a 4-shard store is built through :func:`repro.shard.open_store`
   and loaded with eight series (the crc32 placement spreads them);
2. a real server boots on an ephemeral port and takes one closed-loop
   loadgen burst;
3. one shard worker is SIGKILLed — queries for its series must answer
   HTTP 200 with ``X-Repro-Degraded``/``X-Repro-Shard-Down`` headers
   (not hang, not 500), ``/healthz`` must flip to ``degraded`` with
   the dead worker named, and series on live shards must keep
   answering real rows;
4. the server drains cleanly.

Exit status is non-zero on any violation.

Usage: PYTHONPATH=src python scripts/shard_smoke.py
"""

import pathlib
import os
import signal
import sys
import tempfile
import time

import numpy as np

from repro.server import ReproClient, ServerConfig, start_server
from repro.server.workload import SessionWorkload
from repro.shard import open_store
from repro.storage import StorageConfig

N_SHARDS = 4
SQL = "SELECT M4(v) FROM %s GROUP BY SPANS(64)"


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    return 1


def main():
    data_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-shard-smoke-"))
    engine = open_store(str(data_dir / "db"), StorageConfig(),
                        shards=N_SHARDS)
    names = ["root.smoke%02d" % i for i in range(8)]
    for seed, name in enumerate(names):
        t = np.arange(10_000, dtype=np.int64) * 7
        engine.create_series(name)
        engine.write_batch(name, t, np.sin(t / (101.0 + seed)))
    engine.flush_all()
    spread = {engine.series_shard(n) for n in names}
    print("store: %d series over shards %s" % (len(names), sorted(spread)))

    handle = start_server(engine, ServerConfig(port=0, quiet=True))
    print("serving on %s" % handle.url)
    try:
        client = ReproClient(handle.url)
        health = client.healthz()
        if health["status"] != "ok":
            return fail("initial healthz is %r" % health["status"])
        if health["shards"] != {"total": N_SHARDS, "alive": N_SHARDS}:
            return fail("unexpected shard census %r" % health["shards"])

        report = SessionWorkload(handle.url, width=128, seed=0,
                                 timeout_ms=5000) \
            .run(mode="closed", users=4, duration=2.0)
        print(report.render())
        if report.ok == 0 or report.errors:
            return fail("loadgen burst: ok=%d errors=%d"
                        % (report.ok, report.errors))

        victim = engine.series_shard(names[0])
        print("killing shard %d (pid %d)"
              % (victim, engine.shard_pids()[victim]))
        os.kill(engine.shard_pids()[victim], signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victim in engine.alive_shards():
            if time.monotonic() > deadline:
                return fail("router never noticed the dead shard")
            time.sleep(0.05)

        response = client.query_response(SQL % names[0])
        if response.status != 200:
            return fail("dead-shard query answered %d, wanted a "
                        "degraded 200" % response.status)
        if response.headers.get("X-Repro-Degraded") != "1" \
                or response.headers.get("X-Repro-Shard-Down") \
                != str(victim):
            return fail("degraded headers missing: %r"
                        % dict(response.headers))
        if response.json()["rows"]:
            return fail("dead-shard query returned rows")
        print("dead-shard query: degraded 200, shard %s flagged"
              % response.headers["X-Repro-Shard-Down"])

        survivor = next(n for n in names
                        if engine.series_shard(n) != victim)
        rows = client.query(SQL % survivor)["rows"]
        if not rows:
            return fail("live shard stopped answering")
        print("live-shard query: %d rows from %s" % (len(rows), survivor))

        health = client.healthz()
        if health["status"] != "degraded":
            return fail("healthz still %r after crash" % health["status"])
        if health["workers"].get("shard-%02d" % victim) is not False:
            return fail("dead worker not named in healthz")
        if health["shards"]["alive"] != N_SHARDS - 1:
            return fail("alive census %r" % health["shards"])
        print("healthz: degraded, %d/%d shards alive"
              % (health["shards"]["alive"], N_SHARDS))
    finally:
        handle.stop()
        engine.close()

    print("OK: sharded server served, degraded cleanly, drained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
