"""Convert pre-schema BENCH_*.json artifacts to the versioned schema.

Usage::

    PYTHONPATH=src python scripts/convert_bench_artifacts.py [paths...]

With no arguments, converts the four standing artifacts under
``benchmarks/`` in place.  Already-valid artifacts are left untouched.
"""

from __future__ import annotations

import os
import sys

from repro.bench.convert import main

_BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")

_DEFAULTS = [os.path.join(_BENCH_DIR, name)
             for name in ("BENCH_parallelism.json", "BENCH_server.json",
                          "BENCH_durability.json", "BENCH_tiles.json")]

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:] or _DEFAULTS))
