"""Regenerate EXPERIMENTS.md: run every paper experiment and record
measured tables next to the paper's expected shapes.

Usage::

    python scripts/generate_experiments.py [output.md]

Scale via REPRO_BENCH_POINTS (default 400,000 points per dataset).
"""

from __future__ import annotations

import os
import platform
import sys
import time

from repro.bench import (
    SchemaError,
    ablation_index,
    ablation_lazy,
    bench_points,
    load_artifact,
    fig1_pixel_accuracy,
    fig8_9_step_regression,
    fig10_vary_w,
    fig11_vary_range,
    fig12_vary_overlap,
    fig13_vary_delete_pct,
    fig14_vary_delete_range,
    headline_scaling,
    table2_datasets,
)

_SECTIONS = (
    ("E1 / Table 2 — dataset summary",
     "The four dataset profiles at bench scale (paper point counts for "
     "reference). The synthetic generators match each dataset's "
     "frequency regularity, gap structure and time skew.",
     lambda: [table2_datasets()]),
    ("E2 / Figures 8-9 — step regression",
     "Paper: timestamps show tilt/level steps; K = 1/median(delta). "
     "Expected: BallSpeed perfectly regular (1 segment, zero error); "
     "KOB learns K = 1/9000 ms with level segments at the gaps.",
     lambda: [fig8_9_step_regression()]),
    ("E3 / Figure 10 — varying the number of time spans w",
     "Paper shape: M4-UDF flat in w; M4-LSM grows with w; the skewed "
     "KOB/RcvTime grow more slowly (short chunks are rarely split). "
     "The chunk-load columns are the substrate-independent signal.",
     lambda: fig10_vary_w()),
    ("E4 / Figure 11 — varying the query time range",
     "Paper shape: both grow with range length; M4-UDF much faster "
     "(it loads every chunk in range), M4-LSM damped (the split-chunk "
     "fraction falls as the range grows).",
     lambda: fig11_vary_range()),
    ("E5 / Figure 12 — varying chunk overlap percentage",
     "Paper shape: M4-UDF grows with overlap (merge CPU); M4-LSM almost "
     "constant (merge-free; overlap only adds index probes for the "
     "BP/TP overwrite checks).",
     lambda: fig12_vary_overlap()),
    ("E6 / Figure 13 — varying delete percentage",
     "Paper shape: M4-UDF nearly constant (binary-search delete "
     "application); M4-LSM trends up mildly but stays small overall.",
     lambda: fig13_vary_delete_pct()),
    ("E7 / Figure 14 — varying delete time range",
     "Paper shape: M4-UDF *falls* as ranges grow (fully-deleted chunks "
     "are skipped before loading — see its chunk-loads column); "
     "M4-LSM stays small (candidates are robust under deletes).",
     lambda: fig14_vary_delete_range()),
    ("E8 / Figures 1, 3, 16 — pixel-exact visualization",
     "Paper claim: M4 is error-free in two-color line charts. "
     "Expected: zero differing pixels for M4; non-zero for every "
     "other reducer.",
     lambda: [fig1_pixel_accuracy()]),
    ("E9 — headline (700 ms for 10 M points at w=1000)",
     "Absolute times are substrate-bound (Java+HDD vs Python); the "
     "reproducible shape is the scaling: M4-UDF grows linearly with "
     "the point count while M4-LSM is governed by w and split chunks, "
     "so the speedup widens with scale.",
     lambda: [headline_scaling()]),
    ("E10 — ablation: step regression index vs binary search",
     "Both indexes answer exactly; step regression predicts the row "
     "from the timestamp, keeping page decodes at least as low.",
     lambda: ablation_index()),
    ("E11 — ablation: lazy loading vs eager reloading",
     "Lazy loading defers chunk reads after failed verifications; "
     "expected: lazy decodes no more points than eager, usually fewer.",
     lambda: ablation_lazy()),
)


# E12-E15 measure whole subsystems (thread pools, a live HTTP server,
# reader pools, a warmed cache) and are too slow / too stateful to
# re-run inline here; their benches write schema-validated JSON
# artifacts into benchmarks/ (see repro.bench.schema), and this script
# renders the checked-in artifacts — anything pre-schema is refused
# (run scripts/convert_bench_artifacts.py once).
# (name, reading, artifact file, regeneration command, column order)
_ARTIFACTS = (
    ("E12 — parallel chunk pipeline (beyond paper)",
     "Output is byte-identical to serial at every worker count (the "
     "`identical` column is the contract); wall-clock speedups are "
     "modest at bench scale because only the GIL-free load+decode "
     "phase parallelizes — the win grows with chunk count.",
     "BENCH_parallelism.json",
     "PYTHONPATH=src python -m pytest -q -s benchmarks/test_parallel_pipeline.py",
     ("operator", "parallelism", "serial_seconds", "parallel_seconds",
      "speedup", "identical")),
    ("E13 — server throughput under load (beyond paper)",
     "Closed-loop throughput roughly doubles from 1 to 64 users while "
     "the admission queue sheds the excess (shed rate up to ~0.64) and "
     "accepted requests stay deadline-bounded; the open-loop overload "
     "cell sheds ~70% instead of queueing unboundedly.",
     "BENCH_server.json",
     "PYTHONPATH=src python -m pytest -q -s benchmarks/test_server_throughput.py",
     ("mode", "users", "rate", "total", "ok", "shed", "shed_rate",
      "timeouts", "throughput", "p50_seconds", "p95_seconds",
      "p99_seconds")),
    ("E14 — durability tax: read-side CRC verification (beyond paper)",
     "Cold full-read pays the hashing once (~12% worst case); pooled "
     "readers verify each payload once per lifetime, so the M4-LSM "
     "path — the one the paper's workload exercises — is ~2% cold and "
     "indistinguishable from noise warm.",
     "BENCH_durability.json",
     "PYTHONPATH=src python -m pytest -q -s benchmarks/test_durability_overhead.py",
     ("path", "regime", "verify_off_seconds", "verify_on_seconds",
      "overhead", "target")),
    ("E15 — M4 tile cache on pan/zoom sessions (beyond paper)",
     "A warmed 10-viewport session answers with p50 ~8.9x (BallSpeed) "
     "/ ~7.6x (KOB) faster than uncached M4-LSM, byte-identical on "
     "every viewport; even the cold filling pass wins ~2x because "
     "later viewports reuse tiles computed for earlier ones.",
     "BENCH_tiles.json",
     "PYTHONPATH=src python -m pytest -q -s benchmarks/test_tile_cache_speedup.py",
     ("pass", "viewports", "p50_seconds", "total_seconds",
      "p50_speedup", "tile_hits", "tile_misses", "identical")),
)


def _cell(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def _artifact_sections(bench_dir="benchmarks"):
    """Markdown sections for E12-E15, rendered from BENCH_*.json."""
    lines = []
    for title, reading, artifact, command, columns in _ARTIFACTS:
        path = os.path.join(bench_dir, artifact)
        lines.append("## %s" % title)
        lines.append("")
        lines.append("Regenerated by `%s` → `benchmarks/%s` (rendered "
                     "from the checked-in artifact, not re-run here)."
                     % (command, artifact))
        lines.append("")
        if not os.path.exists(path):
            lines.append("_Artifact `%s` not found — run the bench "
                         "above to produce it._" % artifact)
            lines.append("")
            continue
        lines.append("**Reading:** %s" % reading)
        lines.append("")
        rows = load_artifact(path)["rows"]
        groups = {}
        for row in rows:
            groups.setdefault(row.get("experiment", title), []).append(row)
        for experiment, group in groups.items():
            lines.append("### %s" % experiment)
            lines.append("")
            lines.append("| " + " | ".join(columns) + " |")
            lines.append("|" + "---|" * len(columns))
            for row in group:
                lines.append("| " + " | ".join(_cell(row.get(c))
                                               for c in columns) + " |")
            lines.append("")
    return lines


def _matrix_section(bench_dir="benchmarks"):
    """The E16 scenario-matrix section, from BENCH_matrix.json.

    Unlike the one-axis paper sweeps above, the matrix crosses the
    axes (cardinality x overlap x delete x operator x parallelism x
    tile cache); the artifact doubles as the CI regression-gate
    baseline (``repro bench --check``), so the numbers printed here
    are exactly the numbers future PRs are gated against.
    """
    path = os.path.join(bench_dir, "BENCH_matrix.json")
    lines = ["## E16 — scenario matrix (beyond paper; the CI "
             "regression-gate baseline)", ""]
    lines.append(
        "Regenerated by `PYTHONPATH=src python scripts/"
        "refresh_baseline.py` → `benchmarks/BENCH_matrix.json`; gated "
        "cells (✓) fail `repro bench --check` on a >20% p50 "
        "regression (noise-floored) or *any* I/O-counter regression.")
    lines.append("")
    if not os.path.exists(path):
        lines.append("_Artifact `BENCH_matrix.json` not found — run "
                     "`repro bench --matrix` to produce it._")
        lines.append("")
        return lines
    doc = load_artifact(path, kind="matrix")
    meta = doc["meta"]
    lines.append("**Substrate:** %s points/series, git `%s`, %s." % (
        "{:,}".format(meta["points"]), meta["git_sha"],
        meta["machine_id"]))
    lines.append("")
    columns = ("cell", "gate", "p50 (s)", "p99 (s)", "chunk loads",
               "pages decoded", "points decoded", "cache hits",
               "identity")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "---|" * len(columns))
    for row in doc["rows"]:
        if row.get("ingest"):
            continue  # streaming cells are rendered in E17
        identity = ("ok" if row["identity"]["equal"] else "MISMATCH") \
            if row["identity"]["checked"] else "(reference)"
        lines.append("| `%s` | %s | %s | %s | %d | %d | %d | %d | %s |"
                     % (row["id"], "✓" if row["gate"] else "",
                        _cell(row["wall"]["p50_seconds"]),
                        _cell(row["wall"]["p99_seconds"]),
                        row["io"].get("chunk_loads", 0),
                        row["io"].get("pages_decoded", 0),
                        row["io"].get("points_decoded", 0),
                        row["io"].get("cache_hits", 0), identity))
    lines.append("")
    lines.append(
        "**Reading:** M4-LSM's chunk loads scale with w (per-span "
        "lazy loads) while M4-UDF's scale with the store; overlap "
        "moves merge cost onto M4-UDF and index probes onto M4-LSM; "
        "deletes barely move either; parallelism never changes a "
        "counter (pure I/O reordering); the warmed tile cache "
        "answers eligible viewports with zero chunk loads.  "
        "Cardinality 8/32 cells show query cost is flat in store "
        "series count while open/prepare cost is not.")
    lines.append("")
    return lines


def _ingest_section(bench_dir="benchmarks"):
    """The E17 streaming-ingest section, from the same matrix artifact.

    Renders the ``ingest=`` cells: queries timed *while* a background
    pump streams writes into a dedicated series through the bounded
    ingest queue.  The sustained cells document dashboards-during-
    ingest cost; the late-skew cells exercise the out-of-order
    invalidation fallback; the overload cell documents the
    backpressure contract (offered rate above the queue budget must
    shed, never queue unboundedly).
    """
    path = os.path.join(bench_dir, "BENCH_matrix.json")
    lines = ["## E17 — queries under streaming ingest (beyond paper)",
             ""]
    lines.append(
        "Part of the scenario matrix above (same artifact, same "
        "refresh command); cells whose id carries `ingest=RATE;"
        "skew=...` run their timed queries while an in-process pump "
        "streams that many points/s into a dedicated `ingest-feed` "
        "series through the bounded ingest queue "
        "(`repro.ingest.IngestController`).")
    lines.append("")
    if not os.path.exists(path):
        lines.append("_Artifact `BENCH_matrix.json` not found — run "
                     "`repro bench --matrix` to produce it._")
        lines.append("")
        return lines
    doc = load_artifact(path, kind="matrix")
    rows = [row for row in doc["rows"] if row.get("ingest")]
    if not rows:
        lines.append("_No ingest cells in the checked-in artifact — "
                     "refresh it to populate this section._")
        lines.append("")
        return lines
    columns = ("cell", "gate", "p50 (s)", "p99 (s)", "offered pts/s",
               "applied pts", "sheds", "late batches", "identity")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "---|" * len(columns))
    for row in rows:
        ingest = row["ingest"]
        identity = ("ok" if row["identity"]["equal"] else "MISMATCH") \
            if row["identity"]["checked"] else "(reference)"
        lines.append("| `%s` | %s | %s | %s | %d | %d | %d | %d | %s |"
                     % (row["id"], "✓" if row["gate"] else "",
                        _cell(row["wall"]["p50_seconds"]),
                        _cell(row["wall"]["p99_seconds"]),
                        ingest["offered_rate"], ingest["points"],
                        ingest["sheds"], ingest["late_batches"],
                        identity))
    lines.append("")
    lines.append(
        "**Reading:** query results stay byte-identical to the idle "
        "reference while ingest runs (the pump's writes never touch "
        "the queried series); sustained rates shed nothing; only the "
        "overload cell — offered well above the queue budget — sheds, "
        "which is the 429/Retry-After contract doing its job.  The "
        "tiled cells keep their zero-chunk-load warm path because "
        "tail appends to another series dirty no shared tiles.")
    lines.append("")
    return lines


def _replication_section(bench_dir="benchmarks"):
    """The E18 replication section, from BENCH_replication.json."""
    path = os.path.join(bench_dir, "BENCH_replication.json")
    lines = ["## E18 — replication lag and failover recovery "
             "(beyond paper)", ""]
    lines.append(
        "Regenerated by `PYTHONPATH=src python -m pytest -q -s "
        "benchmarks/test_replication_lag.py` → "
        "`benchmarks/BENCH_replication.json`.  Real primary/standby "
        "server pairs: paced streams measure shipper lag per ingest "
        "rate (`ack=queued` lets lag accumulate; `ack=replicated` "
        "makes every ack wait for the ship), then a short-lease pair "
        "loses its primary and the standby auto-promotes.")
    lines.append("")
    if not os.path.exists(path):
        lines.append("_Artifact `BENCH_replication.json` not found — "
                     "run the bench above to produce it._")
        lines.append("")
        return lines
    rows = load_artifact(path, kind="replication")["rows"]
    columns = ("scenario", "ack_mode", "rate_points_per_s", "points",
               "achieved_points_per_s", "lag_records_p95",
               "final_lag_records", "catchup_seconds",
               "recovery_seconds", "identical")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "---|" * len(columns))
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(c))
                                       for c in columns) + " |")
    lines.append("")
    lines.append(
        "**Reading:** record lag stays in the single digits up to the "
        "highest paced rate and always drains to zero after the "
        "stream (the `identical` column is the fingerprint check — "
        "replication is exact, not approximate); the replicated-ack "
        "cell holds lag at zero by construction; lease-based "
        "auto-promotion turns the standby writable in well under the "
        "ten-second gate (sub-second at bench scale).")
    lines.append("")
    return lines


def _shards_section(bench_dir="benchmarks"):
    """The E19 shard-scaling section, from BENCH_shards.json."""
    path = os.path.join(bench_dir, "BENCH_shards.json")
    lines = ["## E19 — shard-per-core scaling (beyond paper)", ""]
    lines.append(
        "Regenerated by `PYTHONPATH=src python -m pytest -q -s "
        "benchmarks/test_shard_scaling.py` → "
        "`benchmarks/BENCH_shards.json` (or `repro bench "
        "--shards-sweep`).  One logical store is split across "
        "process-backed engine shards (`crc32(series) mod N` "
        "placement, pinned in `shards.json`); a real server "
        "scatter-gathers the E13 closed-loop session workload over "
        "them.  The `identical` column asserts that query rows *and* "
        "rendered PBM bytes at every shard count match a pre-shard "
        "single-engine reference byte-for-byte on all four Table 2 "
        "datasets.")
    lines.append("")
    if not os.path.exists(path):
        lines.append("_Artifact `BENCH_shards.json` not found — run "
                     "the bench above to produce it._")
        lines.append("")
        return lines
    doc = load_artifact(path, kind="shards")
    meta = doc["meta"]
    lines.append("**Substrate:** %s points/series, git `%s`, %s "
                 "(**%d CPUs** — the ≥2x-at-4-shards gate only "
                 "applies on ≥4 CPUs)."
                 % ("{:,}".format(meta["points"]), meta["git_sha"],
                    meta["machine_id"], meta["cpu_count"]))
    lines.append("")
    columns = ("shards", "mode", "users", "total", "ok", "throughput",
               "p50_seconds", "p95_seconds", "speedup_vs_1",
               "identical")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "---|" * len(columns))
    for row in doc["rows"]:
        lines.append("| " + " | ".join(_cell(row.get(c))
                                       for c in columns) + " |")
    lines.append("")
    lines.append(
        "**Reading:** identity holds at every shard count — sharding "
        "changes *where* a series lives, never *what* a query "
        "answers.  Throughput scaling is substrate-bound: each shard "
        "is a full engine in its own process, so aggregate throughput "
        "grows with shard count until the machine runs out of cores "
        "(on a single-core container the sweep is flat and only the "
        "identity half gates; CI's 4-vCPU runners enforce the "
        "≥2x-at-4-shards criterion).")
    lines.append("")
    return lines


def main(out_path="EXPERIMENTS.md"):
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerated by `python scripts/generate_experiments.py` "
        "(also covered by `pytest benchmarks/ --benchmark-only`, which "
        "asserts each shape).",
        "",
        "* scale: **%d points per dataset** (REPRO_BENCH_POINTS; paper "
        "ran 1.3M-10M)" % bench_points(),
        "* substrate: pure-Python engine, %s, Python %s"
        % (platform.machine(), platform.python_version()),
        "* chunks of 1000 points, compaction off (paper Table 4)",
        "",
        "Latency columns are wall-clock seconds of this substrate and "
        "are only meaningful *relative to each other*; the chunk-load / "
        "page-decode / probe columns are substrate-independent and are "
        "the primary evidence of shape reproduction.",
        "",
    ]
    for title, expectation, runner in _SECTIONS:
        print("running: %s" % title, flush=True)
        started = time.perf_counter()
        tables = runner()
        elapsed = time.perf_counter() - started
        lines.append("## %s" % title)
        lines.append("")
        lines.append("**Expected (paper):** %s" % expectation)
        lines.append("")
        for table in tables:
            lines.append(table.render_markdown())
            lines.append("")
        lines.append("_(measured in %.1f s)_" % elapsed)
        lines.append("")
    lines.extend(_artifact_sections())
    lines.extend(_matrix_section())
    lines.extend(_ingest_section())
    lines.extend(_replication_section())
    lines.extend(_shards_section())
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines))
    print("wrote %s" % out_path)


if __name__ == "__main__":
    main(*sys.argv[1:])
