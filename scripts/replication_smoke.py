"""End-to-end replication smoke: kill -9 the primary, promote, verify.

CI runs this after the unit suites as a "does failover actually work"
check: a standby boots in-process, a primary boots as a subprocess
shipping to it with ``ingest_ack="replicated"``, and a torture stream
of sequential batches runs over the wire.  Mid-stream the primary is
SIGKILLed — a genuine ``kill -9``, no drain, no flush — the standby is
promoted, and the process exits non-zero unless:

* an anti-entropy sweep taken while both sides were alive was clean,
* the promoted replica holds exactly a committed batch prefix that
  contains every batch acked ``durability="replicated"``, and
* the promoted node accepts new writes.

Usage: PYTHONPATH=src python scripts/replication_smoke.py
"""

import http.client
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading

import numpy as np

SERIES = "torture"
N_BATCHES = 40
BATCH = 50
KILL_AFTER = 15   # batches acked before the SIGKILL


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def batch_points(k):
    t = np.arange(k * BATCH, (k + 1) * BATCH, dtype=np.int64)
    return t, np.sin(t / 13.0)


def child(argv):
    """Subprocess mode: serve a replicating primary until killed."""
    db, port, standby_url = argv[0], int(argv[1]), argv[2]
    from repro.server import ServerConfig, start_server
    from repro.storage import StorageConfig, StorageEngine
    engine = StorageEngine(db, StorageConfig(
        avg_series_point_number_threshold=500))
    start_server(engine, ServerConfig(
        port=port, quiet=True, replicate_to=(standby_url,),
        ingest_ack="replicated",
        advertise_url="http://127.0.0.1:%d" % port,
        node_id="smoke-primary"))
    print("READY", flush=True)
    threading.Event().wait()


def main():
    from repro.core import M4UDFOperator
    from repro.errors import ReproError
    from repro.server import ReproClient, ServerConfig, start_server
    from repro.storage import StorageConfig, StorageEngine

    data_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-repl-smoke-"))
    standby_port, primary_port = free_port(), free_port()
    standby_url = "http://127.0.0.1:%d" % standby_port
    primary_url = "http://127.0.0.1:%d" % primary_port

    standby_engine = StorageEngine(
        data_dir / "standby",
        StorageConfig(avg_series_point_number_threshold=500))
    standby = start_server(standby_engine, ServerConfig(
        port=standby_port, quiet=True, standby=True,
        advertise_url=standby_url, node_id="smoke-standby"))

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    proc = subprocess.Popen(
        [sys.executable, __file__, "--child", str(data_dir / "db"),
         str(primary_port), standby_url],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    if proc.stdout.readline().strip() != "READY":
        print("FAIL: primary never booted:\n%s" % proc.stderr.read(),
              file=sys.stderr)
        return 1
    print("primary %s (pid %d) -> standby %s"
          % (primary_url, proc.pid, standby_url))

    client = ReproClient(primary_url, timeout=30.0)
    acked = []
    for k in range(N_BATCHES):
        if k == KILL_AFTER:
            report = client.replication_sweep()
            if not report.get("clean"):
                print("FAIL: live sweep not clean: %r" % report,
                      file=sys.stderr)
                return 1
            print("sweep clean at batch %d; kill -9 %d" % (k, proc.pid))
            os.kill(proc.pid, signal.SIGKILL)
        t, v = batch_points(k)
        try:
            ack = client.ingest(SERIES, [int(x) for x in t],
                                [float(x) for x in v])
        except (ReproError, OSError, http.client.HTTPException):
            break
        if ack.get("durability") == "replicated":
            acked.append(k)
    proc.wait(timeout=30)
    if proc.returncode != -signal.SIGKILL:
        print("FAIL: primary exit %s, expected SIGKILL"
              % proc.returncode, file=sys.stderr)
        return 1
    if len(acked) < KILL_AFTER:
        print("FAIL: only %d batches acked before the kill"
              % len(acked), file=sys.stderr)
        return 1

    status = ReproClient(standby_url).promote()
    if status.get("role") != "primary":
        print("FAIL: promotion answered %r" % status, file=sys.stderr)
        return 1
    print("promoted standby: epoch=%s head_seq=%s"
          % (status.get("epoch"), status.get("head_seq")))

    standby_engine.flush_all()
    series = M4UDFOperator(standby_engine, degraded=False) \
        .merged_series(SERIES, 0, N_BATCHES * BATCH)
    state_t = np.asarray(series.timestamps, dtype=np.int64)
    state_v = np.asarray(series.values, dtype=np.float64)
    if state_t.size % BATCH != 0:
        print("FAIL: replica holds a torn batch (%d points)"
              % state_t.size, file=sys.stderr)
        return 1
    m = state_t.size // BATCH
    want_t = np.arange(0, m * BATCH, dtype=np.int64)
    if not (np.array_equal(state_t, want_t)
            and np.array_equal(state_v, np.sin(want_t / 13.0))):
        print("FAIL: replica content diverges from the committed prefix",
              file=sys.stderr)
        return 1
    lower = (max(acked) + 1) if acked else 0
    if m < lower:
        print("FAIL: durability violation — %d batches acked but only "
              "%d survived promotion" % (lower, m), file=sys.stderr)
        return 1

    ack = ReproClient(standby_url).ingest(SERIES, [N_BATCHES * BATCH + 1],
                                          [1.0])
    if ack.get("accepted") != 1:
        print("FAIL: promoted node refused a write: %r" % ack,
              file=sys.stderr)
        return 1

    standby.stop()
    standby_engine.close()
    print("OK: %d/%d batches acked replicated, promoted replica holds "
          "exact prefix of %d batches" % (len(acked), N_BATCHES, m))
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        child(sys.argv[2:])
    else:
        sys.exit(main())
