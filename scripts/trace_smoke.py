"""End-to-end trace smoke: serve, load, fetch a trace, validate it.

CI runs this after the server smoke as a "does request tracing actually
work over the wire" check: a tiny store is served, a short loadgen
burst runs with aggressive trace sampling, then one sampled request's
trace is fetched back by the id the load generator recorded and
validated both as a span tree (admission wait + an engine span under
one root) and as Chrome ``trace_event`` JSON (the exact schema
about:tracing and Perfetto load).  Exits non-zero on any violation.

Usage: PYTHONPATH=src python scripts/trace_smoke.py
"""

import pathlib
import sys
import tempfile

import numpy as np

from repro.server import ReproClient, ServerConfig, start_server
from repro.server.workload import SessionWorkload
from repro.storage import StorageConfig, StorageEngine


def _names(node, out):
    out.append(node["name"])
    for child in node.get("children", ()):
        _names(child, out)
    return out


def _check_chrome(doc):
    """Validate the Chrome trace_event schema; returns a fail reason
    or None."""
    if doc.get("displayTimeUnit") != "ms":
        return "displayTimeUnit is not 'ms'"
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "traceEvents missing or empty"
    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        return "no complete (ph=X) events"
    for event in complete:
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in event:
                return "event %r missing %r" % (event.get("name"), field)
        if event["ts"] < 0 or event["dur"] < 0:
            return "negative timestamp in %r" % event["name"]
    threads = {e["tid"] for e in complete}
    named = {e["tid"] for e in events if e.get("ph") == "M"
             and e.get("name") == "thread_name"}
    if threads - named:
        return "tids without thread_name metadata: %r" % (threads - named)
    return None


def main():
    data_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-trace-smoke-"))
    engine = StorageEngine(
        data_dir / "db",
        StorageConfig(avg_series_point_number_threshold=500,
                      parallelism=2))
    t = np.arange(20_000, dtype=np.int64) * 7
    engine.create_series("smoke")
    engine.write_batch("smoke", t, np.sin(t / 211.0))
    engine.flush_all()

    handle = start_server(engine, ServerConfig(port=0, quiet=True))
    print("serving on %s" % handle.url)
    client = ReproClient(handle.url)

    workload = SessionWorkload(handle.url, width=128, seed=0,
                               timeout_ms=5000, trace_every=3)
    report = workload.run(mode="closed", users=2, duration=1.5)
    print(report.render())
    if report.ok == 0 or report.errors:
        print("FAIL: loadgen burst did not complete cleanly",
              file=sys.stderr)
        return 1

    sampled = [s for s in report.samples if s["sampled"]]
    if not sampled:
        print("FAIL: no sampled requests in %d samples"
              % len(report.samples), file=sys.stderr)
        return 1

    sample = sampled[-1]
    entry = client.trace(sample["request_id"])
    if entry["trace_id"] != sample["trace_id"]:
        print("FAIL: trace id mismatch (%r != %r)"
              % (entry["trace_id"], sample["trace_id"]), file=sys.stderr)
        return 1
    names = _names(entry["root"], [])
    print("trace %s: %d spans: %s"
          % (entry["request_id"], len(names), ", ".join(sorted(set(names)))))
    if names[0] != "request":
        print("FAIL: root span is %r, not 'request'" % names[0],
              file=sys.stderr)
        return 1
    if "admission.queue_wait" not in names:
        print("FAIL: trace has no admission.queue_wait span",
              file=sys.stderr)
        return 1
    if not any(n.startswith(("operator.", "tiles.", "pipeline."))
               for n in names):
        print("FAIL: trace has no engine-level span", file=sys.stderr)
        return 1

    chrome = client.trace(sample["request_id"], fmt="chrome")
    reason = _check_chrome(chrome)
    if reason is not None:
        print("FAIL: invalid Chrome trace: %s" % reason, file=sys.stderr)
        return 1

    listing = client.trace_list(limit=10)
    if not listing["traces"] or listing["store"]["retained"] == 0:
        print("FAIL: trace listing is empty", file=sys.stderr)
        return 1

    handle.stop()
    engine.close()
    print("OK: trace retrieved and Chrome export valid (%d events)"
          % len(chrome["traceEvents"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
