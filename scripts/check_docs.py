"""Documentation health checks, run in CI and by tests/test_docs.py.

Two checks, both cheap and dependency-free:

1. **Markdown link check** — every relative link in the repo's
   markdown files must point at a file (or directory) that exists.
   External links (http/https/mailto) are *not* fetched; docs must
   stay checkable offline.
2. **pydoc smoke** — the public modules must import and render a help
   page, so a broken docstring (or a module broken at import time)
   fails the docs job, not a user's first `help(...)` call.

Usage::

    PYTHONPATH=src python scripts/check_docs.py

Exit code 0 when everything passes, 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MARKDOWN_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/OPERATIONS.md",
)

# Modules whose help() page must render: the public API surface.
PYDOC_MODULES = (
    "repro",
    "repro.cli",
    "repro.core.result",
    "repro.core.tiles",
    "repro.core.tiles_io",
    "repro.core.m4lsm.operator",
    "repro.storage.engine",
    "repro.storage.config",
    "repro.query.session",
    "repro.server.client",
    "repro.server.service",
    "repro.shard",
    "repro.shard.placement",
    "repro.shard.protocol",
    "repro.shard.router",
    "repro.shard.worker",
    "repro.bench.shards",
)

# [text](target) — excluding images' leading ! doesn't matter for
# existence checking, so the pattern keeps it simple.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")


def check_links(root=ROOT, files=MARKDOWN_FILES):
    """Return a list of "file: broken link" problem strings."""
    problems = []
    for rel in files:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            problems.append("%s: file listed in MARKDOWN_FILES is missing"
                            % rel)
            continue
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]   # strip the anchor
            if not target:                     # pure in-page anchor
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                problems.append("%s: broken link -> %s" % (rel, target))
    return problems


def check_pydoc(modules=PYDOC_MODULES):
    """Return a list of "module: error" strings for unrenderable docs."""
    import pydoc

    problems = []
    for name in modules:
        try:
            text = pydoc.render_doc(name, renderer=pydoc.plaintext)
        except Exception as exc:                  # import or doc failure
            problems.append("%s: pydoc failed: %s" % (name, exc))
            continue
        if not text.strip():
            problems.append("%s: pydoc rendered an empty page" % name)
    return problems


def main():
    problems = check_links() + check_pydoc()
    for problem in problems:
        print("docs check: %s" % problem, file=sys.stderr)
    if not problems:
        print("docs check: %d markdown files, %d modules OK"
              % (len(MARKDOWN_FILES), len(PYDOC_MODULES)))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
