"""E6 — Figure 13: query latency vs delete percentage.

Paper shape: M4-UDF is nearly constant (deletes are applied with a cheap
sort-based filter); M4-LSM trends up slightly — more deletes mean more
candidate invalidations and metadata recomputation — but stays small in
absolute terms because each delete range is short relative to a chunk.
"""

import pytest

from repro.bench import fig13_vary_delete_pct, make_operator, roughly_constant

from conftest import get_engine, print_tables

DELETE_PCTS = (0, 10, 20, 30, 40)


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("delete_pct", [0, 40])
def test_query_latency(benchmark, engine_cache, operator, delete_pct):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10,
                          delete_pct=delete_pct)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig13_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig13_vary_delete_pct,
                                kwargs={"delete_pcts": DELETE_PCTS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        udf = table.column("M4-UDF (s)")
        # M4-UDF: delete count barely moves the needle.
        assert roughly_constant(udf, spread=0.6), table.title
        lsm = table.column("M4-LSM (s)")
        # M4-LSM may trend up but "the overall value is small": even at
        # 40% deletes it stays in the ballpark of the merge-everything
        # baseline.
        assert lsm[-1] < max(udf) * 1.5, table.title
