"""E6 — Figure 13: query latency vs delete percentage.

Paper shape: M4-UDF is nearly constant (deletes are applied with a cheap
sort-based filter); M4-LSM trends up slightly — more deletes mean more
candidate invalidations and metadata recomputation — but stays small in
absolute terms because each delete range is short relative to a chunk.

The authoritative signal is the chunk-load counter (deterministic:
short deletes never skip whole chunks); wall-clock shapes are bounded
only through the driver's noise-floor helper over repeat-and-best
timings.
"""

import pytest

from repro.bench import (
    fig13_vary_delete_pct,
    make_operator,
    roughly_constant,
    within_factor,
)

from conftest import get_engine, print_tables

DELETE_PCTS = (0, 10, 20, 30, 40)
REPEATS = 3
# The paper's claim is that M4-LSM's delete overhead "stays small in
# absolute terms": below this bound a latency is small, full stop, and
# cross-operator ratios against a near-noise-floor baseline carry no
# signal (M4-LSM's fixed per-query cost dominates at tiny scales).
SMALL_ABS_SECONDS = 2e-2


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("delete_pct", [0, 40])
def test_query_latency(benchmark, engine_cache, operator, delete_pct):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10,
                          delete_pct=delete_pct)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig13_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig13_vary_delete_pct,
                                kwargs={"delete_pcts": DELETE_PCTS,
                                        "repeats": REPEATS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        # Authoritative: deletes are short relative to a chunk, so
        # M4-UDF's chunk loads stay near-flat across the sweep (a heavy
        # delete can at most empty the odd chunk) — deterministic.
        loads = [float(x) for x in table.column("UDF chunk loads")]
        assert roughly_constant(loads, spread=0.1), table.title
        # Wall-clock, noise-floored over best-of-REPEATS: M4-UDF stays
        # within a small factor of its cheapest point ...
        udf = table.column("M4-UDF (s)")
        assert within_factor(max(udf), min(udf), 2.5), table.title
        # ... and M4-LSM stays in the ballpark of the merge-everything
        # baseline even at 40% deletes — or is simply small in absolute
        # terms (the raised floor makes sub-SMALL_ABS latencies pass).
        lsm = table.column("M4-LSM (s)")
        assert within_factor(lsm[-1], max(udf), 1.5,
                             floor=SMALL_ABS_SECONDS), table.title
