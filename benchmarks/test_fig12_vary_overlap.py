"""E5 — Figure 12: query latency vs chunk overlap percentage.

Paper shape: M4-UDF gets slower as more chunks overlap (more merge CPU,
same I/O); M4-LSM stays nearly constant thanks to the merge-free
candidate framework — overlap only adds cheap index probes for the
BP/TP overwrite checks.

The authoritative signal is the index-lookup counter (deterministic);
wall-clock is only bounded through the driver's noise-floor helper
over repeat-and-best timings.
"""

import pytest

from repro.bench import fig12_vary_overlap, make_operator, within_factor

from conftest import get_engine, print_tables

OVERLAPS = (0, 10, 20, 30, 40)
REPEATS = 3


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("overlap", [0, 40])
def test_query_latency(benchmark, engine_cache, operator, overlap):
    prepared = get_engine(engine_cache, dataset="MF03",
                          overlap_pct=overlap)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig12_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig12_vary_overlap,
                                kwargs={"overlaps": OVERLAPS,
                                        "repeats": REPEATS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        # Authoritative: overlap adds index probes for the BP/TP
        # overwrite checks (deterministic counter).
        lookups = table.column("LSM index lookups")
        assert lookups[-1] >= lookups[0], table.title
        # Merge-free claim, noise-floored over best-of-REPEATS:
        # latency at 40% overlap stays within 3x of the 0% baseline
        # (the paper shows a flat line).
        lsm = table.column("M4-LSM (s)")
        assert within_factor(lsm[-1], lsm[0], 3.0), table.title
