"""E5 — Figure 12: query latency vs chunk overlap percentage.

Paper shape: M4-UDF gets slower as more chunks overlap (more merge CPU,
same I/O); M4-LSM stays nearly constant thanks to the merge-free
candidate framework — overlap only adds cheap index probes for the
BP/TP overwrite checks.
"""

import pytest

from repro.bench import fig12_vary_overlap, make_operator

from conftest import get_engine, print_tables

OVERLAPS = (0, 10, 20, 30, 40)


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("overlap", [0, 40])
def test_query_latency(benchmark, engine_cache, operator, overlap):
    prepared = get_engine(engine_cache, dataset="MF03",
                          overlap_pct=overlap)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig12_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig12_vary_overlap,
                                kwargs={"overlaps": OVERLAPS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        lsm = table.column("M4-LSM (s)")
        # Merge-free claim: latency at 40% overlap stays within 3x of the
        # 0% baseline (the paper shows a flat line; wall clock is noisy,
        # and the index-lookup column shows where the small extra work
        # goes).
        assert lsm[-1] < max(lsm[0], 5e-3) * 3.0, table.title
        lookups = table.column("LSM index lookups")
        assert lookups[-1] >= lookups[0], table.title
