"""E3 — Figure 10: query latency vs the number of time spans w.

Paper shape: M4-UDF is flat in w (it always loads and merges everything)
while M4-LSM grows with w (more spans split more chunks); on the skewed
KOB/RcvTime profiles M4-LSM grows more slowly because many short chunks
are never split.  Each (dataset, operator) pair is benchmarked at a low
and a high w, and the full sweep table is printed and shape-checked.
"""

import pytest

from repro.bench import (
    DATASETS,
    fig10_vary_w,
    make_operator,
    roughly_constant,
)

from conftest import get_engine, print_tables

W_VALUES = (10, 100, 500, 1000, 2000)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("w", [10, 1000])
def test_query_latency(benchmark, engine_cache, dataset, operator, w):
    prepared = get_engine(engine_cache, dataset=dataset, overlap_pct=10)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, w),
        rounds=2, iterations=1)
    assert len(result) == w


def test_fig10_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig10_vary_w,
                                kwargs={"w_values": W_VALUES},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        # M4-UDF: constant in w (its chunk loads don't depend on w).
        udf_loads = table.column("UDF chunk loads")
        assert roughly_constant([float(x) for x in udf_loads], spread=0.05)
        # M4-LSM: chunk loads grow (weakly) with w ...
        lsm_loads = table.column("LSM chunk loads")
        assert lsm_loads[-1] >= lsm_loads[0]
        # ... and never exceed what the UDF loads at the largest w only
        # mildly (split chunks are loaded once per adjoining span).
        assert lsm_loads[0] <= udf_loads[0]
    # Skew claim: KOB/RcvTime's LSM load growth is slower than
    # BallSpeed/MF03's, relative to their chunk counts.
    growth = {}
    for table in tables:
        lsm_loads = table.column("LSM chunk loads")
        udf_loads = table.column("UDF chunk loads")
        growth[table.title] = (lsm_loads[-1] - lsm_loads[0]) \
            / max(udf_loads[0], 1)
    dense = [g for title, g in growth.items()
             if "BallSpeed" in title or "MF03" in title]
    skewed = [g for title, g in growth.items()
              if "KOB" in title or "RcvTime" in title]
    assert min(dense) >= max(skewed) * 0.5  # tolerant ordering check
