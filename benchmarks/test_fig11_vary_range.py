"""E4 — Figure 11: query latency vs query time range length.

Paper shape: both operators get slower on longer ranges, but M4-UDF
grows much faster (every additional chunk is loaded and merged), while
M4-LSM's growth is damped because the fraction of span-split chunks
falls as the range grows.
"""

import pytest

from repro.bench import fig11_vary_range, make_operator

from conftest import get_engine, print_tables

FRACTIONS = (0.0625, 0.125, 0.25, 0.5, 1.0)


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("fraction", [0.0625, 1.0])
def test_query_latency(benchmark, engine_cache, operator, fraction):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    op = make_operator(prepared, operator)
    duration = prepared.t_qe - prepared.t_qs
    t_qe = prepared.t_qs + max(int(duration * fraction), 400)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig11_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig11_vary_range,
                                kwargs={"fractions": FRACTIONS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        udf = table.column("M4-UDF (s)")
        # M4-UDF latency grows materially from the shortest to the
        # longest range (16x more data).
        assert udf[-1] > udf[0] * 2, table.title
        lsm = table.column("M4-LSM (s)")
        # M4-LSM grows strictly slower than M4-UDF, relatively.
        assert (lsm[-1] / max(lsm[0], 1e-9)) \
            < (udf[-1] / max(udf[0], 1e-9)) * 1.5, table.title
