"""E4 — Figure 11: query latency vs query time range length.

Paper shape: both operators get slower on longer ranges, but M4-UDF
grows much faster (every additional chunk is loaded and merged), while
M4-LSM's growth is damped because the fraction of span-split chunks
falls as the range grows.

The authoritative signal is the chunk-load counter (deterministic per
config); wall-clock shapes are asserted only through the driver's
noise-floor helpers over repeat-and-best timings, never from a single
cold run.
"""

import pytest

from repro.bench import (
    WALL_NOISE_FLOOR_SECONDS,
    fig11_vary_range,
    grew_by,
    make_operator,
    wall_ratio,
)

from conftest import get_engine, print_tables

FRACTIONS = (0.0625, 0.125, 0.25, 0.5, 1.0)
REPEATS = 3


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
@pytest.mark.parametrize("fraction", [0.0625, 1.0])
def test_query_latency(benchmark, engine_cache, operator, fraction):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    op = make_operator(prepared, operator)
    duration = prepared.t_qe - prepared.t_qs
    t_qe = prepared.t_qs + max(int(duration * fraction), 400)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig11_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig11_vary_range,
                                kwargs={"fractions": FRACTIONS,
                                        "repeats": REPEATS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        # Authoritative: M4-UDF loads every chunk in range, so a 16x
        # longer range loads materially more chunks (deterministic).
        loads = table.column("UDF chunk loads")
        assert loads[-1] > loads[0] * 4, table.title
        # Wall-clock, noise-floored over best-of-REPEATS: M4-UDF grows
        # with the range ...
        udf = table.column("M4-UDF (s)")
        assert grew_by(udf[-1], udf[0], 2), table.title
        # ... while M4-LSM's relative growth stays damped next to it.
        # Only meaningful when the UDF endpoint clears the noise floor;
        # a sub-floor run carries no growth signal to compare against.
        if udf[-1] > WALL_NOISE_FLOOR_SECONDS:
            lsm = table.column("M4-LSM (s)")
            assert wall_ratio(lsm[-1], lsm[0]) \
                < wall_ratio(udf[-1], udf[0]) * 1.5, table.title
