"""Interactive zooming: the end-user experience behind the paper.

A dashboard session is a sequence of viewport changes.  This bench
measures per-viewport latency of (a) raw M4-LSM queries, (b) the
tile-cached ZoomService (pan reuses tiles), and (c) the merge-everything
baseline — quantifying the paper's "instant visualization" claim as a
user-facing number rather than a single query time.
"""

import pytest

from repro.bench import make_operator
from repro.viz.multiscale import ZoomService

from conftest import get_engine, print_tables
from repro.bench.report import BenchTable

WIDTH = 256


def pan_sequence(t_qs, t_qe, steps=8):
    """A zoom-in followed by pans at the deep level."""
    duration = t_qe - t_qs
    window = duration // 8
    sequence = [(t_qs, t_qe)]
    start = t_qs + duration // 3
    for step in range(steps):
        sequence.append((start, min(start + window, t_qe)))
        start += window // 2
    return sequence


@pytest.mark.parametrize("mode", ["m4lsm", "zoom-service", "m4udf"])
def test_pan_and_zoom_session(benchmark, engine_cache, mode):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    sequence = pan_sequence(prepared.t_qs, prepared.t_qe)

    if mode == "zoom-service":
        service = ZoomService(prepared.engine, prepared.series,
                              tile_spans=WIDTH)

        def run():
            for start, end in sequence:
                service.viewport(start, end, WIDTH)
    else:
        operator = make_operator(prepared, mode)

        def run():
            for start, end in sequence:
                operator.query(prepared.series, start, end, WIDTH)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_zoom_service_cache_table(benchmark, engine_cache):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    table = BenchTable("Interactive zoom: tile cache effectiveness",
                       ["pass", "tile hits", "tile misses"])

    def run():
        service = ZoomService(prepared.engine, prepared.series,
                              tile_spans=WIDTH)
        sequence = pan_sequence(prepared.t_qs, prepared.t_qe)
        for label in ("first", "second"):
            before_hits = service.tile_hits
            before_misses = service.tile_misses
            for start, end in sequence:
                service.viewport(start, end, WIDTH)
            table.add_row(label, service.tile_hits - before_hits,
                          service.tile_misses - before_misses)
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(table)
    hits = table.column("tile hits")
    misses = table.column("tile misses")
    # The second pass over the same session is (nearly) all cache hits.
    assert misses[1] <= 1
    assert hits[1] > hits[0]
