"""Observability overhead: metrics + tracing must stay in the noise.

The obs layer is on by default, so its cost has to be negligible on
headline-style queries.  Spans are only created at phase granularity
(a handful per query) and per-point costs remain plain integer
increments on IoStats, so the expected overhead is well under 5% —
this bench measures it directly by running the same M4-LSM query with
metrics enabled and disabled.
"""

import time

from repro.bench import make_operator, prepare_engine


def _best_latency(metrics_enabled, tmp_path, repeats=5):
    prepared = prepare_engine(
        "MF03", n_points=None, chunk_points=1000, overlap_pct=20,
        data_dir=str(tmp_path / ("db-on" if metrics_enabled else "db-off")))
    engine = prepared.engine
    # Rebuild the engine's obs state in the requested mode.
    engine._metrics.enabled = metrics_enabled
    engine._tracer.enabled = metrics_enabled
    lsm = make_operator(prepared, "m4lsm")
    best = float("inf")
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            lsm.query(prepared.series, prepared.t_qs, prepared.t_qe, 1000)
            best = min(best, time.perf_counter() - started)
    finally:
        prepared.close()
    return best


def test_metrics_overhead_is_small(tmp_path):
    on = _best_latency(True, tmp_path)
    off = _best_latency(False, tmp_path)
    overhead = (on - off) / off
    print("\nobs overhead: on=%.4fs off=%.4fs (%+.2f%%)"
          % (on, off, 100.0 * overhead))
    # Target is < 5%; allow generous slack for machine noise so the
    # bench only trips on a real regression (e.g. per-point spans).
    assert overhead < 0.15


def test_span_creation_cost(benchmark):
    """Microbench: one phase-granularity span round trip."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.storage.iostats import IoStats

    tracer = Tracer(stats=IoStats(), registry=MetricsRegistry())

    def one_span():
        with tracer.span("bench", series="s"):
            pass

    benchmark(one_span)
