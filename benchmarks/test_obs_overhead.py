"""Observability overhead: metrics + tracing must stay in the noise.

The obs layer is on by default, so its cost has to be negligible on
headline-style queries.  Spans are only created at phase granularity
(a handful per query) and per-point costs remain plain integer
increments on IoStats, so the expected overhead is well under 5% —
this bench measures it directly by running the same M4-LSM query with
metrics enabled and disabled.
"""

import threading
import time

from repro.bench import make_operator, prepare_engine


def _best_latency(metrics_enabled, tmp_path, repeats=5):
    prepared = prepare_engine(
        "MF03", n_points=None, chunk_points=1000, overlap_pct=20,
        data_dir=str(tmp_path / ("db-on" if metrics_enabled else "db-off")))
    engine = prepared.engine
    # Rebuild the engine's obs state in the requested mode.
    engine._metrics.enabled = metrics_enabled
    engine._tracer.enabled = metrics_enabled
    lsm = make_operator(prepared, "m4lsm")
    best = float("inf")
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            lsm.query(prepared.series, prepared.t_qs, prepared.t_qe, 1000)
            best = min(best, time.perf_counter() - started)
    finally:
        prepared.close()
    return best


def test_metrics_overhead_is_small(tmp_path):
    on = _best_latency(True, tmp_path)
    off = _best_latency(False, tmp_path)
    overhead = (on - off) / off
    print("\nobs overhead: on=%.4fs off=%.4fs (%+.2f%%)"
          % (on, off, 100.0 * overhead))
    # Target is < 5%; allow generous slack for machine noise so the
    # bench only trips on a real regression (e.g. per-point spans).
    assert overhead < 0.15


def test_detailed_request_tracing_overhead(tmp_path):
    """A detailed per-request trace (the /trace path) must stay cheap.

    Runs the same M4-LSM query bare and under a detailed root span
    (what the HTTP service opens per request).  Detail turns on the
    ambient per-item spans, so this is the *expensive* tracing mode —
    still expected well under the noise floor of a real query.
    """
    prepared = prepare_engine(
        "MF03", n_points=None, chunk_points=1000, overlap_pct=20,
        data_dir=str(tmp_path / "db-traced"))
    engine = prepared.engine
    lsm = make_operator(prepared, "m4lsm")
    try:
        def best(traced, repeats=5):
            out = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                if traced:
                    with engine.tracer.root_span("request",
                                                 endpoint="bench"):
                        lsm.query(prepared.series, prepared.t_qs,
                                  prepared.t_qe, 1000)
                else:
                    lsm.query(prepared.series, prepared.t_qs,
                              prepared.t_qe, 1000)
                out = min(out, time.perf_counter() - started)
            return out

        plain = best(False)
        traced = best(True)
    finally:
        prepared.close()
    overhead = (traced - plain) / plain
    print("\ndetailed-trace overhead: traced=%.4fs plain=%.4fs (%+.2f%%)"
          % (traced, plain, 100.0 * overhead))
    # Generous bound: trips on per-point span regressions, not noise.
    assert overhead < 0.30


def test_profiler_off_is_free(tmp_path):
    """An idle SamplingProfiler must cost literally nothing.

    Off means no sampler thread exists, so the only conceivable cost
    would be in instrumented code — and there is none: the profiler is
    pull-based (``sys._current_frames``), not event-based.  Assert the
    structural facts rather than a noisy timing delta.
    """
    from repro.obs import SamplingProfiler

    profiler = SamplingProfiler()
    assert profiler.stats()["running"] is False
    assert profiler.stats()["samples"] == 0
    before = threading.active_count()
    # Constructing (and never starting) spawns no thread.
    SamplingProfiler(interval=0.001)
    assert threading.active_count() == before


def test_profiler_on_overhead_is_bounded(tmp_path):
    """Sampling at the default 5ms interval must not distort queries."""
    from repro.obs import SamplingProfiler

    prepared = prepare_engine(
        "MF03", n_points=None, chunk_points=1000, overlap_pct=20,
        data_dir=str(tmp_path / "db-profiled"))
    lsm = make_operator(prepared, "m4lsm")
    try:
        def best(repeats=5):
            out = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                lsm.query(prepared.series, prepared.t_qs,
                          prepared.t_qe, 1000)
                out = min(out, time.perf_counter() - started)
            return out

        plain = best()
        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        try:
            profiled = best()
        finally:
            collapsed = profiler.stop()
    finally:
        prepared.close()
    overhead = (profiled - plain) / plain
    print("\nprofiler overhead: on=%.4fs off=%.4fs (%+.2f%%), "
          "%d stacks" % (profiled, plain, 100.0 * overhead,
                         len(collapsed.splitlines())))
    # The sampler holds the GIL only while walking frames; 50% is a
    # disaster threshold, normal readings are single-digit percent.
    assert overhead < 0.50


def test_span_creation_cost(benchmark):
    """Microbench: one phase-granularity span round trip."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.storage.iostats import IoStats

    tracer = Tracer(stats=IoStats(), registry=MetricsRegistry())

    def one_span():
        with tracer.span("bench", series="s"):
            pass

    benchmark(one_span)
