"""E7 — Figure 14: query latency vs delete time range length.

Paper shape: M4-UDF's latency *falls* as the delete range grows, because
fully-deleted chunks are skipped before loading — most visibly on the
skewed KOB/RcvTime profiles where many short chunks are wiped entirely.
M4-LSM stays small throughout (candidate points are robust to deletes).
"""

import pytest

from repro.bench import fig14_vary_delete_range, make_operator

from conftest import get_engine, print_tables

MULTIPLIERS = (0.1, 0.5, 1, 5, 20)


@pytest.mark.parametrize("operator", ["m4udf", "m4lsm"])
def test_query_latency_large_deletes(benchmark, engine_cache, operator):
    prepared = get_engine(engine_cache, dataset="KOB", overlap_pct=10,
                          n_deletes=20, delete_range=10_000_000)
    op = make_operator(prepared, operator)
    result = benchmark.pedantic(
        op.query, args=(prepared.series, prepared.t_qs, prepared.t_qe, 400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_fig14_sweep_shapes(benchmark):
    tables = benchmark.pedantic(fig14_vary_delete_range,
                                kwargs={"range_multipliers": MULTIPLIERS},
                                rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        assert all(table.column("equal")), table.title
        loads = table.column("UDF chunk loads")
        # The skip-fully-deleted-chunks effect: at 20x chunk span the UDF
        # loads strictly fewer chunks than at 0.1x.
        assert loads[-1] < loads[0], table.title
