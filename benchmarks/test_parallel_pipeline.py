"""E12 — parallel chunk pipeline: serial vs parallel wall-clock.

Runs the full serial-vs-parallel sweep (both operators, all four paper
datasets) and writes the wall-clock rows into ``BENCH_parallelism.json``
next to this file, so the speedup numbers survive the run.

The hard assertion is exactness: at any worker count the pipeline's
ordered fan-out must return results *identical* to the serial loop —
the parallelism reorders I/O, never the merge.  Wall-clock speedup is
reported but only loosely checked (decode work releases the GIL via
numpy/zlib, but small bench scales are noisy and single-core CI gains
nothing).
"""

import os

import pytest

from repro.bench import (
    bench_points,
    make_operator,
    new_artifact,
    parallel_speedup,
    prepare_engine,
    write_artifact,
)

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_parallelism.json")


@pytest.mark.parametrize("parallelism", [2, 4])
def test_parallel_results_identical(parallelism):
    """Byte-identical M4 output at any worker count (quick dataset)."""
    with prepare_engine("MF03", n_points=20_000, overlap_pct=20,
                        delete_pct=10,
                        parallelism=parallelism) as parallel, \
            prepare_engine("MF03", n_points=20_000, overlap_pct=20,
                           delete_pct=10) as serial:
        for kind in ("m4udf", "m4lsm"):
            a = make_operator(serial, kind).query(
                serial.series, serial.t_qs, serial.t_qe, 100)
            b = make_operator(parallel, kind).query(
                parallel.series, parallel.t_qs, parallel.t_qe, 100)
            assert a == b, kind


def test_parallel_speedup_sweep(benchmark):
    tables = benchmark.pedantic(
        parallel_speedup, kwargs={"parallelism": 4, "repeats": 2},
        rounds=1, iterations=1)
    print_tables(tables)
    rows = []
    for table in tables:
        assert all(table.column("identical")), table.title
        for operator, serial_s, parallel_s, speedup, identical in zip(
                table.column("operator"), table.column("serial (s)"),
                table.column("parallel (s)"), table.column("speedup"),
                table.column("identical")):
            rows.append({
                "experiment": table.title,
                "operator": operator,
                "parallelism": 4,
                "serial_seconds": float(serial_s),
                "parallel_seconds": float(parallel_s),
                "speedup": float(speedup),
                "identical": bool(identical),
            })
        # Sanity floor: the fan-out must never be catastrophically
        # slower than serial (thread dispatch is cheap next to decode).
        for speedup in table.column("speedup"):
            assert float(speedup) > 0.2, table.title
    write_artifact(RESULT_FILE,
                   new_artifact("parallelism", rows, bench_points()))
    print("wrote %d rows to %s" % (len(rows), RESULT_FILE))
