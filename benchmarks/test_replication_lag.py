"""E18 — replication lag vs ingest rate, failover recovery time.

Runs the paced lag sweep and the auto-promotion cell from
:mod:`repro.bench.replication` against real primary/standby server
pairs and writes ``BENCH_replication.json`` next to this file.

Gated assertions, all from the replication contract rather than from
wall clocks:

* **identity** — every cell's replica content matches the primary's
  (fingerprint-equal after catchup; every committed point present
  after failover);
* **bounded catchup** — the shipper drains to zero lag after each
  stream (``final_lag_records == 0``);
* **bounded recovery** — the lease-based auto-promotion turns the
  standby writable well inside ten seconds (the lease is 0.5s; the
  bound is generous for CI noise).
"""

import os

from repro.bench import (
    bench_points,
    new_artifact,
    replication_lag_and_failover,
    write_artifact,
)

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_replication.json")


def test_replication_lag_and_failover():
    tables, cells = replication_lag_and_failover()
    print_tables(tables)
    [table] = tables
    rows = []
    for cell in cells:
        row = dict(cell, experiment=table.title)
        rows.append(row)
        assert row["identical"], row["scenario"]
        assert row["final_lag_records"] == 0, row
    failover = [r for r in rows if r["scenario"] == "failover"]
    assert failover and failover[0]["recovery_seconds"] < 10.0
    replicated = [r for r in rows if r["scenario"] == "lag"
                  and r["ack_mode"] == "replicated"]
    assert replicated, "missing the replicated-ack lag cell"
    write_artifact(RESULT_FILE,
                   new_artifact("replication", rows, bench_points()))
    print("wrote %d rows to %s" % (len(rows), RESULT_FILE))
