"""E9 — the headline claim: ~700 ms to represent 10 M points in 1000
pixel columns.

Absolute milliseconds are substrate-bound (the paper ran Java on an HDD;
this is Python), so the claim is reproduced as a *scaling series*: at
w=1000 the M4-UDF latency grows linearly with the point count while the
M4-LSM latency is governed by w and the split-chunk count — so the
speedup widens with scale, which is exactly what makes 10M/700ms work in
the deployed system.  Set REPRO_BENCH_POINTS=10000000 to run the full
headline point count.
"""

from repro.bench import bench_points, headline_scaling, make_operator

from conftest import get_engine, print_tables


def test_headline_query_w1000(benchmark, engine_cache):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    lsm = make_operator(prepared, "m4lsm")
    result = benchmark.pedantic(
        lsm.query,
        args=(prepared.series, prepared.t_qs, prepared.t_qe, 1000),
        rounds=3, iterations=1)
    assert len(result) == 1000


def test_headline_scaling_table(benchmark):
    # The headline shape needs points >> w * chunk_size (10M vs 1000
    # spans of 1000-point chunks in the paper); run at least 2.5M here.
    top = max(bench_points(), 2_500_000)
    counts = (top // 10, top // 4, top)
    table = benchmark.pedantic(headline_scaling,
                               kwargs={"point_counts": counts},
                               rounds=1, iterations=1)
    print_tables(table)
    speedups = table.column("speedup")
    # The gap widens with scale: the largest size shows the best speedup
    # (tolerance for wall-clock noise).
    assert speedups[-1] >= speedups[0] * 0.8
    # And at the top size M4-LSM decodes a clear minority of the points.
    lsm_points = table.column("LSM points decoded")
    udf_points = table.column("UDF points decoded")
    assert lsm_points[-1] * 2 < udf_points[-1]
