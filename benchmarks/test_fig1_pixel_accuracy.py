"""E8 — Figures 1/3/16: M4's zero pixel error vs the reduction baselines.

The paper's Figure 1 motivates M4: a 1.2M-point series encased in 1000
pixel columns with *no* visual error.  This bench regenerates the claim:
the M4 reduction renders pixel-identically to the full series, while
MinMax / PAA / sampling do not.
"""

import pytest

from repro.bench import fig1_pixel_accuracy
from repro.core.series import TimeSeries
from repro.datasets import PROFILES
from repro.viz import PixelGrid, rasterize

from conftest import print_tables


def test_pixel_error_table(benchmark):
    table = benchmark.pedantic(fig1_pixel_accuracy, rounds=1, iterations=1)
    print_tables(table)
    errors = dict(zip(table.column("Reducer"),
                      table.column("differing pixels")))
    assert errors["M4"] == 0
    for baseline in ("PAA", "Systematic", "Random"):
        assert errors[baseline] > 0, baseline


@pytest.mark.parametrize("dataset", ["BallSpeed", "KOB"])
def test_pixel_error_other_datasets(benchmark, dataset):
    table = benchmark.pedantic(fig1_pixel_accuracy,
                               kwargs={"dataset": dataset,
                                       "n_points": 100_000},
                               rounds=1, iterations=1)
    print_tables(table)
    errors = dict(zip(table.column("Reducer"),
                      table.column("differing pixels")))
    assert errors["M4"] == 0


def test_rasterize_throughput(benchmark):
    t, v = PROFILES["MF03"].generate(50_000)
    series = TimeSeries(t, v, validate=False)
    grid = PixelGrid.for_series(series, 200, 100)
    matrix = benchmark(rasterize, series, grid)
    assert matrix.any()
