"""Extra ablations beyond the paper's figures:

* fused metadata fast path on/off — quantifies the per-span solver
  overhead the fused path removes for uncontested spans;
* streaming (heap) vs vectorized UDF merge — the two MergeReader
  implementations, semantically identical, an order of magnitude apart;
* metadata-accelerated aggregation vs merge-everything aggregation —
  the extension operator built on the same chunk statistics.
"""

import pytest

from repro.bench import make_operator
from repro.core.aggregation import aggregate_lsm, aggregate_udf

from conftest import get_engine, print_tables
from repro.bench.report import BenchTable


@pytest.mark.parametrize("fused", [True, False])
def test_fused_fast_path(benchmark, engine_cache, fused):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=0)
    lsm = make_operator(prepared, "m4lsm", fused_fast_path=fused)
    result = benchmark.pedantic(
        lsm.query, args=(prepared.series, prepared.t_qs, prepared.t_qe,
                         100),
        rounds=2, iterations=1)
    assert len(result) == 100


@pytest.mark.parametrize("streaming", [False, True])
def test_udf_merge_implementations(benchmark, engine_cache, streaming):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10,
                          n_points=100_000)
    udf = make_operator(prepared, "m4udf", streaming=streaming)
    result = benchmark.pedantic(
        udf.query, args=(prepared.series, prepared.t_qs, prepared.t_qe,
                         100),
        rounds=1, iterations=1)
    assert len(result) == 100


@pytest.mark.parametrize("kind", ["lsm", "udf"])
def test_aggregation_operators(benchmark, engine_cache, kind):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    runner = aggregate_lsm if kind == "lsm" else aggregate_udf
    result = benchmark.pedantic(
        runner, args=(prepared.engine, prepared.series, prepared.t_qs,
                      prepared.t_qe, 100, ("count", "avg", "max_value")),
        rounds=2, iterations=1)
    assert sum(c for c in result.column("count") if c) \
        == prepared.timestamps.size


def test_aggregation_io_table(benchmark, engine_cache):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=10)
    table = BenchTable("Ablation: aggregation operators (MF03)",
                       ["operator", "chunk loads", "points decoded"])

    def sweep():
        for name, runner in (("metadata (LSM)", aggregate_lsm),
                             ("merge-all (UDF)", aggregate_udf)):
            before = prepared.engine.stats.snapshot()
            runner(prepared.engine, prepared.series, prepared.t_qs,
                   prepared.t_qe, 100, ("count", "avg"))
            diff = prepared.engine.stats.diff(before)
            table.add_row(name, diff.chunk_loads, diff.points_decoded)
        return table

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_tables(table)
    loads = dict(zip(table.column("operator"),
                     table.column("chunk loads")))
    assert loads["metadata (LSM)"] < loads["merge-all (UDF)"]
