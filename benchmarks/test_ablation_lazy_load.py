"""E11 — ablation: lazy loading vs eager reloading.

The lazy strategy of Sections 3.3/3.4 defers chunk loads after a failed
verification (tightening bounds, trying tied candidates first); the
eager variant reloads the chunk's in-span data immediately.  Under
overlap + delete workloads the lazy strategy decodes strictly fewer
points.
"""

import pytest

from repro.bench import ablation_lazy, make_operator

from conftest import get_engine, print_tables


@pytest.mark.parametrize("lazy", [True, False])
def test_query_latency(benchmark, engine_cache, lazy):
    prepared = get_engine(engine_cache, dataset="MF03", overlap_pct=30,
                          delete_pct=20)
    lsm = make_operator(prepared, "m4lsm", lazy=lazy)
    result = benchmark.pedantic(
        lsm.query, args=(prepared.series, prepared.t_qs, prepared.t_qe,
                         400),
        rounds=2, iterations=1)
    assert len(result) == 400


def test_ablation_table(benchmark):
    tables = benchmark.pedantic(ablation_lazy, rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        by_kind = dict(zip(table.column("strategy"),
                           table.column("points decoded")))
        assert by_kind["lazy"] <= by_kind["eager"], table.title
