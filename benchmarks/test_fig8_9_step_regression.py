"""E2 — Figures 8/9: timestamp-position steps and the learned step
regression parameters per dataset.

The paper's Figure 8 shows the timestamp-position map of one chunk per
dataset; Figure 9 shows the delta distribution that the 3-sigma changing
point rule operates on.  The table prints the fitted K (1/median delta),
segment count and maximum position error; the benchmark measures fit
throughput.
"""

import numpy as np

from repro.bench import fig8_9_step_regression
from repro.core.index import StepRegression
from repro.datasets import PROFILES

from conftest import print_tables


def test_fig8_9_table(benchmark):
    table = benchmark.pedantic(fig8_9_step_regression, rounds=1,
                               iterations=1)
    print_tables(table)
    by_name = {row[0]: row for row in table.rows}
    # BallSpeed: perfectly regular -> one tilt segment, zero error.
    assert by_name["BallSpeed"][3] == 1
    assert by_name["BallSpeed"][4] == 0.0
    # KOB: the 9 s period of Example 3.8.
    assert by_name["KOB"][1] == 9000
    # Gappy datasets produce level segments (odd segment counts > 1).
    assert by_name["KOB"][3] >= 3


def test_fit_throughput_kob(benchmark):
    t, _v = PROFILES["KOB"].generate(20_000)
    regression = benchmark(StepRegression.fit, t[:1000])
    assert regression.n_points == 1000


def test_prediction_throughput(benchmark):
    t, _v = PROFILES["KOB"].generate(2000)
    regression = StepRegression.fit(t)
    probes = np.linspace(t[0], t[-1], 10_000).astype(np.int64)
    out = benchmark(regression.predict_array, probes)
    assert out.size == probes.size
