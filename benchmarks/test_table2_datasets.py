"""E1 — Table 2: dataset summary.

Regenerates the paper's dataset table at the configured bench scale and
benchmarks the generator throughput (datasets are a substrate here, but
their generation cost bounds every other bench's setup time).
"""

from repro.bench import bench_points, table2_datasets
from repro.datasets import PROFILES

from conftest import print_tables


def test_table2_summary(benchmark):
    table = benchmark.pedantic(table2_datasets, rounds=1, iterations=1)
    print_tables(table)
    names = table.column("Dataset")
    assert names == ["BallSpeed", "MF03", "KOB", "RcvTime"]
    counts = table.column("# Points")
    assert all(count == bench_points() for count in counts)


def test_generate_mf03(benchmark):
    t, v = benchmark(PROFILES["MF03"].generate, 100_000)
    assert t.size == 100_000 and v.size == 100_000


def test_generate_rcvtime(benchmark):
    t, _v = benchmark(PROFILES["RcvTime"].generate, 100_000)
    assert t.size == 100_000
