"""E14 — the durability tax: read-side CRC verification overhead.

Every persisted page carries a CRC32 that is verified on read by
default.  This bench runs the two read shapes — a full merged read
(every page decoded) and the M4-LSM reduction — with verification on
and off, cold (fresh readers, every payload re-hashed) and warm
(pooled readers, verify-once cache), on BallSpeed and KOB, and writes
the rows into ``BENCH_durability.json`` next to this file.

The target is < 5% cold overhead and ~0% warm; the hard assertion is
looser (wall-clock noise on shared runners), and results must be
identical in both modes.
"""

import os

from repro.bench import (
    bench_points,
    durability_overhead,
    new_artifact,
    write_artifact,
)

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_durability.json")


def test_checksum_overhead_is_small():
    tables = durability_overhead(repeats=5)
    print_tables(tables)
    rows = []
    for table in tables:
        assert all(table.column("equal")), table.title
        for path, regime, on_s, off_s, overhead in zip(
                table.column("path"), table.column("regime"),
                table.column("verify on (s)"),
                table.column("verify off (s)"), table.column("overhead")):
            rows.append({
                "experiment": table.title,
                "path": path,
                "regime": regime,
                "verify_on_seconds": float(on_s),
                "verify_off_seconds": float(off_s),
                "overhead": float(overhead),
                "target": "< 5% cold, ~0% warm",
            })
            # Generous slack over the 5% target so only a real
            # regression (e.g. per-point hashing) trips the bench.
            assert float(overhead) < 0.25, table.title
    write_artifact(RESULT_FILE,
                   new_artifact("durability", rows, bench_points()))
    print("wrote %d rows to %s" % (len(rows), RESULT_FILE))
