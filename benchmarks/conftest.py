"""Shared infrastructure for the paper-figure benchmarks.

Scale is controlled by the ``REPRO_BENCH_POINTS`` environment variable
(default 400,000 points per dataset — large enough for every paper shape
to show, small enough for the whole suite to run in minutes).  Set it to
10,000,000 to run the paper's headline scale.

Every benchmark prints its figure's full table (the rows the paper
plots); run with ``-s`` to see them, or read the captured output of the
run.  Shape assertions are deliberately tolerant: wall-clock on a laptop
is noisy, and the authoritative signal is the I/O counter columns.
"""

from __future__ import annotations

import pytest

from repro.bench import prepare_engine

_ENGINE_CACHE = {}


@pytest.fixture(scope="session")
def engine_cache():
    """Prepared engines keyed by workload parameters, built once."""
    yield _ENGINE_CACHE
    for prepared in _ENGINE_CACHE.values():
        prepared.close()
    _ENGINE_CACHE.clear()


def get_engine(cache, **kwargs):
    """Fetch or build a prepared engine for a workload spec."""
    key = tuple(sorted(kwargs.items()))
    if key not in cache:
        cache[key] = prepare_engine(**kwargs)
    return cache[key]


def print_tables(tables):
    """Print sweep tables under a visual separator."""
    if not isinstance(tables, (list, tuple)):
        tables = [tables]
    print()
    for table in tables:
        print(table.render())
        print()
