"""E15 — M4 tile cache: warmed pan/zoom sessions vs the uncached path.

Replays one seeded dashboard session trace (overview, zooms, pans,
zoom out) three times per dataset — uncached M4-LSM, tile cache cold,
tile cache warm — and writes the per-pass p50s into
``BENCH_tiles.json`` next to this file.

Two hard assertions, both from the cache's contract:

* **identity** — every viewport's cached answer is byte-identical to
  the uncached operator's (the cache is a pure memoization of span
  aggregates, never an approximation);
* **speedup** — the fully warmed pass answers at >= 2x the uncached
  p50: interior tiles are all hits, so only the two partial edge runs
  per viewport still touch chunks.
"""

import os

import pytest

from repro.bench import (
    bench_points,
    make_operator,
    new_artifact,
    prepare_engine,
    tile_cache_speedup,
    write_artifact,
)
from repro.core.tiles import snap_viewport
from repro.server.workload import zoom_pan_session

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__), "BENCH_tiles.json")


@pytest.mark.parametrize("dataset", ["BallSpeed", "MF03", "KOB", "RcvTime"])
def test_tiled_results_identical(dataset):
    """Byte-identical M4 output across a session trace (quick scale)."""
    import random
    with prepare_engine(dataset, n_points=20_000, overlap_pct=20,
                        delete_pct=10,
                        tile_cache_bytes=16 * 1024 * 1024) as prepared:
        plain = make_operator(prepared, "m4lsm")
        tiled = make_operator(prepared, "m4lsm-tiles")
        rng = random.Random(3)
        for start, end in zoom_pan_session(prepared.t_qs, prepared.t_qe,
                                           rng):
            start, end = snap_viewport(start, end, 256)
            expected = plain.query(prepared.series, start, end, 256)
            # Twice: once computing tiles, once serving them.
            assert tiled.query(prepared.series, start, end, 256) == expected
            assert tiled.query(prepared.series, start, end, 256) == expected


def test_tile_cache_speedup_sweep(benchmark):
    tables = benchmark.pedantic(tile_cache_speedup, rounds=1, iterations=1)
    print_tables(tables)
    rows = []
    for table in tables:
        assert all(table.column("identical")), table.title
        for (label, viewports, p50_s, total_s, speedup, hits, misses,
             identical) in zip(
                table.column("pass"), table.column("viewports"),
                table.column("p50 (s)"), table.column("total (s)"),
                table.column("p50 speedup"), table.column("tile hits"),
                table.column("tile misses"), table.column("identical")):
            rows.append({
                "experiment": table.title,
                "pass": label,
                "viewports": int(viewports),
                "p50_seconds": float(p50_s),
                "total_seconds": float(total_s),
                "p50_speedup": float(speedup),
                "tile_hits": int(hits),
                "tile_misses": int(misses),
                "identical": bool(identical),
            })
        # The acceptance number: a fully warmed cache answers the
        # session at >= 2x the uncached p50.
        warm = [r for r in rows if r["experiment"] == table.title
                and r["pass"] == "tiled warm"]
        assert warm and warm[0]["p50_speedup"] >= 2.0, table.title
    write_artifact(RESULT_FILE,
                   new_artifact("tiles", rows, bench_points()))
    print("wrote %d rows to %s" % (len(rows), RESULT_FILE))
