"""E13 — server throughput under session workloads and overload.

Boots a live ``repro.server`` over BallSpeed and KOB, sweeps
closed-loop users (1/4/16/64) and finishes with an open-loop overload
cell at 4x the measured capacity.  The rows land in
``BENCH_server.json`` next to this file.

The hard assertions encode the serving design's acceptance criteria:

* the overload cell must *shed* (503s) rather than queue without bound;
* the p99 latency of the requests the server accepted must stay
  bounded by the request deadline (plus client-side slack) even while
  the offered load is far above capacity.
"""

import os

from repro.bench import new_artifact, server_throughput, write_artifact

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__), "BENCH_server.json")

TIMEOUT_MS = 1000
# Latency is measured from the *scheduled* arrival on the client; give
# connection setup and thread scheduling some headroom on top of the
# server-enforced deadline.
CLIENT_SLACK_S = 1.0


def test_server_throughput_sweep(benchmark):
    tables = benchmark.pedantic(
        server_throughput,
        kwargs={"n_points": 20_000, "duration": 1.0,
                "timeout_ms": TIMEOUT_MS},
        rounds=1, iterations=1)
    print_tables(tables)
    rows = []
    for table in tables:
        for row in table.rows:
            cells = dict(zip(table.columns, row))
            rows.append({
                "experiment": table.title,
                "mode": cells["mode"],
                "users": int(cells["users"]),
                "rate": (None if cells["rate (req/s)"] == "-"
                         else float(cells["rate (req/s)"])),
                "total": int(cells["total"]),
                "ok": int(cells["ok"]),
                "shed": int(cells["shed"]),
                "timeouts": int(cells["timeout"]),
                "throughput": float(cells["throughput (req/s)"]),
                "p50_seconds": float(cells["p50 (s)"]),
                "p95_seconds": float(cells["p95 (s)"]),
                "p99_seconds": float(cells["p99 (s)"]),
                "shed_rate": float(cells["shed rate"]),
            })
        closed = [dict(zip(table.columns, r)) for r in table.rows
                  if r[0] == "closed"]
        assert closed, table.title
        for cells in closed:
            assert int(cells["ok"]) > 0, table.title
        overload = [dict(zip(table.columns, r)) for r in table.rows
                    if r[0] == "open"]
        assert len(overload) == 1, table.title
        cells = overload[0]
        assert int(cells["shed"]) > 0, \
            "%s: overload must shed, not buffer" % table.title
        assert int(cells["ok"]) > 0, table.title
        assert float(cells["p99 (s)"]) <= (TIMEOUT_MS / 1000.0
                                           + CLIENT_SLACK_S), \
            "%s: accepted-request p99 must stay deadline-bounded" \
            % table.title
    write_artifact(RESULT_FILE, new_artifact("server", rows, 20_000))
    print("wrote %d rows to %s" % (len(rows), RESULT_FILE))
