"""E10 — ablation: step regression chunk index vs binary search.

The step regression index (Section 3.5) predicts a row directly from a
timestamp, so an exists/before/after probe usually decodes one page; the
directory binary search does the same page decode but without the
position prediction.  On gappy data (KOB) the regression's level
segments keep predictions tight where binary search probes more pages.
"""

import numpy as np
import pytest

from repro.bench import ablation_index
from repro.core.index import BinarySearchIndex, ChunkIndex, StepRegression
from repro.datasets import PROFILES

from conftest import print_tables


def _page_source(t, page):
    row_starts = np.arange(0, t.size, page, dtype=np.int64)

    def read_page(i):
        start = int(row_starts[i])
        return t[start:start + page]

    return row_starts, read_page


@pytest.mark.parametrize("kind", ["step", "binary"])
def test_probe_throughput(benchmark, kind):
    t, _v = PROFILES["KOB"].generate(100_000)
    row_starts, read_page = _page_source(t, 100)
    if kind == "step":
        index = ChunkIndex(StepRegression.fit(t), row_starts, t.size,
                           read_page)
    else:
        index = BinarySearchIndex(row_starts, t[row_starts], t.size,
                                  int(t[0]), int(t[-1]), read_page)
    probes = np.linspace(int(t[0]), int(t[-1]), 200).astype(np.int64)

    def run():
        return sum(index.exists(int(p)) for p in probes)

    benchmark(run)


def test_ablation_table(benchmark):
    tables = benchmark.pedantic(ablation_index, rounds=1, iterations=1)
    print_tables(tables)
    for table in tables:
        by_kind = dict(zip(table.column("index"),
                           table.column("pages decoded")))
        # Both answer the same query plan; page decodes stay comparable
        # (within 2x), with step regression never pathologically worse.
        assert by_kind["step regression"] <= by_kind["binary search"] * 2
