"""E19 — shard-count scaling sweep (shards = 1/2/4/8).

Runs :func:`repro.bench.shard_scaling` against real servers over
process-backed shard routers and writes ``BENCH_shards.json`` next to
this file.

Gated assertions:

* **identity** — every shard count's query rows and rendered PBM bytes
  match a pre-shard :class:`~repro.storage.engine.StorageEngine`
  reference byte-for-byte, on all four Table 2 datasets.  This gates
  on every machine.
* **scaling** — shards=4 aggregate closed-loop throughput is at least
  2x shards=1.  Shard-per-core scaling cannot physically appear on a
  box with fewer cores than shards, so this half only gates when
  ``os.cpu_count() >= 4`` (CI runners have 4 vCPUs; the artifact's
  ``meta.cpu_count`` records what the numbers were measured on).
"""

import os

from repro.bench import new_artifact, shard_scaling, write_artifact

from conftest import print_tables

RESULT_FILE = os.path.join(os.path.dirname(__file__), "BENCH_shards.json")

N_POINTS = int(os.environ.get("REPRO_SHARD_BENCH_POINTS", "20000"))
DURATION = float(os.environ.get("REPRO_SHARD_BENCH_DURATION", "2.0"))


def test_shard_scaling(tmp_path):
    rows, table = shard_scaling(str(tmp_path), n_points=N_POINTS,
                                duration=DURATION)
    print_tables([table])
    by_shards = {row["shards"]: row for row in rows}
    assert set(by_shards) == {1, 2, 4, 8}

    for row in rows:
        assert row["identical"], "shards=%d broke byte identity" % row["shards"]
        assert row["ok"] > 0, row

    if (os.cpu_count() or 1) >= 4:
        speedup = by_shards[4]["speedup_vs_1"]
        assert speedup >= 2.0, (
            "shards=4 reached only %.2fx of shards=1 (%d cpus)"
            % (speedup, os.cpu_count()))

    write_artifact(RESULT_FILE, new_artifact("shards", rows, N_POINTS))
