"""IoT fleet monitoring: the workload the paper's introduction motivates.

A dashboard backend monitors a fleet of devices, each pushing readings
into an LSM store; analysts zoom in and out interactively.  This example:

* ingests four device series with the paper's dataset profiles
  (high-frequency regular, jittery, gappy, bursty),
* simulates late-arriving (out-of-order) data and retention deletes,
* serves a zoom sequence (year -> month-ish -> day-ish) at dashboard
  width with BOTH operators, verifying they agree,
* prints per-query latency plus the I/O counters that explain the
  merge-free advantage.

Run with::

    python examples/iot_fleet_monitoring.py
"""

import tempfile
import time

from repro.core import M4LSMOperator, M4UDFOperator
from repro.datasets import PROFILES, build_engine, load_with_overlap

DASHBOARD_WIDTH = 100
FLEET = {
    "root.fleet.turbine.speed": ("BallSpeed", 200_000),
    "root.fleet.press.power": ("MF03", 200_000),
    "root.fleet.boiler.temp": ("KOB", 80_000),
    "root.fleet.gateway.rcv": ("RcvTime", 80_000),
}


def ingest_fleet(engine):
    """Load every device, with out-of-order arrivals and retention."""
    extents = {}
    for series, (profile, n_points) in FLEET.items():
        t, v = PROFILES[profile].generate(n_points)
        # 15% of chunks overlap: late-arriving gateway batches.
        load_with_overlap(engine, series, t, v, overlap_pct=15)
        # Retention: drop a faulty interval near the start.
        span = int(t[-1] - t[0])
        engine.delete(series, int(t[0]) + span // 10,
                      int(t[0]) + span // 10 + span // 50)
        extents[series] = (int(t[0]), int(t[-1]) + 1)
    engine.flush_all()
    return extents


def zoom_sequence(t_qs, t_qe):
    """Full range, then two 8x zooms anchored at 40% of the range."""
    ranges = [(t_qs, t_qe)]
    for _ in range(2):
        lo, hi = ranges[-1]
        anchor = lo + (hi - lo) * 2 // 5
        width = max((hi - lo) // 8, DASHBOARD_WIDTH)
        ranges.append((anchor, anchor + width))
    return ranges


def main():
    with tempfile.TemporaryDirectory() as data_dir:
        engine = build_engine(data_dir, chunk_points=250,
                              points_per_page=125)
        print("Ingesting a %d-device fleet ..." % len(FLEET))
        extents = ingest_fleet(engine)

        udf = M4UDFOperator(engine)
        lsm = M4LSMOperator(engine)
        print("%-28s %-9s %10s %10s %9s %14s"
              % ("series", "zoom", "UDF (ms)", "LSM (ms)", "agree",
                 "LSM pts read"))
        for series, (t_qs, t_qe) in extents.items():
            for level, (lo, hi) in enumerate(zoom_sequence(t_qs, t_qe)):
                started = time.perf_counter()
                udf_result = udf.query(series, lo, hi, DASHBOARD_WIDTH)
                udf_ms = (time.perf_counter() - started) * 1000

                before = engine.stats.snapshot()
                started = time.perf_counter()
                lsm_result = lsm.query(series, lo, hi, DASHBOARD_WIDTH)
                lsm_ms = (time.perf_counter() - started) * 1000
                decoded = engine.stats.diff(before).points_decoded

                agree = udf_result.semantically_equal(lsm_result)
                print("%-28s %-9s %10.1f %10.1f %9s %14d"
                      % (series, "x%d" % (8 ** level), udf_ms, lsm_ms,
                         agree, decoded))
        engine.close()
    print("\nEvery zoom level returned identical representations from "
          "both operators.\nThe points-read column shows M4-LSM "
          "touching only a fraction of each series\n(the wall-clock "
          "advantage over the vectorized UDF appears at the paper's\n"
          "10M-point scale; see benchmarks/test_headline_10m.py).")


if __name__ == "__main__":
    main()
