"""Out-of-order backfill: how LSM versioning keeps M4 queries correct.

Storyline: a gateway uploads live data; days later, a backfill job
re-uploads a corrected batch for an interval whose sensor had a gain
error, and an operator deletes a window of garbage readings.  The
example shows:

* chunks physically overlap after the backfill (no rewrite happens),
* the merge function resolves the overlap by version, so queries see
  only corrected values,
* M4-LSM answers without merging chunks, matching M4-UDF exactly,
* compaction (off by default, per the paper's setup) folds the history.

Run with::

    python examples/out_of_order_backfill.py
"""

import tempfile

import numpy as np

from repro.core import M4LSMOperator, M4UDFOperator
from repro.storage import StorageConfig, StorageEngine, compact_series
from repro.viz import PixelGrid, rasterize, to_ascii

SERIES = "root.plant.flow"


def show(engine, title, t_qs, t_qe):
    result = M4LSMOperator(engine).query(SERIES, t_qs, t_qe, 100)
    reduced = result.to_series()
    grid = PixelGrid(t_qs, t_qe, float(reduced.values.min()),
                     float(reduced.values.max()), 100, 14)
    print(title)
    print(to_ascii(rasterize(reduced, grid)))
    print()
    return result


def main():
    rng = np.random.default_rng(7)
    n = 40_000
    t = np.arange(n, dtype=np.int64) * 1000
    true_flow = 50 + 8 * np.sin(np.arange(n) / 900.0) \
        + rng.normal(0, 0.5, n)

    with tempfile.TemporaryDirectory() as data_dir:
        config = StorageConfig(avg_series_point_number_threshold=1000,
                               points_per_page=250)
        engine = StorageEngine(data_dir, config)
        engine.create_series(SERIES)

        # 1. Live ingestion — but one interval has a gain error (x3).
        bad = slice(n // 4, n // 4 + 6000)
        corrupted = true_flow.copy()
        corrupted[bad] *= 3.0
        engine.write_batch(SERIES, t, corrupted)
        engine.flush_all()
        chunks_before = len(engine.chunks_for(SERIES))
        show(engine, "As ingested (gain error visible as a plateau):",
             0, n * 1000)

        # 2. Backfill the corrected interval — an out-of-order write.
        engine.write_batch(SERIES, t[bad], true_flow[bad])
        # 3. Retention delete: a window of garbage at three quarters.
        garbage = (int(t[3 * n // 4]), int(t[3 * n // 4 + 2000]))
        engine.delete(SERIES, *garbage)
        engine.flush_all()

        overlapping = [
            meta for meta in engine.chunks_for(SERIES)
            if any(other is not meta
                   and other.start_time <= meta.end_time
                   and other.end_time >= meta.start_time
                   for other in engine.chunks_for(SERIES))]
        print("chunks: %d -> %d (%d now overlap in time; nothing was "
              "rewritten)" % (chunks_before, len(engine.chunks_for(SERIES)),
                              len(overlapping)))
        print("deletes on record: %d\n" % len(engine.deletes_for(SERIES)))

        result = show(engine, "After backfill + retention delete:",
                      0, n * 1000)

        # 4. Merge-free equals merge-everything.
        udf = M4UDFOperator(engine).query(SERIES, 0, n * 1000, 100)
        print("M4-LSM == M4-UDF: %s" % result.semantically_equal(udf))

        # 5. Optional compaction folds history into clean chunks.
        survivors = compact_series(engine, SERIES)
        after = M4LSMOperator(engine).query(SERIES, 0, n * 1000, 100)
        print("compacted to %d points in %d non-overlapping chunks; "
              "query unchanged: %s"
              % (survivors, len(engine.chunks_for(SERIES)),
                 after.semantically_equal(result)))
        engine.close()


if __name__ == "__main__":
    main()
