"""Visual accuracy shoot-out: M4 vs MinMax, PAA and sampling.

Reproduces the motivation of the paper's Figure 1 interactively: reduce
the same series with five methods, render each at the same chart
geometry, and report the pixel error.  M4 is the only reducer whose
chart is *identical* to rendering all the raw points.

Run with::

    python examples/visual_accuracy.py [n_points]
"""

import sys

from repro.core import TimeSeries
from repro.datasets import PROFILES
from repro.viz import (
    REDUCERS,
    PixelGrid,
    compare_pixels,
    diff_overlay,
    rasterize,
    side_by_side,
    to_ascii,
)

WIDTH, HEIGHT = 110, 22


def main():
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    t, v = PROFILES["MF03"].generate(n_points)
    series = TimeSeries(t, v, validate=False)
    grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(v.min()),
                     float(v.max()), WIDTH, HEIGHT)
    reference = rasterize(series, grid)

    print("Reference: %d raw points rendered at %dx%d"
          % (n_points, WIDTH, HEIGHT))
    print(to_ascii(reference))
    print()

    rows = []
    renderings = {}
    for name, reducer in REDUCERS.items():
        reduced = reducer(t, v, grid.t_qs, grid.t_qe, WIDTH)
        matrix = rasterize(reduced, grid)
        renderings[name] = matrix
        comparison = compare_pixels(reference, matrix)
        rows.append((name, len(reduced), comparison.differing_pixels,
                     comparison.error_ratio))

    print("%-12s %12s %18s %12s" % ("reducer", "points kept",
                                    "differing pixels", "error ratio"))
    for name, kept, diff, ratio in rows:
        print("%-12s %12d %18d %12.4f" % (name, kept, diff, ratio))
    print()

    print("M4 (left) vs PAA (right) — spot the smoothing:")
    print(side_by_side(renderings["M4"], renderings["PAA"], max_width=55))
    print()
    print("Where PAA's chart differs ('-' = pixels it lost,"
          " '+' = pixels it invented):")
    print(diff_overlay(reference, renderings["PAA"]))


if __name__ == "__main__":
    main()
