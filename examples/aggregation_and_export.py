"""Aggregation dashboards and vector export.

Beyond M4 itself, the same chunk statistics answer the usual dashboard
aggregates — COUNT/AVG/MIN/MAX per time bucket — without touching chunk
data.  This example:

* loads a week of 1 Hz readings,
* computes a daily summary via the metadata-accelerated aggregator and
  confirms it against the merge-everything baseline,
* issues the equivalent SQL,
* exports the M4-reduced line chart as a standalone SVG file.

Run with::

    python examples/aggregation_and_export.py [output.svg]
"""

import sys
import tempfile

import numpy as np

from repro import Session, StorageConfig
from repro.core.aggregation import aggregate_lsm, aggregate_udf
from repro.viz.svg import save_svg

SECONDS_PER_DAY = 86_400
DAYS = 7


def week_of_data(seed=11):
    """One week at 1 Hz: weekday/weekend pattern + drift + noise."""
    n = SECONDS_PER_DAY * DAYS
    t = np.arange(n, dtype=np.int64) * 1000
    rng = np.random.default_rng(seed)
    day = np.arange(n) // SECONDS_PER_DAY
    weekday_load = np.where(day < 5, 100.0, 35.0)
    daily_cycle = 25.0 * np.sin(2 * np.pi * (np.arange(n)
                                             % SECONDS_PER_DAY)
                                / SECONDS_PER_DAY)
    return t, weekday_load + daily_cycle + rng.normal(0, 2.0, n)


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/week.svg"
    t, v = week_of_data()
    print("Ingesting %d points (a week at 1 Hz) ..." % t.size)
    with tempfile.TemporaryDirectory() as data_dir:
        config = StorageConfig(avg_series_point_number_threshold=5000,
                               points_per_page=1000)
        with Session(data_dir, config) as session:
            session.create_series("root.plant.load")
            session.insert_batch("root.plant.load", t, v)
            session.flush()
            engine = session.engine
            t_qs, t_qe = int(t[0]), int(t[-1]) + 1

            # --- daily summary from metadata --------------------------------
            functions = ("count", "avg", "min_value", "max_value")
            before = engine.stats.snapshot()
            fast = aggregate_lsm(engine, "root.plant.load", t_qs, t_qe,
                                 DAYS, functions)
            fast_loads = engine.stats.diff(before).chunk_loads
            before = engine.stats.snapshot()
            slow = aggregate_udf(engine, "root.plant.load", t_qs, t_qe,
                                 DAYS, functions)
            slow_loads = engine.stats.diff(before).chunk_loads

            print("\nDaily summary (chunk loads: %d accelerated vs %d "
                  "baseline):" % (fast_loads, slow_loads))
            print("%4s %9s %9s %9s %9s" % ("day", "count", "avg", "min",
                                           "max"))
            for day in range(DAYS):
                row = [fast.column(f)[day] for f in functions]
                assert row == [slow.column(f)[day] for f in functions] \
                    or all(abs(a - b) < 1e-6
                           for a, b in zip(row, (slow.column(f)[day]
                                                 for f in functions)))
                print("%4d %9d %9.2f %9.2f %9.2f" % (day, *row))

            # --- the same through SQL ----------------------------------------
            table = session.execute(
                "SELECT COUNT(s), AVG(s) FROM root.plant.load "
                "WHERE time >= %d AND time < %d GROUP BY SPANS(%d)"
                % (t_qs, t_qe, DAYS))
            print("\nSQL view:")
            print(table.pretty())

            # --- vector export ------------------------------------------------
            result = session.query_m4("root.plant.load", t_qs, t_qe,
                                      w=400)
            reduced = result.to_series()
            save_svg(reduced, out_path, width=900, height=260,
                     title="Plant load, one week (M4, %d of %d points)"
                     % (len(reduced), t.size))
            print("\nwrote %s (%d representation points instead of %d)"
                  % (out_path, len(reduced), t.size))


if __name__ == "__main__":
    main()
