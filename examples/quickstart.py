"""Quickstart: write a series, run an M4 query, render it.

Walks the happy path of the library in under a minute:

1. open a :class:`repro.Session` over a storage directory,
2. ingest one day of synthetic sensor data,
3. reduce it to 120 pixel columns with the merge-free M4-LSM operator,
4. confirm the reduction is pixel-exact against the full rendering,
5. run the same query through the SQL dialect.

Run with::

    python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import Session
from repro.core import TimeSeries
from repro.viz import PixelGrid, compare_pixels, rasterize, to_ascii


def generate_day_of_data(points_per_minute=60, minutes=1440):
    """One day of 1 Hz readings: daily sine + noise + an anomaly spike."""
    n = points_per_minute * minutes
    t = np.arange(n, dtype=np.int64) * 1000  # epoch milliseconds
    rng = np.random.default_rng(42)
    daily = 10.0 * np.sin(2 * np.pi * np.arange(n) / n)
    noise = rng.normal(0, 0.4, n)
    v = 20.0 + daily + noise
    v[n // 3: n // 3 + 120] += 15.0  # a two-minute anomaly
    return t, v


def main():
    t, v = generate_day_of_data()
    print("Ingesting %d points (one day at 1 Hz) ..." % t.size)

    with tempfile.TemporaryDirectory() as data_dir:
        with Session(data_dir) as session:
            session.create_series("root.demo.temperature")
            session.insert_batch("root.demo.temperature", t, v)

            # --- the M4 representation query (Definition 2.3) ---------------
            width, height = 120, 24
            result = session.query_m4("root.demo.temperature",
                                      int(t[0]), int(t[-1]) + 1, w=width)
            reduced = result.to_series()
            print("M4-LSM reduced %d points to %d representation points"
                  % (t.size, len(reduced)))

            # --- pixel-exactness (the paper's Figure 1 claim) ---------------
            full = TimeSeries(t, v, validate=False)
            grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(v.min()),
                             float(v.max()), width, height)
            comparison = compare_pixels(rasterize(full, grid),
                                        rasterize(reduced, grid))
            print("pixel error vs full rendering: %d differing pixels"
                  % comparison.differing_pixels)
            print()
            print(to_ascii(rasterize(reduced, grid)))
            print()

            # --- the same query through SQL ---------------------------------
            table = session.execute(
                "SELECT FirstTime(s), FirstValue(s), TopValue(s) "
                "FROM root.demo.temperature GROUP BY SPANS(6)")
            print(table.pretty())


if __name__ == "__main__":
    main()
