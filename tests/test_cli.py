"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def store(tmp_path, capsys):
    """A storage dir with one loaded series (built through the CLI)."""
    csv = tmp_path / "data.csv"
    db = tmp_path / "db"
    assert main(["generate", "--dataset", "KOB", "--points", "3000",
                 "--out", str(csv)]) == 0
    assert main(["load", "--db", str(db), "--series", "root.k",
                 "--csv", str(csv), "--chunk-points", "500"]) == 0
    capsys.readouterr()
    return db


class TestGenerateAndLoad:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "x.csv"
        assert main(["generate", "--points", "100",
                     "--out", str(out)]) == 0
        assert "100 points" in capsys.readouterr().out
        assert out.exists()
        assert len(out.read_text().splitlines()) == 101  # header + rows

    def test_load_reports_chunks(self, tmp_path, capsys):
        csv = tmp_path / "x.csv"
        main(["generate", "--points", "1000", "--out", str(csv)])
        assert main(["load", "--db", str(tmp_path / "db"), "--series", "s",
                     "--csv", str(csv), "--chunk-points", "100"]) == 0
        assert "(10 chunks)" in capsys.readouterr().out


class TestInfo:
    def test_info_lists_series(self, store, capsys):
        assert main(["info", "--db", str(store)]) == 0
        out = capsys.readouterr().out
        assert "root.k" in out
        assert "3000" in out


class TestQuery:
    def test_m4_query(self, store, capsys):
        assert main(["query", "--db", str(store),
                     "SELECT M4(s) FROM root.k GROUP BY SPANS(4)"]) == 0
        out = capsys.readouterr().out
        assert "FirstTime" in out and "TopValue" in out

    def test_aggregate_query(self, store, capsys):
        assert main(["query", "--db", str(store),
                     "SELECT COUNT(s) FROM root.k GROUP BY SPANS(2)"]) == 0
        out = capsys.readouterr().out
        counts = [int(line.split()[-1]) for line in out.splitlines()[2:]
                  if line.strip()]
        assert sum(counts) == 3000

    def test_bad_sql_is_reported(self, store, capsys):
        assert main(["query", "--db", str(store), "SELEC nothing"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRender:
    def test_ascii_render(self, store, capsys):
        assert main(["render", "--db", str(store), "--series", "root.k",
                     "--width", "60", "--height", "10"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 10
        assert any("#" in line for line in lines)

    def test_pbm_render(self, store, tmp_path, capsys):
        out_file = tmp_path / "chart.pbm"
        assert main(["render", "--db", str(store), "--series", "root.k",
                     "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("P1\n")

    def test_empty_series_reports_error(self, tmp_path, capsys):
        db = tmp_path / "db"
        from repro.storage import StorageEngine
        with StorageEngine(db) as engine:
            engine.create_series("empty")
        assert main(["render", "--db", str(db),
                     "--series", "empty"]) == 1
        assert "empty" in capsys.readouterr().err


class TestTileCacheFlag:
    def test_query_same_stdout_with_cache(self, store, capsys):
        # A grid-aligned viewport so the cached path actually tiles.
        sql = ("SELECT M4(s) FROM root.k WHERE time >= 0 AND "
               "time < 4096 GROUP BY SPANS(4)")
        assert main(["query", "--db", str(store), sql]) == 0
        plain = capsys.readouterr().out
        assert main(["query", "--db", str(store),
                     "--tile-cache", "1048576", sql]) == 0
        assert capsys.readouterr().out == plain

    def test_render_same_stdout_with_cache(self, store, capsys):
        args = ["render", "--db", str(store), "--series", "root.k",
                "--width", "60", "--height", "10"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--tile-cache", "1048576"]) == 0
        assert capsys.readouterr().out == plain


class TestCompact:
    def test_compact_reports_counts(self, store, capsys):
        assert main(["compact", "--db", str(store)]) == 0
        assert "root.k: 3000 points" in capsys.readouterr().out


class TestStoreErrorPaths:
    """Missing or corrupt stores fail with one line, never a traceback."""

    def _assert_one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_query_missing_store(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["query", "--db", str(missing),
                     "SELECT COUNT(s) FROM x GROUP BY SPANS(2)"]) == 1
        self._assert_one_line_error(capsys)
        assert not missing.exists()  # the typo'd path was not created

    def test_render_missing_store(self, tmp_path, capsys):
        assert main(["render", "--db", str(tmp_path / "nope"),
                     "--series", "s"]) == 1
        self._assert_one_line_error(capsys)

    def test_info_missing_store(self, tmp_path, capsys):
        assert main(["info", "--db", str(tmp_path / "nope")]) == 1
        self._assert_one_line_error(capsys)

    def test_compact_missing_store(self, tmp_path, capsys):
        assert main(["compact", "--db", str(tmp_path / "nope")]) == 1
        self._assert_one_line_error(capsys)

    def test_query_corrupt_store(self, store, capsys):
        (store / "catalog.meta").write_bytes(b"\x00garbage\xff" * 16)
        assert main(["query", "--db", str(store),
                     "SELECT COUNT(s) FROM root.k GROUP BY SPANS(2)"]) == 1
        self._assert_one_line_error(capsys)

    def test_render_corrupt_store(self, store, capsys):
        (store / "catalog.meta").write_bytes(b"\x00garbage\xff" * 16)
        assert main(["render", "--db", str(store),
                     "--series", "root.k"]) == 1
        self._assert_one_line_error(capsys)


class TestLoadgenCLI:
    def test_open_mode_requires_rate(self, capsys):
        assert main(["loadgen", "--url", "http://127.0.0.1:1",
                     "--mode", "open"]) == 1
        assert "requires --rate" in capsys.readouterr().err

    def test_unreachable_server_is_one_line_error(self, capsys):
        assert main(["loadgen", "--url", "http://127.0.0.1:9",
                     "--duration", "0.1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
