"""Property: a single flipped or truncated byte anywhere in a store may
lose data — loudly (a ``ReproError``), via a flagged degraded result, or
through the documented tail-repair/salvage policies — but it can never
fabricate points, alter values, or escape as a non-Repro exception.

Every point a corrupted store returns must be a ``(t, v)`` pair that was
genuinely written (checked against the full pre-delete oracle, since a
torn mods tail legitimately resurrects the last delete)."""

import os
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import M4LSMOperator, M4UDFOperator
from repro.errors import ReproError
from repro.storage import StorageConfig, StorageEngine

N = 300
W = 9


def _config():
    return StorageConfig(avg_series_point_number_threshold=100,
                         points_per_page=50)


@pytest.fixture(scope="module")
def template(tmp_path_factory):
    """A sealed store plus the oracle of every point ever written."""
    db = tmp_path_factory.mktemp("corruption") / "db"
    engine = StorageEngine(db, _config())
    engine.create_series("s")
    t = np.arange(N, dtype=np.int64)
    engine.write_batch("s", t, np.sin(t / 11.0) * 4)
    engine.flush_all()
    series = M4UDFOperator(engine).merged_series("s", 0, N)
    oracle = {int(ts): float(v)
              for ts, v in zip(series.timestamps, series.values)}
    engine.delete("s", 40, 60)
    engine.flush_all()
    engine.close()
    return db, oracle


@given(data=st.data())
@settings(max_examples=35, deadline=None)
def test_single_byte_corruption_never_fabricates(template, data):
    db, oracle = template
    scratch = tempfile.mkdtemp(prefix="repro-corrupt-")
    try:
        target = os.path.join(scratch, "db")
        shutil.copytree(db, target)
        files = sorted(p for p in Path(target).rglob("*")
                       if p.is_file() and p.stat().st_size > 0)
        victim = data.draw(st.sampled_from(files))
        offset = data.draw(st.integers(0, victim.stat().st_size - 1))
        if data.draw(st.booleans(), label="flip (vs truncate)"):
            mask = data.draw(st.integers(1, 255))
            raw = bytearray(victim.read_bytes())
            raw[offset] ^= mask
            victim.write_bytes(bytes(raw))
        else:
            with open(victim, "r+b") as f:
                f.truncate(offset)

        try:
            engine = StorageEngine(target, _config())
        except ReproError:
            return  # loud failure on open: acceptable
        try:
            try:
                udf = M4UDFOperator(engine).query("s", 0, N, W)
                merged = M4UDFOperator(engine).merged_series("s", 0, N)
                lsm = M4LSMOperator(engine).query("s", 0, N, W)
            except ReproError:
                return  # loud failure at query time: acceptable
            # Whatever survives must be data that was really written.
            for ts, v in zip(merged.timestamps, merged.values):
                assert oracle.get(int(ts)) == float(v), \
                    "fabricated or altered point (%d, %r)" % (int(ts), v)
            # A flagged degradation must say what it skipped; an
            # unflagged answer must agree across both operators.
            if udf.degraded:
                assert udf.skipped
            elif not lsm.degraded:
                assert udf.semantically_equal(lsm)
        finally:
            engine.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
