"""Property-based tests: M4-LSM is semantically identical to M4-UDF on
arbitrary LSM states, and the M4 invariants hold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import M4LSMOperator, M4UDFOperator, m4_aggregate_arrays
from repro.storage import StorageConfig, StorageEngine


@st.composite
def workload(draw):
    """A randomized write/delete/overwrite history over a small domain."""
    domain = draw(st.integers(50, 400))
    n_points = draw(st.integers(1, min(80, domain // 2)))
    times = draw(st.lists(st.integers(0, domain - 1), min_size=n_points,
                          max_size=n_points, unique=True))
    times.sort()
    values = draw(st.lists(st.integers(-9, 9), min_size=n_points,
                           max_size=n_points))
    batches = draw(st.integers(1, 4))
    deletes = draw(st.lists(st.tuples(st.integers(0, domain - 1),
                                      st.integers(0, 50)), max_size=3))
    overwrites = draw(st.lists(st.tuples(st.integers(0, n_points - 1),
                                         st.integers(-9, 9)), max_size=10))
    w = draw(st.sampled_from([1, 2, 3, 7, 20]))
    chunk_size = draw(st.sampled_from([7, 16, 40]))
    return (np.array(times, dtype=np.int64),
            np.array(values, dtype=np.float64),
            batches, deletes, overwrites, w, chunk_size, domain)


def build_engine(tmp_dir, state):
    t, v, batches, deletes, overwrites, _w, chunk_size, _domain = state
    config = StorageConfig(avg_series_point_number_threshold=chunk_size,
                           points_per_page=max(chunk_size // 3, 1))
    engine = StorageEngine(tmp_dir, config)
    engine.create_series("s")
    rng = np.random.default_rng(0)
    order = rng.permutation(t.size)
    for part in np.array_split(order, batches):
        part = np.sort(part)
        if part.size:
            engine.write_batch("s", t[part], v[part])
            engine.flush("s")
    for start, length in deletes:
        engine.delete("s", start, start + length)
    for row, value in overwrites:
        if row < t.size:
            engine.write_batch("s", t[row:row + 1],
                               np.array([float(value)]))
    engine.flush_all()
    return engine


@given(workload())
@settings(max_examples=40, deadline=None)
def test_lsm_equals_udf(tmp_path_factory, state):
    tmp = tmp_path_factory.mktemp("prop")
    engine = build_engine(tmp, state)
    w, domain = state[5], state[7]
    try:
        udf = M4UDFOperator(engine).query("s", 0, domain, w)
        lsm = M4LSMOperator(engine).query("s", 0, domain, w)
        assert udf.semantically_equal(lsm)
    finally:
        engine.close()


@given(workload())
@settings(max_examples=15, deadline=None)
def test_variants_equal_udf(tmp_path_factory, state):
    tmp = tmp_path_factory.mktemp("prop")
    engine = build_engine(tmp, state)
    w, domain = state[5], state[7]
    try:
        udf = M4UDFOperator(engine).query("s", 0, domain, w)
        for kwargs in ({"lazy": False}, {"use_regression": False}):
            lsm = M4LSMOperator(engine, **kwargs).query("s", 0, domain, w)
            assert udf.semantically_equal(lsm), kwargs
    finally:
        engine.close()


# -- pure-aggregation invariants -------------------------------------------------

series_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), st.floats(-1e6, 1e6)),
    min_size=1, max_size=120, unique_by=lambda p: p[0])


@given(series_strategy, st.integers(1, 50))
@settings(max_examples=100, deadline=None)
def test_m4_aggregate_invariants(points, w):
    points.sort()
    t = np.array([p[0] for p in points], dtype=np.int64)
    v = np.array([p[1] for p in points])
    result = m4_aggregate_arrays(t, v, int(t[0]), int(t[-1]) + 1, w)
    seen = 0
    previous_last = None
    for span in result.spans:
        if span.is_empty():
            continue
        assert span.first.t <= span.bottom.t <= span.last.t
        assert span.first.t <= span.top.t <= span.last.t
        assert span.bottom.v <= span.first.v <= span.top.v
        assert span.bottom.v <= span.last.v <= span.top.v
        if previous_last is not None:
            assert span.first.t > previous_last
        previous_last = span.last.t
        seen += 1
    assert seen >= 1
    # Global extremes survive reduction.
    reduced = result.to_series()
    assert float(reduced.values.min()) == float(v.min())
    assert float(reduced.values.max()) == float(v.max())
    assert reduced.first().t == int(t[0])
    assert reduced.last().t == int(t[-1])
