"""Property-based tests: metadata-accelerated aggregation equals the
merge-everything baseline on arbitrary LSM states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AGGREGATE_NAMES, aggregate_lsm, aggregate_udf
from repro.storage import StorageConfig, StorageEngine


@st.composite
def lsm_workload(draw):
    domain = draw(st.integers(60, 300))
    n = draw(st.integers(2, min(60, domain // 2)))
    times = sorted(draw(st.lists(st.integers(0, domain - 1), min_size=n,
                                 max_size=n, unique=True)))
    values = draw(st.lists(st.integers(-9, 9), min_size=n, max_size=n))
    batches = draw(st.integers(1, 3))
    delete = draw(st.one_of(
        st.none(),
        st.tuples(st.integers(0, domain - 1), st.integers(0, 60))))
    overwrite = draw(st.integers(0, n - 1))
    w = draw(st.sampled_from([1, 3, 11]))
    chunk = draw(st.sampled_from([7, 25]))
    return (np.array(times, dtype=np.int64),
            np.array(values, dtype=np.float64),
            batches, delete, overwrite, w, chunk, domain)


@given(lsm_workload())
@settings(max_examples=40, deadline=None)
def test_lsm_aggregation_equals_udf(tmp_path_factory, workload):
    t, v, batches, delete, overwrite, w, chunk, domain = workload
    tmp = tmp_path_factory.mktemp("agg")
    config = StorageConfig(avg_series_point_number_threshold=chunk,
                           points_per_page=max(chunk // 2, 1))
    engine = StorageEngine(tmp, config)
    try:
        engine.create_series("s")
        rng = np.random.default_rng(0)
        for part in np.array_split(rng.permutation(t.size), batches):
            part = np.sort(part)
            if part.size:
                engine.write_batch("s", t[part], v[part])
                engine.flush("s")
        if delete is not None:
            engine.delete("s", delete[0], delete[0] + delete[1])
        engine.write_batch("s", t[overwrite:overwrite + 1],
                           np.array([99.0]))
        engine.flush_all()
        a = aggregate_udf(engine, "s", 0, domain, w, AGGREGATE_NAMES)
        b = aggregate_lsm(engine, "s", 0, domain, w, AGGREGATE_NAMES)
        for function in AGGREGATE_NAMES:
            for got, want in zip(b.column(function), a.column(function)):
                if want is None:
                    assert got is None, function
                else:
                    assert got == pytest.approx(want), function
    finally:
        engine.close()
