"""Property-based tests: every codec is a lossless bijection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.encoding import (
    decode_gorilla,
    decode_plain,
    decode_rle,
    decode_ts2diff,
    encode_gorilla,
    encode_plain,
    encode_rle,
    encode_ts2diff,
    encode_unsigned,
    read_unsigned_varint,
    zigzag_decode,
    zigzag_encode,
)

int64s = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)
floats = st.floats(allow_nan=False, width=64)


@given(st.lists(int64s, max_size=200))
@settings(max_examples=100, deadline=None)
def test_ts2diff_roundtrip(values):
    arr = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(decode_ts2diff(encode_ts2diff(arr)), arr)


@given(st.lists(floats, max_size=200))
@settings(max_examples=100, deadline=None)
def test_plain_roundtrip(values):
    arr = np.array(values, dtype=np.float64)
    np.testing.assert_array_equal(decode_plain(encode_plain(arr)), arr)


@given(st.lists(floats, max_size=150))
@settings(max_examples=100, deadline=None)
def test_gorilla_roundtrip(values):
    arr = np.array(values, dtype=np.float64)
    np.testing.assert_array_equal(decode_gorilla(encode_gorilla(arr)), arr)


@given(st.lists(st.sampled_from([0.0, 1.5, -3.25, 7.0]), max_size=300))
@settings(max_examples=100, deadline=None)
def test_rle_roundtrip_runs(values):
    arr = np.array(values, dtype=np.float64)
    np.testing.assert_array_equal(decode_rle(encode_rle(arr)), arr)


@given(st.lists(int64s, max_size=200))
@settings(max_examples=50, deadline=None)
def test_rle_roundtrip_ints(values):
    arr = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(decode_rle(encode_rle(arr)), arr)


@given(st.integers(min_value=0, max_value=2 ** 63 - 1))
def test_varint_roundtrip(value):
    decoded, _ = read_unsigned_varint(encode_unsigned(value), 0)
    assert decoded == value


@given(int64s)
def test_zigzag_roundtrip(value):
    assert zigzag_decode(zigzag_encode(value)) == value


@given(int64s)
def test_zigzag_magnitude_ordering(value):
    """Smaller absolute values always get smaller (shorter) codes."""
    if abs(value) < 2 ** 61:
        closer = value // 2
        assert zigzag_encode(closer) <= zigzag_encode(value) \
            or abs(closer) == abs(value)
