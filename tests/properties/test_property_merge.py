"""Property-based tests: the vectorized merge equals Definition 2.7."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Delete, DeleteList
from repro.storage.merge import merge_arrays, merge_reference
from repro.storage.readers import MergeReader


@st.composite
def lsm_state(draw):
    """A random set of versioned chunks plus deletes over a small domain."""
    n_chunks = draw(st.integers(1, 5))
    chunks = []
    version = 0
    deletes = []
    for _ in range(n_chunks):
        version += 1
        size = draw(st.integers(0, 25))
        times = draw(st.lists(st.integers(0, 60), min_size=size,
                              max_size=size, unique=True))
        times.sort()
        values = draw(st.lists(st.integers(-5, 5), min_size=size,
                               max_size=size))
        chunks.append((np.array(times, dtype=np.int64),
                       np.array(values, dtype=np.float64), version))
        if draw(st.booleans()):
            version += 1
            lo = draw(st.integers(0, 60))
            hi = draw(st.integers(lo, 60))
            deletes.append(Delete(lo, hi, version))
    return chunks, DeleteList(deletes)


@given(lsm_state())
@settings(max_examples=120, deadline=None)
def test_vectorized_matches_reference(state):
    chunks, deletes = state
    ref_t, ref_v = merge_reference(chunks, deletes)
    vec_t, vec_v = merge_arrays(chunks, deletes)
    np.testing.assert_array_equal(ref_t, vec_t)
    np.testing.assert_array_equal(ref_v, vec_v)


@given(lsm_state())
@settings(max_examples=120, deadline=None)
def test_streaming_matches_vectorized(state):
    chunks, deletes = state
    streamed = list(MergeReader(chunks, deletes))
    vec_t, vec_v = merge_arrays(chunks, deletes)
    assert [p.t for p in streamed] == vec_t.tolist()
    assert [p.v for p in streamed] == vec_v.tolist()


@given(lsm_state())
@settings(max_examples=60, deadline=None)
def test_merge_output_is_a_valid_series(state):
    chunks, deletes = state
    t, v = merge_arrays(chunks, deletes)
    assert t.size == v.size
    if t.size > 1:
        assert np.all(np.diff(t) > 0)


@given(lsm_state())
@settings(max_examples=60, deadline=None)
def test_merge_idempotent_as_single_chunk(state):
    """Feeding the merged output back as one top-version chunk under the
    same deletes changes nothing."""
    chunks, deletes = state
    t, v = merge_arrays(chunks, deletes)
    again_t, again_v = merge_arrays([(t, v, 10_000)], deletes)
    np.testing.assert_array_equal(t, again_t)
    np.testing.assert_array_equal(v, again_v)
