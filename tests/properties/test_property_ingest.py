"""Property: ANY interleaving of in-order / out-of-order / duplicate
ingest batches converges to the same store as one bulk load of the
sorted last-write-wins union — byte-identical merged arrays, M4
results and rendered pixels — even when the tail of the stream only
ever reached the WAL before a crash.

The streamed engine takes the full production path: early batches go
through :class:`~repro.ingest.IngestController` (queue, writer thread,
per-series flush), the final batch is written but *not* flushed, the
engine is closed without ``flush_all`` (the recovery contract: buffered
points survive in the WAL) and reopened.  The reference engine bulk
loads the deduplicated sorted union in one call.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import M4UDFOperator
from repro.ingest import IngestController
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine


def _batch():
    """One ingest batch: timestamps drawn from a small window so
    duplicates and out-of-order arrivals are the norm, not the tail."""
    return st.lists(
        st.tuples(st.integers(0, 120),
                  st.floats(-50, 50, allow_nan=False, width=32)),
        min_size=1, max_size=25)


def _expected(batches):
    """Emission-order last-write-wins union, sorted (the semantics
    both the memtable and the version-ordered merge implement)."""
    merged = {}
    for batch in batches:
        for t, v in batch:
            merged[t] = v
    ts = np.array(sorted(merged), dtype=np.int64)
    vs = np.array([merged[int(t)] for t in ts], dtype=np.float64)
    return ts, vs


def _config():
    return StorageConfig(avg_series_point_number_threshold=40,
                         points_per_page=16)


@given(st.lists(_batch(), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_stream_converges_to_bulk_load(tmp_path_factory, batches):
    base = tmp_path_factory.mktemp("prop-ingest")
    t_exp, v_exp = _expected(batches)
    lo, hi = int(t_exp[0]), int(t_exp[-1]) + 1
    w = min(16, hi - lo)

    # Streamed path: controller for all but the last batch, then a raw
    # unflushed write + close (crash) + reopen (WAL recovery).
    streamed = StorageEngine(base / "streamed", _config())
    streamed.create_series("s")
    controller = IngestController(streamed)
    try:
        for batch in batches[:-1]:
            controller.submit(
                "s", np.array([t for t, _ in batch], dtype=np.int64),
                np.array([v for _, v in batch], dtype=np.float64))
        assert controller.drain()
    finally:
        controller.close()
    last = batches[-1]
    streamed.write_batch(
        "s", np.array([t for t, _ in last], dtype=np.int64),
        np.array([v for _, v in last], dtype=np.float64))
    streamed.close()  # NOT flushed: the tail lives only in the WAL
    streamed = StorageEngine(base / "streamed", _config())
    streamed.flush_all()

    bulk = StorageEngine(base / "bulk", _config())
    bulk.create_series("s")
    bulk.write_batch("s", t_exp, v_exp)
    bulk.flush_all()

    try:
        merged = M4UDFOperator(streamed).merged_series("s", lo, hi)
        assert np.array_equal(merged.timestamps, t_exp)
        assert np.array_equal(merged.values, v_exp)

        s_matrix, s_result = render_chart(streamed, "s", w, 16,
                                          t_qs=lo, t_qe=hi)
        b_matrix, b_result = render_chart(bulk, "s", w, 16,
                                          t_qs=lo, t_qe=hi)
        assert s_result == b_result
        assert np.array_equal(s_matrix, b_matrix)
    finally:
        streamed.close()
        bulk.close()
