"""Property-based test of the paper's headline quality claim: M4 renders
pixel-exactly for arbitrary series and chart geometries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TimeSeries
from repro.viz import PixelGrid, compare_pixels, m4_reduce, rasterize


@st.composite
def charts(draw):
    n = draw(st.integers(2, 300))
    times = draw(st.lists(st.integers(0, 5000), min_size=n, max_size=n,
                          unique=True))
    times.sort()
    values = draw(st.lists(st.floats(-1e3, 1e3), min_size=n, max_size=n))
    width = draw(st.integers(1, 60))
    height = draw(st.integers(1, 60))
    return (np.array(times, dtype=np.int64),
            np.array(values, dtype=np.float64), width, height)


@given(charts())
@settings(max_examples=80, deadline=None)
def test_m4_zero_pixel_error(chart):
    t, v, width, height = chart
    series = TimeSeries(t, v)
    grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(v.min()),
                     float(v.max()), width, height)
    reference = rasterize(series, grid)
    reduced = m4_reduce(t, v, grid.t_qs, grid.t_qe, width)
    comparison = compare_pixels(reference, rasterize(reduced, grid))
    assert comparison.is_exact(), comparison


@given(charts())
@settings(max_examples=40, deadline=None)
def test_reduction_never_exceeds_4w_points(chart):
    t, v, width, _height = chart
    reduced = m4_reduce(t, v, int(t[0]), int(t[-1]) + 1, width)
    assert len(reduced) <= 4 * width
