"""Property-based tests: chunk index operations are exact for any
strictly increasing timestamp column."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import BinarySearchIndex, ChunkIndex, StepRegression


@st.composite
def timestamp_columns(draw):
    """Strictly increasing int64 timestamps with mixed regular/gap deltas,
    plus a page size."""
    n = draw(st.integers(2, 300))
    deltas = draw(st.lists(
        st.one_of(st.integers(1, 20), st.integers(10_000, 100_000)),
        min_size=n - 1, max_size=n - 1))
    start = draw(st.integers(-10 ** 12, 10 ** 12))
    t = np.concatenate(([start],
                        start + np.cumsum(np.array(deltas, dtype=np.int64))))
    page = draw(st.sampled_from([3, 16, 64, 1024]))
    return t, page


def build_indexes(t, page):
    row_starts = np.arange(0, t.size, page, dtype=np.int64)

    def read_page(i):
        start = int(row_starts[i])
        return t[start:start + page]

    step = ChunkIndex(StepRegression.fit(t), row_starts, t.size, read_page)
    binary = BinarySearchIndex(row_starts, t[row_starts], t.size,
                               int(t[0]), int(t[-1]), read_page)
    return step, binary


@given(timestamp_columns(), st.data())
@settings(max_examples=120, deadline=None)
def test_index_operations_exact(column, data):
    t, page = column
    step, binary = build_indexes(t, page)
    lo, hi = int(t[0]) - 30, int(t[-1]) + 30
    probes = data.draw(st.lists(st.integers(lo, hi), min_size=1,
                                max_size=20))
    probes.extend(int(x) for x in t[:5])
    present = set(t.tolist())
    for probe in probes:
        after_rows = np.flatnonzero(t > probe)
        before_rows = np.flatnonzero(t < probe)
        expected_after = int(after_rows[0]) if after_rows.size else None
        expected_before = int(before_rows[-1]) if before_rows.size else None
        for index in (step, binary):
            assert index.exists(probe) == (probe in present)
            assert index.position_after(probe) == expected_after
            assert index.position_before(probe) == expected_before


@given(timestamp_columns())
@settings(max_examples=100, deadline=None)
def test_regression_error_bound_holds(column):
    t, _page = column
    regression = StepRegression.fit(t)
    predicted = regression.predict_array(t)
    errors = np.abs(predicted - np.arange(1, t.size + 1))
    assert float(errors.max()) <= regression.max_error + 1e-6


@given(timestamp_columns())
@settings(max_examples=60, deadline=None)
def test_regression_serialization_stable(column):
    t, _page = column
    regression = StepRegression.fit(t)
    out, _ = StepRegression.from_bytes(regression.to_bytes())
    probes = np.linspace(int(t[0]), int(t[-1]), 64).astype(np.int64)
    np.testing.assert_allclose(out.predict_array(probes),
                               regression.predict_array(probes))
