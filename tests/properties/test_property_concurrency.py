"""Property-based concurrency tests.

Two properties the thread-safety layer must uphold for *any* workload,
not just the hand-picked stress schedules:

* **per-series linearizability** — threads applying arbitrary op
  sequences (write batches and deletes) to their own series
  concurrently must leave each series in exactly the state produced by
  running that thread's sequence alone on a solo engine.  Cross-thread
  interleaving shifts global version numbers around, but per-series
  version order follows program order, so the merged output is
  invariant.
* **ChunkCache invariants** — under arbitrary concurrent get/put
  streams the points budget is never exceeded and hit+miss accounting
  matches the number of gets exactly (no lost updates).

Thread scheduling is an input Hypothesis cannot minimize, so examples
stay few and small: the value here is many *shapes* of op sequences,
with the heavy schedule exploration left to tests/concurrency.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import StorageConfig, StorageEngine
from repro.storage.cache import ChunkCache
from repro.storage.iostats import IoStats


def _op_sequence():
    """One thread's program: a list of write-batch / delete ops."""
    write = st.tuples(st.just("write"), st.integers(1, 40))
    delete = st.tuples(st.just("delete"), st.integers(0, 300),
                       st.integers(0, 100))
    return st.lists(st.one_of(write, delete), min_size=1, max_size=6)


def _apply(engine, name, ops):
    """Run one op sequence against one series, deterministically.

    Writes append monotonically (each batch continues where the last
    ended); deletes cover ``[start, start+length]``.
    """
    next_t = 0
    for op in ops:
        if op[0] == "write":
            _tag, count = op
            t = np.arange(next_t, next_t + count, dtype=np.int64) * 7
            engine.write_batch(name, t, (t % 13) * 0.5)
            next_t += count
        else:
            _tag, start, length = op
            engine.delete(name, start, start + length)


def _final_state(engine, name):
    engine.flush(name)
    from repro.storage.merge import merge_arrays
    reader = engine.data_reader()
    chunks = [(*reader.load_chunk(meta), meta.version)
              for meta in engine.chunks_for(name)]
    t, v = merge_arrays(chunks, engine.deletes_for(name))
    return t.tolist(), v.tolist()


@given(st.lists(_op_sequence(), min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_concurrent_equals_sequential_per_series(tmp_path_factory,
                                                 programs):
    config = StorageConfig(avg_series_point_number_threshold=25,
                           points_per_page=10, parallelism=2)
    base = tmp_path_factory.mktemp("prop-conc")
    names = ["s%d" % i for i in range(len(programs))]

    with StorageEngine(base / "concurrent", config) as concurrent:
        for name in names:
            concurrent.create_series(name)
        barrier = threading.Barrier(len(programs))
        errors = []

        def worker(name, ops):
            try:
                barrier.wait(timeout=30)
                _apply(concurrent, name, ops)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(name, ops))
                   for name, ops in zip(names, programs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors
        assert not any(t.is_alive() for t in threads), "deadlock"
        concurrent_states = {name: _final_state(concurrent, name)
                             for name in names}

    # Replay each program alone; the per-series outcome must be equal.
    for name, ops in zip(names, programs):
        with StorageEngine(base / ("solo-%s" % name), config) as solo:
            solo.create_series(name)
            _apply(solo, name, ops)
            assert _final_state(solo, name) == concurrent_states[name], \
                "series %s diverged from its sequential replay" % name


@given(st.integers(50, 400),
       st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                min_size=1, max_size=60),
       st.integers(0, 4))
@settings(max_examples=15, deadline=None)
def test_chunk_cache_invariants_under_concurrency(capacity, ops, seed):
    stats = IoStats()
    cache = ChunkCache(capacity_points=capacity, stats=stats)
    arrays = {k: np.arange(k % 45 + 5) for k in range(31)}
    n_threads = 4
    gets = [0] * n_threads

    def worker(index):
        rng = np.random.default_rng((seed, index))
        for is_get, key in ops:
            if rng.random() < 0.3:  # thread-local shuffle of the plan
                is_get = not is_get
            if is_get:
                got = cache.get(key)
                gets[index] += 1
                if got is not None:
                    assert got.size == key % 45 + 5
            else:
                cache.put(key, arrays[key])
            assert cache.points <= cache.capacity

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not any(t.is_alive() for t in threads), "deadlock"
    counts = cache.stats()
    assert counts["hits"] + counts["misses"] == sum(gets)
    assert counts["points"] <= capacity
    assert stats.cache_hits == counts["hits"]
    assert stats.cache_misses == counts["misses"]
