"""Unit tests for the seeded ingest torture generator."""

import numpy as np
import pytest

from repro.core import M4UDFOperator
from repro.datasets import TortureConfig, TortureStream, generate_torture
from repro.storage import StorageConfig, StorageEngine


class TestConfigValidation:
    def test_defaults_are_valid(self):
        generate_torture(TortureConfig(n_points=100))

    @pytest.mark.parametrize("kwargs", [
        {"n_points": 0},
        {"batch_size": 0},
        {"out_of_order_fraction": -0.1},
        {"out_of_order_fraction": 1.5},
        {"duplicate_fraction": -0.2},
        {"max_lag_batches": 0},
        {"dataset": "NoSuchProfile"},
    ])
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            TortureConfig(**kwargs)


class TestGenerator:
    def test_deterministic_across_calls(self):
        config = TortureConfig(n_points=2000, batch_size=100,
                               out_of_order_fraction=0.3,
                               duplicate_fraction=0.1, seed=42)
        a, b = generate_torture(config), generate_torture(config)
        assert len(a.batches) == len(b.batches)
        for (ta, va), (tb, vb) in zip(a.batches, b.batches):
            assert np.array_equal(ta, tb)
            assert np.array_equal(va, vb)

    def test_seed_changes_the_stream(self):
        config = TortureConfig(n_points=2000, batch_size=100,
                               out_of_order_fraction=0.3, seed=1)
        a = generate_torture(config)
        b = generate_torture(config, seed=2)
        assert any(not np.array_equal(ta, tb)
                   for (ta, _), (tb, _) in zip(a.batches, b.batches))

    def test_batch_dtypes_and_shapes(self):
        stream = generate_torture(n_points=500, batch_size=64)
        assert isinstance(stream, TortureStream)
        for t, v in stream.batches:
            assert t.dtype == np.int64 and v.dtype == np.float64
            assert t.ndim == v.ndim == 1 and t.size == v.size > 0

    def test_in_order_stream_has_no_pathology(self):
        stream = generate_torture(n_points=1000, batch_size=100,
                                  out_of_order_fraction=0.0,
                                  duplicate_fraction=0.0)
        stats = stream.stats()
        assert stats["out_of_order"] == 0
        assert stats["duplicates"] == 0
        assert stats["emitted"] == stats["unique"] == 1000

    def test_pathology_is_realized_when_asked(self):
        stream = generate_torture(n_points=3000, batch_size=150,
                                  out_of_order_fraction=0.3,
                                  duplicate_fraction=0.05, seed=3)
        stats = stream.stats()
        assert stats["out_of_order"] > 0
        assert stats["duplicates"] > 0
        assert stats["emitted"] == stats["unique"] + stats["duplicates"]

    def test_dataset_profile_shapes_the_values(self):
        plain = generate_torture(n_points=400, batch_size=50, seed=0)
        kob = generate_torture(n_points=400, batch_size=50, seed=0,
                               dataset="KOB")
        assert not np.array_equal(plain.expected()[1], kob.expected()[1])


class TestExpected:
    def test_expected_is_sorted_unique(self):
        stream = generate_torture(n_points=2000, batch_size=100,
                                  out_of_order_fraction=0.4,
                                  duplicate_fraction=0.1, seed=9)
        t, v = stream.expected()
        assert t.dtype == np.int64 and v.dtype == np.float64
        assert np.all(np.diff(t) > 0)
        assert t.size == v.size == stream.stats()["unique"]

    def test_last_write_wins(self):
        """A hand-built stream: the re-emission of t=5 must win."""
        batches = ((np.array([5, 6], dtype=np.int64),
                    np.array([1.0, 2.0])),
                   (np.array([5], dtype=np.int64), np.array([9.0])))
        stream = TortureStream(
            config=TortureConfig(n_points=3, batch_size=2),
            batches=batches)
        t, v = stream.expected()
        assert list(t) == [5, 6]
        assert list(v) == [9.0, 2.0]

    def test_engine_replay_matches_expected(self, tmp_path):
        """Writing the batches in emission order gives a store whose
        merged view equals ``expected()`` — the last-write-wins
        contract the engine and the generator share."""
        stream = generate_torture(n_points=2500, batch_size=125,
                                  out_of_order_fraction=0.35,
                                  duplicate_fraction=0.08, seed=17)
        config = StorageConfig(avg_series_point_number_threshold=200)
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            for t, v in stream.batches:
                engine.write_batch("s", t, v)
            engine.flush_all()
            t_exp, v_exp = stream.expected()
            merged = M4UDFOperator(engine).merged_series(
                "s", int(t_exp[0]), int(t_exp[-1]) + 1)
            assert np.array_equal(merged.timestamps, t_exp)
            assert np.array_equal(merged.values, v_exp)
