"""Unit tests for CSV import/export."""

import numpy as np
import pytest

from repro.datasets import load_csv, load_csv_series, save_csv
from repro.errors import ReproError


class TestRoundtrip:
    def test_basic(self, tmp_path):
        path = tmp_path / "data.csv"
        t = np.array([1, 2, 3], dtype=np.int64)
        v = np.array([1.5, -2.25, 0.0])
        save_csv(path, t, v)
        out_t, out_v = load_csv(path)
        np.testing.assert_array_equal(out_t, t)
        np.testing.assert_array_equal(out_v, v)

    def test_float_precision_preserved(self, tmp_path):
        path = tmp_path / "data.csv"
        v = np.array([np.pi, 1 / 3, 1e-300])
        save_csv(path, np.arange(3, dtype=np.int64), v)
        _, out_v = load_csv(path)
        np.testing.assert_array_equal(out_v, v)

    def test_no_header(self, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(path, [1], [2.0], header=None)
        out_t, _ = load_csv(path, has_header=False)
        assert out_t.tolist() == [1]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(path, [], [])
        out_t, out_v = load_csv(path)
        assert out_t.size == 0 and out_v.size == 0


class TestValidation:
    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_csv(tmp_path / "x.csv", [1, 2], [1.0])

    def test_bad_cell_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,value\n1,2.0\nnot_a_number,3.0\n")
        with pytest.raises(ReproError, match=":3"):
            load_csv(path)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,value\n1\n")
        with pytest.raises(ReproError, match="two columns"):
            load_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n1,1.0\n\n2,2.0\n")
        out_t, _ = load_csv(path)
        assert out_t.tolist() == [1, 2]


class TestSeriesLoader:
    def test_sorts_unordered_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n3,3.0\n1,1.0\n2,2.0\n")
        series = load_csv_series(path)
        assert series.timestamps.tolist() == [1, 2, 3]

    def test_duplicate_times_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n1,1.0\n1,2.0\n")
        with pytest.raises(ReproError):
            load_csv_series(path)
