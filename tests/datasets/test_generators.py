"""Unit tests for the synthetic dataset generators (Table 2 profiles)."""

import numpy as np
import pytest

from repro.datasets import PROFILES, dataset_summary, generate


class TestProfiles:
    def test_four_paper_datasets_present(self):
        assert set(PROFILES) == {"BallSpeed", "MF03", "KOB", "RcvTime"}

    @pytest.mark.parametrize("name", list(PROFILES))
    def test_strictly_increasing_timestamps(self, name):
        t, v = generate(name, 5000)
        assert t.size == 5000 and v.size == 5000
        assert t.dtype == np.int64 and v.dtype == np.float64
        assert np.all(np.diff(t) > 0)
        assert np.all(np.isfinite(v))

    @pytest.mark.parametrize("name", list(PROFILES))
    def test_deterministic_for_seed(self, name):
        t1, v1 = generate(name, 1000, seed=3)
        t2, v2 = generate(name, 1000, seed=3)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(v1, v2)
        t3, v3 = generate(name, 1000, seed=4)
        # A different seed must change the data (BallSpeed keeps its
        # perfectly regular clock, so compare values as well).
        assert not (np.array_equal(t1, t3) and np.array_equal(v1, v3))

    def test_generate_series(self):
        series = PROFILES["MF03"].generate_series(500)
        assert len(series) == 500


class TestFrequencyProfiles:
    def test_ballspeed_is_perfectly_regular(self):
        t, _ = generate("BallSpeed", 2000)
        assert np.all(np.diff(t) == 500)  # 2000 Hz in microseconds

    def test_mf03_mostly_10ms(self):
        t, _ = generate("MF03", 5000)
        deltas = np.diff(t)
        assert np.median(deltas) == 10
        assert (deltas > 10).mean() < 0.05  # rare jitter only

    def test_kob_has_9s_period_and_gaps(self):
        t, _ = generate("KOB", 5000)
        deltas = np.diff(t)
        assert np.median(deltas) == 9000
        assert deltas.max() >= 120_000  # transmission interruptions

    def test_rcvtime_is_bursty(self):
        t, _ = generate("RcvTime", 10_000)
        deltas = np.diff(t)
        # Heavy skew: the largest gap dwarfs the median.
        assert deltas.max() > 50 * np.median(deltas)

    def test_skewed_datasets_have_varying_chunk_spans(self):
        """The property behind the paper's Figure 10/14 dataset
        differences: KOB/RcvTime chunks vary wildly in time length."""
        for name, factor in (("KOB", 2), ("RcvTime", 20)):
            t, _ = generate(name, 20_000)
            spans = [t[i + 1000] - t[i] for i in range(0, 19_000, 1000)]
            assert max(spans) > factor * min(spans), name


class TestSummary:
    def test_summary_rows(self):
        rows = dataset_summary(2000)
        assert len(rows) == 4
        for name, duration, count in rows:
            assert name in PROFILES
            assert count == 2000
            assert isinstance(duration, str) and duration
