"""Tests for anomaly injection — including the visualization property
that motivates M4: injected anomalies stay visible after reduction."""

import numpy as np
import pytest

from repro.datasets.anomalies import (
    inject_dropout,
    inject_drift,
    inject_flatline,
    inject_level_shift,
    inject_spikes,
    inject_standard_suite,
)
from repro.errors import ReproError


@pytest.fixture
def base():
    t = np.arange(10_000, dtype=np.int64) * 100
    rng = np.random.default_rng(5)
    return t, rng.normal(50.0, 1.0, t.size)


class TestInjectors:
    def test_spikes_change_exactly_n_points(self, base):
        t, v = base
        out_t, out_v, anomalies = inject_spikes(t, v, n=7)
        assert len(anomalies) == 7
        assert int((out_v != v).sum()) == 7
        np.testing.assert_array_equal(out_t, t)

    def test_spike_magnitude_visible(self, base):
        t, v = base
        _t, out_v, anomalies = inject_spikes(t, v, n=1, magnitude=100.0)
        row = anomalies[0].start_row
        assert abs(out_v[row] - v[row]) == pytest.approx(100.0)

    def test_spikes_deterministic(self, base):
        t, v = base
        a = inject_spikes(t, v, seed=3)[1]
        b = inject_spikes(t, v, seed=3)[1]
        np.testing.assert_array_equal(a, b)

    def test_too_many_spikes_rejected(self, base):
        t, v = base
        with pytest.raises(ReproError):
            inject_spikes(t[:3], v[:3], n=5)

    def test_level_shift_bounds(self, base):
        t, v = base
        _t, out_v, anomalies = inject_level_shift(t, v, magnitude=10.0)
        shift = anomalies[0]
        np.testing.assert_allclose(
            out_v[shift.start_row:shift.end_row],
            v[shift.start_row:shift.end_row] + 10.0)
        np.testing.assert_array_equal(out_v[:shift.start_row],
                                      v[:shift.start_row])

    def test_flatline_is_constant(self, base):
        t, v = base
        _t, out_v, anomalies = inject_flatline(t, v)
        flat = anomalies[0]
        segment = out_v[flat.start_row:flat.end_row]
        assert np.all(segment == segment[0])

    def test_dropout_removes_points(self, base):
        t, v = base
        out_t, out_v, anomalies = inject_dropout(t, v)
        drop = anomalies[0]
        assert out_t.size == t.size - drop.n_rows
        assert out_t.size == out_v.size
        assert np.all(np.diff(out_t) > 0)

    def test_drift_monotone_offset(self, base):
        t, v = base
        _t, out_v, anomalies = inject_drift(t, v, rate=0.01)
        drift = anomalies[0]
        offsets = out_v[drift.start_row:] - v[drift.start_row:]
        assert np.all(np.diff(offsets) > 0)

    def test_standard_suite_composes(self, base):
        t, v = base
        out_t, out_v, anomalies = inject_standard_suite(t, v)
        kinds = {a.kind for a in anomalies}
        assert kinds == {"spike", "level_shift", "flatline", "dropout"}
        assert out_t.size < t.size  # dropout removed points

    def test_empty_input_rejected(self):
        with pytest.raises(ReproError):
            inject_spikes(np.empty(0, dtype=np.int64), np.empty(0))


class TestAnomaliesSurviveM4:
    """The motivating property: M4 reduction keeps anomalies visible."""

    def test_spike_survives_reduction(self, base):
        from repro.core import m4_aggregate_arrays
        t, v = base
        out_t, out_v, anomalies = inject_spikes(t, v, n=3,
                                                magnitude=500.0)
        result = m4_aggregate_arrays(out_t, out_v, int(out_t[0]),
                                     int(out_t[-1]) + 1, 100)
        reduced = result.to_series()
        for anomaly in anomalies:
            spiked_value = float(out_v[anomaly.start_row])
            assert np.any(np.isclose(reduced.values, spiked_value))

    def test_spike_survives_in_pixels(self, base):
        """A spike lights pixels in the M4 rendering that the clean
        series' rendering does not."""
        from repro.core import TimeSeries
        from repro.viz import PixelGrid, compare_pixels, m4_reduce, rasterize
        t, v = base
        out_t, out_v, _ = inject_spikes(t, v, n=1, magnitude=500.0,
                                        seed=9)
        grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(out_v.min()),
                         float(out_v.max()), 120, 60)
        clean = rasterize(TimeSeries(t, v), grid)
        reduced = m4_reduce(out_t, out_v, grid.t_qs, grid.t_qe, 120)
        spiked = rasterize(reduced, grid)
        assert compare_pixels(clean, spiked).spurious_pixels > 0
