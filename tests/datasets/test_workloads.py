"""Unit tests for the workload builders (the Sections 4.3-4.5 axes)."""

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator
from repro.datasets import (
    apply_delete_workload,
    build_engine,
    load_sequential,
    load_with_overlap,
    overlap_percentage,
)


@pytest.fixture
def arrays():
    t = np.arange(2000, dtype=np.int64) * 10
    v = np.sin(t / 100.0)
    return t, v


class TestLoadSequential:
    def test_no_overlap(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_sequential(engine, "s", t, v)
            assert overlap_percentage(engine, "s") == 0.0
            assert engine.total_points("s") == t.size


class TestLoadWithOverlap:
    @pytest.mark.parametrize("target", [0, 20, 40, 100])
    def test_overlap_close_to_target(self, tmp_path, arrays, target):
        t, v = arrays
        with build_engine(tmp_path / ("db%d" % target),
                          chunk_points=100) as engine:
            load_with_overlap(engine, "s", t, v, target)
            measured = overlap_percentage(engine, "s")
            assert abs(measured - target) <= 15, measured

    def test_no_data_lost(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_with_overlap(engine, "s", t, v, 50)
            assert engine.total_points("s") == t.size

    def test_queries_identical_regardless_of_overlap(self, tmp_path,
                                                     arrays):
        t, v = arrays
        results = []
        for overlap in (0, 40):
            with build_engine(tmp_path / ("db%d" % overlap),
                              chunk_points=100) as engine:
                load_with_overlap(engine, "s", t, v, overlap)
                results.append(M4LSMOperator(engine).query(
                    "s", int(t[0]), int(t[-1]) + 1, 11))
        assert results[0].semantically_equal(results[1])

    def test_bad_percentage_rejected(self, tmp_path, arrays):
        t, v = arrays
        from repro.errors import ReproError
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            with pytest.raises(ReproError):
                load_with_overlap(engine, "s", t, v, 150)


class TestDeleteWorkload:
    def test_delete_pct_scales_with_chunks(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_sequential(engine, "s", t, v)  # 20 chunks
            issued = apply_delete_workload(engine, "s", t, delete_pct=50)
            assert len(issued) == 10

    def test_explicit_count_and_range(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_sequential(engine, "s", t, v)
            issued = apply_delete_workload(engine, "s", t, n_deletes=3,
                                           delete_range=55)
            assert len(issued) == 3
            assert all(d.t_end - d.t_start == 55 for d in issued)

    def test_zero_deletes(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_sequential(engine, "s", t, v)
            assert apply_delete_workload(engine, "s", t, delete_pct=0) == []

    def test_operators_agree_under_delete_workload(self, tmp_path, arrays):
        t, v = arrays
        with build_engine(tmp_path / "db", chunk_points=100) as engine:
            load_with_overlap(engine, "s", t, v, 30)
            apply_delete_workload(engine, "s", t, delete_pct=40,
                                  delete_range=200)
            a = M4UDFOperator(engine).query("s", int(t[0]),
                                            int(t[-1]) + 1, 13)
            b = M4LSMOperator(engine).query("s", int(t[0]),
                                            int(t[-1]) + 1, 13)
            assert a.semantically_equal(b)
