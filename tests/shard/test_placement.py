"""Placement math and the pinned on-disk topology."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.errors import StorageError
from repro.shard import (
    TOPOLOGY_FILE,
    open_store,
    read_topology,
    resolve_shards,
    shard_dir,
    shard_of,
    write_topology,
)
from repro.shard.placement import MAX_SHARDS
from repro.storage import StorageConfig, StorageEngine


class TestShardOf:
    def test_matches_crc32_mod_n(self):
        for name in ("root.a", "root.b", "ball", "sweep07", "日本語"):
            expected = zlib.crc32(name.encode("utf-8")) % 4
            assert shard_of(name, 4) == expected

    def test_stable_known_values(self):
        # Frozen: a placement change silently reshuffles every store.
        assert shard_of("root.a", 4) == zlib.crc32(b"root.a") % 4
        assert shard_of("root.a", 1) == 0

    def test_spreads_series(self):
        owners = {shard_of("root.s%d" % i, 8) for i in range(200)}
        assert owners == set(range(8))

    def test_rejects_bad_counts(self, tmp_path):
        with pytest.raises(ValueError):
            shard_of("root.a", 0)
        with pytest.raises(StorageError, match=r"\[1, %d\]" % MAX_SHARDS):
            resolve_shards(str(tmp_path), requested=MAX_SHARDS + 1)


class TestTopology:
    def test_pin_roundtrip(self, tmp_path):
        write_topology(str(tmp_path), 4)
        assert read_topology(str(tmp_path))["shards"] == 4
        doc = json.loads((tmp_path / TOPOLOGY_FILE).read_text())
        assert doc == {"version": 1, "shards": 4, "placement": "crc32"}

    def test_missing_is_none(self, tmp_path):
        assert read_topology(str(tmp_path)) is None

    def test_corrupt_file_errors(self, tmp_path):
        (tmp_path / TOPOLOGY_FILE).write_text("not json")
        with pytest.raises(StorageError):
            read_topology(str(tmp_path))

    def test_pinned_wins_over_default(self, tmp_path):
        store = str(tmp_path)
        write_topology(store, 4)
        assert resolve_shards(store) == 4
        assert resolve_shards(store, requested=4) == 4

    def test_explicit_mismatch_errors(self, tmp_path):
        store = str(tmp_path)
        write_topology(store, 4)
        with pytest.raises(StorageError, match="pinned"):
            resolve_shards(store, requested=2)

    def test_refuses_sharding_unsharded_data(self, tmp_path):
        with StorageEngine(tmp_path / "db", StorageConfig()) as eng:
            eng.create_series("s")
            eng.write("s", 1, 1.0)
            eng.flush_all()
        with pytest.raises(StorageError, match="unsharded"):
            resolve_shards(str(tmp_path / "db"), requested=4)

    def test_shard_dir_layout(self, tmp_path):
        assert shard_dir(str(tmp_path), 3).endswith("shard-03")


class TestOpenStore:
    def test_one_shard_is_plain_engine(self, tmp_path):
        with open_store(str(tmp_path / "db"), StorageConfig(),
                        shards=1) as eng:
            assert isinstance(eng, StorageEngine)
            assert not getattr(eng, "is_sharded", False)
        # shards=1 must not pin a topology: the store stays a plain
        # single-engine directory.
        assert read_topology(str(tmp_path / "db")) is None

    def test_multi_shard_pins_and_reopens(self, tmp_path):
        store = str(tmp_path / "db")
        with open_store(store, StorageConfig(), shards=2) as eng:
            assert eng.is_sharded and eng.n_shards == 2
        assert read_topology(store)["shards"] == 2
        # Reopen with no flag: the pinned topology decides.
        with open_store(store, StorageConfig()) as eng:
            assert eng.is_sharded and eng.n_shards == 2

    def test_placement_survives_restart(self, tmp_path):
        store = str(tmp_path / "db")
        names = ["root.s%d" % i for i in range(20)]
        with open_store(store, StorageConfig(), shards=4) as eng:
            before = {n: eng.series_shard(n) for n in names}
        with open_store(store, StorageConfig()) as eng:
            after = {n: eng.series_shard(n) for n in names}
        assert before == after
        assert set(before.values()) == set(range(4))
