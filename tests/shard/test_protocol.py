"""Framing, corruption detection and error transport on the shard pipe."""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    QueryError,
    ShardDownError,
    ShardError,
    ShardProtocolError,
    StorageError,
)
from repro.shard.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    decode_error,
    encode_error,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pipe():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pipe):
        a, b = pipe
        payload = {"id": 7, "op": "write", "t": [1, 2, 3]}
        send_frame(a, payload)
        assert recv_frame(b) == payload

    def test_numpy_arrays_cross_intact(self, pipe):
        a, b = pipe
        t = np.arange(10_000, dtype=np.int64)
        v = np.sin(t / 9.0)
        send_frame(a, {"t": t, "v": v})
        got = recv_frame(b)
        np.testing.assert_array_equal(got["t"], t)
        np.testing.assert_array_equal(got["v"], v)

    def test_large_payload(self, pipe):
        a, b = pipe
        blob = np.zeros(1 << 20, dtype=np.float64)  # 8 MiB
        done = threading.Thread(target=send_frame, args=(a, {"v": blob}))
        done.start()
        got = recv_frame(b)
        done.join()
        assert got["v"].nbytes == blob.nbytes

    def test_clean_eof_is_eoferror(self, pipe):
        a, b = pipe
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)

    def test_mid_frame_eof_is_protocol_error(self, pipe):
        a, b = pipe
        header = struct.pack("!4sII", MAGIC, 100, 0)
        a.sendall(header + b"short")
        a.close()
        with pytest.raises(ShardProtocolError):
            recv_frame(b)

    def test_bad_magic(self, pipe):
        a, b = pipe
        a.sendall(struct.pack("!4sII", b"XXXX", 4, 0) + b"\0\0\0\0")
        with pytest.raises(ShardProtocolError, match="magic"):
            recv_frame(b)

    def test_crc_mismatch(self, pipe):
        a, b = pipe
        payload = b"\x80\x04N."  # pickle of None
        bad_crc = (zlib.crc32(payload) ^ 0xFFFF) & 0xFFFFFFFF
        a.sendall(struct.pack("!4sII", MAGIC, len(payload), bad_crc)
                  + payload)
        with pytest.raises(ShardProtocolError, match="checksum"):
            recv_frame(b)

    def test_oversize_frame_rejected(self, pipe):
        a, b = pipe
        a.sendall(struct.pack("!4sII", MAGIC, MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(ShardProtocolError):
            recv_frame(b)


class TestErrorTransport:
    def test_repro_errors_cross_by_type(self):
        for exc in (StorageError("boom"), QueryError("bad sql"),
                    DeadlineExceededError("too slow")):
            wire = encode_error(exc)
            back = decode_error(wire)
            assert type(back) is type(exc)
            assert str(exc) in str(back)

    def test_builtin_allowlist(self):
        back = decode_error(encode_error(KeyError("missing")))
        assert isinstance(back, KeyError)

    def test_unknown_type_degrades_to_shard_error(self):
        wire = {"type": "TotallyMadeUpError", "message": "?"}
        back = decode_error(wire)
        assert type(back) is ShardError
        assert "TotallyMadeUpError" in str(back)

    def test_shard_down_error_keeps_shard_attr(self):
        exc = ShardDownError("gone", shard=3)
        assert exc.shard == 3
