"""ShardRouter behaviour: parity, crash semantics, deadlines."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    SeriesNotFoundError,
    ShardDownError,
)
from repro.query.executor import Executor
from repro.query.sql import parse as parse_sql
from repro.server.service import render_chart
from repro.shard import ShardRouter, open_store
from repro.storage import StorageConfig, StorageEngine
from repro.storage.deadline import Deadline, deadline_scope
from repro.viz.chart import to_pbm

SQL = "SELECT M4(v) FROM %s GROUP BY SPANS(64)"


def _series(seed, n=3000):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.int64) * 5
    v = np.sin(t / 131.0) * 4 + rng.normal(0, 0.3, n)
    return t, v


def _load(engine, names):
    for seed, name in enumerate(names):
        t, v = _series(seed)
        engine.create_series(name)
        engine.write_batch(name, t, v)
    engine.flush_all()


@pytest.fixture
def router(tmp_path):
    r = open_store(str(tmp_path / "db"), StorageConfig(), shards=2)
    assert isinstance(r, ShardRouter)
    yield r
    r.close()


NAMES = ["root.a", "root.b", "root.c", "root.d"]


class TestParity:
    def test_rows_and_pixels_match_unsharded(self, tmp_path, router):
        _load(router, NAMES)
        with StorageEngine(tmp_path / "ref", StorageConfig()) as ref:
            _load(ref, NAMES)
            for name in NAMES:
                want = Executor(ref).execute(parse_sql(SQL % name))
                got = router.execute_sql(SQL % name)
                assert tuple(got.rows) == tuple(want.rows)
                assert got.columns == want.columns
                want_m, _ = render_chart(ref, name, 128, 48)
                got_m, _ = router.render_series(name, 128, 48)
                assert to_pbm(got_m) == to_pbm(want_m)

    def test_series_spread_across_both_shards(self, router):
        _load(router, NAMES)
        owners = {router.series_shard(n) for n in NAMES}
        assert owners == {0, 1}
        assert sorted(router.series_names()) == NAMES
        rows, down = router.series_info()
        assert [r["name"] for r in rows] == NAMES
        assert down == []

    def test_restart_reads_back_same_data(self, tmp_path, router):
        _load(router, NAMES)
        before = {n: tuple(router.execute_sql(SQL % n).rows)
                  for n in NAMES}
        router.close()
        with open_store(str(tmp_path / "db"), StorageConfig()) as again:
            assert again.n_shards == 2
            for name in NAMES:
                assert tuple(again.execute_sql(SQL % name).rows) \
                    == before[name]

    def test_query_errors_cross_by_type(self, router):
        _load(router, NAMES[:1])
        # The worker raised SeriesNotFoundError; the exact type (not a
        # generic ShardError) must arrive on the router side.
        with pytest.raises(SeriesNotFoundError):
            router.execute_sql(SQL % "root.nope")


class TestCrash:
    def _kill_owner(self, router, name):
        shard = router.series_shard(name)
        os.kill(router.shard_pids()[shard], signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while shard in router.alive_shards():
            if time.monotonic() > deadline:
                raise AssertionError("shard %d never went down" % shard)
            time.sleep(0.02)
        return shard

    def test_dead_shard_degrades_not_hangs(self, router):
        _load(router, NAMES)
        dead = self._kill_owner(router, "root.a")
        t0 = time.monotonic()
        table = router.execute_sql(SQL % "root.a")
        assert time.monotonic() - t0 < 5.0
        assert len(table.rows) == 0
        assert table.meta["degraded"] is True
        assert table.meta["shard_down"] == dead

    def test_strict_read_raises(self, router):
        _load(router, NAMES)
        self._kill_owner(router, "root.a")
        with pytest.raises(ShardDownError):
            router.execute_sql(SQL % "root.a", strict=True)
        with pytest.raises(ShardDownError):
            router.render_series("root.a", 64, 32)

    def test_writes_to_dead_shard_raise(self, router):
        _load(router, NAMES)
        self._kill_owner(router, "root.a")
        with pytest.raises(ShardDownError) as info:
            router.write("root.a", 10**9, 1.0)
        assert info.value.shard == router.series_shard("root.a")

    def test_live_shards_keep_serving(self, router):
        _load(router, NAMES)
        dead = self._kill_owner(router, "root.a")
        survivor = next(n for n in NAMES
                        if router.series_shard(n) != dead)
        assert len(router.execute_sql(SQL % survivor).rows) > 0
        workers = router.shard_workers()
        assert workers["shard-%02d" % dead] is False
        assert sum(1 for alive in workers.values() if alive) == 1

    def test_scatter_reports_down_shards(self, router):
        _load(router, NAMES)
        dead = self._kill_owner(router, "root.a")
        assert router.flush_all() == [dead]
        rows, down = router.series_info()
        assert down == [dead]
        live = {n for n in NAMES if router.series_shard(n) != dead}
        assert {r["name"] for r in rows} == live
        snap = router.observability_snapshot()
        assert snap["shards_down"] == [dead]
        assert snap["shards"]["shard-%02d" % dead] == {"down": True}

    def test_close_after_crash_is_clean(self, router):
        _load(router, NAMES)
        self._kill_owner(router, "root.a")
        router.close()
        router.close()  # idempotent


class TestDeadline:
    def test_deadline_crosses_the_pipe(self, router):
        _load(router, NAMES[:1])
        t0 = time.monotonic()
        with deadline_scope(Deadline(0.3)):
            with pytest.raises(DeadlineExceededError):
                router.execute_sql(SQL % "root.a", debug_sleep_s=30.0)
        # The worker aborted its own sleep: far sooner than the debug
        # sleep, a touch after the 0.3s budget.
        assert time.monotonic() - t0 < 5.0

    def test_expired_deadline_fails_fast(self, router):
        _load(router, NAMES[:1])
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(DeadlineExceededError):
                router.execute_sql(SQL % "root.a")
