"""The HTTP tier over a shard router: scatter-gather, parity, crashes."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.server import ReproClient, ServerConfig, start_server
from repro.shard import open_store
from repro.storage import StorageConfig, StorageEngine

SQL = "SELECT M4(v) FROM %s GROUP BY SPANS(64)"
NAMES = ["root.a", "root.b", "root.c", "root.d"]


def _load(engine, names=NAMES, n=4000):
    for seed, name in enumerate(names):
        rng = np.random.default_rng(seed)
        t = np.arange(n, dtype=np.int64) * 3
        v = np.cos(t / 97.0) * 5 + rng.normal(0, 0.2, n)
        engine.create_series(name)
        engine.write_batch(name, t, v)
    engine.flush_all()


@pytest.fixture
def make_server(tmp_path):
    """Factory: a live server over a store opened with N shards."""
    alive = []

    def build(shards, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault("quiet", True)
        config_kwargs.setdefault("debug_hooks", True)
        store = str(tmp_path / ("db-%d-%d" % (shards, len(alive))))
        engine = open_store(store, StorageConfig(), shards=shards)
        _load(engine)
        handle = start_server(engine, ServerConfig(**config_kwargs))
        client = ReproClient(handle.url)
        alive.append((handle, engine))
        return engine, client

    yield build
    for handle, engine in alive:
        handle.stop()
        engine.close()


class TestParity:
    def test_sharded_answers_match_unsharded(self, make_server):
        _, plain = make_server(1)
        _, sharded = make_server(4)
        for name in NAMES:
            want = plain.query(SQL % name)
            got = sharded.query(SQL % name)
            assert got["columns"] == want["columns"]
            assert got["rows"] == want["rows"]
            assert got["degraded"] is False
            want_pbm = plain.render_response(name, fmt="pbm").body
            got_pbm = sharded.render_response(name, fmt="pbm").body
            assert got_pbm == want_pbm

    def test_shards_one_is_plain_engine(self, make_server):
        engine, client = make_server(1)
        assert isinstance(engine, StorageEngine)
        assert client.query(SQL % "root.a")["rows"]
        health = client.healthz()
        assert "shards" not in health

    def test_series_listing_merged(self, make_server):
        _, plain = make_server(1)
        _, sharded = make_server(2)
        assert sharded.series() == plain.series()

    def test_healthz_reports_shards(self, make_server):
        _, client = make_server(4)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == {"total": 4, "alive": 4}
        assert all(health["workers"]["shard-%02d" % i] for i in range(4))

    def test_stats_aggregates_shards(self, make_server):
        _, client = make_server(2)
        client.query(SQL % "root.a")
        stats = client.stats()
        assert set(stats["shards"]) == {"shard-00", "shard-01"}
        assert stats["shards_down"] == []


def _kill_owner(engine, name):
    shard = engine.series_shard(name)
    os.kill(engine.shard_pids()[shard], signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while shard in engine.alive_shards():
        assert time.monotonic() < deadline, "shard never went down"
        time.sleep(0.02)
    return shard


class TestCrash:
    def test_query_degrades_with_headers(self, make_server):
        engine, client = make_server(2)
        dead = _kill_owner(engine, "root.a")
        response = client.query_response(SQL % "root.a")
        assert response.status == 200
        assert response.headers.get("X-Repro-Degraded") == "1"
        assert response.headers.get("X-Repro-Shard-Down") == str(dead)
        body = response.json()
        assert body["degraded"] is True and body["rows"] == []
        assert "degraded result" in body["warning"]

    def test_strict_query_is_503(self, make_server):
        engine, client = make_server(2)
        _kill_owner(engine, "root.a")
        response = client.query_response(SQL % "root.a", strict=True)
        assert response.status == 503
        assert "Retry-After" in response.headers

    def test_render_degrades_blank(self, make_server):
        engine, client = make_server(2)
        dead = _kill_owner(engine, "root.a")
        response = client.render_response("root.a", fmt="pbm")
        assert response.status == 200
        assert response.headers.get("X-Repro-Shard-Down") == str(dead)
        # A blank chart: P1 header then only zeros.
        pixels = b"".join(response.body.split(b"\n")[2:])
        assert set(pixels.replace(b" ", b"")) <= {ord("0")}

    def test_ingest_to_dead_shard_is_503(self, make_server):
        engine, client = make_server(2)
        _kill_owner(engine, "root.a")
        response = client.ingest_response("root.a", [10**9], [1.0])
        assert response.status == 503

    def test_live_series_unaffected(self, make_server):
        engine, client = make_server(2)
        dead = _kill_owner(engine, "root.a")
        survivor = next(n for n in NAMES
                        if engine.series_shard(n) != dead)
        assert client.query(SQL % survivor)["rows"]
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["shards"]["alive"] == 1
        assert health["workers"]["shard-%02d" % dead] is False
        listing = client.request("GET", "/series").json()
        assert listing["degraded"] is True
        assert listing["shards_down"] == [dead]


class TestDeadline:
    def test_pipe_deadline_is_504_not_hang(self, make_server):
        _, client = make_server(2)
        t0 = time.monotonic()
        response = client.query_response(SQL % "root.a",
                                         timeout_ms=300, sleep_ms=30_000)
        assert response.status == 504
        assert time.monotonic() - t0 < 10.0
