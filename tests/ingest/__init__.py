"""Tests for the streaming ingest subsystem."""
