"""Unit tests for :class:`repro.ingest.LiveFeed`."""

import threading
import time

import pytest

from repro.errors import ServerOverloadedError
from repro.ingest import LiveFeed
from repro.ingest.live import _EVENT_LOG


@pytest.fixture
def feed():
    f = LiveFeed()
    yield f
    f.close()


class TestPublishAndWait:
    def test_cursor_starts_at_zero(self, feed):
        assert feed.cursor("s") == 0

    def test_publish_advances_the_cursor(self, feed):
        assert feed.publish("s", 0, 10) == 1
        assert feed.publish("s", 10, 20) == 2
        assert feed.cursor("s") == 2
        assert feed.cursor("other") == 0  # per-series sequences

    def test_wait_returns_merged_ranges(self, feed):
        feed.publish("s", 0, 10)
        feed.publish("s", 10, 20)   # adjacent: merges
        feed.publish("s", 50, 60)   # disjoint: stays separate
        head, ranges, reset = feed.wait("s", 0, timeout=0)
        assert head == 3 and not reset
        assert ranges == ((0, 20), (50, 60))

    def test_wait_from_mid_cursor_sees_only_newer(self, feed):
        feed.publish("s", 0, 10)
        feed.publish("s", 100, 110)
        head, ranges, _ = feed.wait("s", 1, timeout=0)
        assert head == 2
        assert ranges == ((100, 110),)

    def test_wait_timeout_returns_no_progress(self, feed):
        started = time.monotonic()
        head, ranges, reset = feed.wait("s", 0, timeout=0.05)
        assert time.monotonic() - started >= 0.05
        assert head == 0 and ranges == () and not reset

    def test_wait_is_woken_by_publish(self, feed):
        results = []

        def waiter():
            results.append(feed.wait("s", 0, timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        feed.publish("s", 7, 9)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results[0] == (1, ((7, 9),), False)

    def test_cursor_fallen_off_the_ring_resets(self, feed):
        for i in range(_EVENT_LOG + 10):
            feed.publish("s", i, i + 1)
        head, ranges, reset = feed.wait("s", 1, timeout=0)
        assert reset and head == _EVENT_LOG + 10
        assert ranges == ()
        # Resuming from the returned head is clean again.
        feed.publish("s", 0, 1)
        head2, ranges2, reset2 = feed.wait("s", head, timeout=0)
        assert not reset2 and ranges2 == ((0, 1),)


class TestSubscribersAndClose:
    def test_subscriber_gauge_and_cap(self):
        feed = LiveFeed(max_subscribers=2)
        try:
            with feed.subscriber():
                with feed.subscriber():
                    assert feed.subscribers == 2
                    with pytest.raises(ServerOverloadedError) as info:
                        feed.subscriber().__enter__()
                    assert info.value.status == 503
                assert feed.subscribers == 1
            assert feed.subscribers == 0
        finally:
            feed.close()

    def test_max_subscribers_validated(self):
        with pytest.raises(ValueError):
            LiveFeed(max_subscribers=0)

    def test_close_wakes_waiters_immediately(self, feed):
        woken = threading.Event()

        def waiter():
            feed.wait("s", 0, timeout=30.0)
            woken.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        feed.close()
        assert woken.wait(timeout=5)
        thread.join(timeout=5)
        assert feed.closed
