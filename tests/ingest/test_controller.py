"""Unit tests for :class:`repro.ingest.IngestController`."""

import numpy as np
import pytest

from repro.core import M4UDFOperator
from repro.errors import IngestBackpressureError, SeriesNotFoundError
from repro.ingest import IngestController, LiveFeed, batch_nbytes


def _counter(engine, name):
    doc = engine.metrics.snapshot()["counters"].get(name)
    return doc["value"] if doc else 0


@pytest.fixture
def controller(engine):
    ctl = IngestController(engine)
    yield ctl
    ctl.close()


def _batch(lo, n):
    t = np.arange(lo, lo + n, dtype=np.int64)
    return t, np.sin(t * 0.01)


class TestSubmitAndApply:
    def test_ack_shape(self, controller):
        t, v = _batch(0, 50)
        ack = controller.submit("s", t, v)
        assert ack["accepted"] == 50
        assert ack["pending_batches"] >= 0
        assert ack["pending_bytes"] >= 0

    def test_points_become_queryable(self, engine, controller):
        t, v = _batch(0, 300)
        controller.submit("s", t, v)
        assert controller.drain()
        merged = M4UDFOperator(engine).merged_series("s", 0, 300)
        assert np.array_equal(merged.timestamps, t)
        assert np.array_equal(merged.values, v)

    def test_apply_order_is_accept_order(self, engine, controller):
        t, _ = _batch(0, 20)
        controller.submit("s", t, np.full(20, 1.0))
        controller.submit("s", t, np.full(20, 2.0))  # same timestamps
        assert controller.drain()
        merged = M4UDFOperator(engine).merged_series("s", 0, 20)
        assert np.all(merged.values == 2.0)  # last write won

    def test_out_of_order_batches_counted(self, engine, controller):
        controller.submit("s", *_batch(100, 50))
        controller.drain()
        controller.submit("s", *_batch(0, 50))  # behind the watermark
        controller.drain()
        assert _counter(engine, "ingest_out_of_order_batches_total") == 1
        assert _counter(engine, "ingest_points_total") == 100

    def test_auto_create_off_rejects_unknown_series(self, engine):
        ctl = IngestController(engine, auto_create=False)
        try:
            with pytest.raises(SeriesNotFoundError):
                ctl.submit("nope", *_batch(0, 5))
            engine.create_series("known")
            ctl.submit("known", *_batch(0, 5))
            assert ctl.drain()
        finally:
            ctl.close()

    @pytest.mark.parametrize("t, v", [
        ([], []),
        ([1, 2], [1.0]),
        ([[1, 2]], [[1.0, 2.0]]),
    ])
    def test_malformed_arrays_raise(self, controller, t, v):
        with pytest.raises(ValueError):
            controller.submit("s", t, v)


class TestBackpressure:
    def test_queue_full_sheds_with_retry_after(self, engine):
        # A queue one byte too small for the batch sheds at enqueue
        # time, before the writer can race to drain it.
        ctl = IngestController(engine,
                               queue_bytes=batch_nbytes(100) - 1,
                               retry_after_seconds=3)
        try:
            with pytest.raises(IngestBackpressureError) as exc_info:
                ctl.submit("s", *_batch(0, 100))
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after == 3
            assert _counter(engine, "ingest_sheds_total") == 1
        finally:
            ctl.close()

    def test_tenant_budget_is_per_tenant(self, engine):
        budget = batch_nbytes(100) + 1
        ctl = IngestController(engine, tenant_budget_bytes=budget)
        try:
            # Holding the controller's condition keeps the writer from
            # draining between submits (its lock is reentrant for this
            # thread), making the budget arithmetic deterministic.
            with ctl._cond:
                ctl.submit("s", *_batch(0, 100), tenant="a")
                with pytest.raises(IngestBackpressureError):
                    ctl.submit("s", *_batch(0, 100), tenant="a")
                # A different tenant spends its *own* budget.
                ctl.submit("s", *_batch(100, 100), tenant="b")
            assert ctl.drain()
            assert _counter(engine, "ingest_sheds_total") == 1
            assert _counter(engine, "ingest_points_total") == 200
        finally:
            ctl.close()

    def test_submit_after_close_sheds(self, engine):
        ctl = IngestController(engine)
        ctl.close()
        with pytest.raises(IngestBackpressureError):
            ctl.submit("s", *_batch(0, 5))

    def test_close_is_idempotent(self, engine):
        ctl = IngestController(engine)
        ctl.submit("s", *_batch(0, 5))
        ctl.close()
        ctl.close()
        assert _counter(engine, "ingest_points_total") == 5


class TestLiveFeedWiring:
    def test_applied_ranges_are_published(self, engine):
        feed = LiveFeed(metrics=engine.metrics)
        ctl = IngestController(engine, live_feed=feed)
        try:
            ctl.submit("s", *_batch(1000, 64))
            ctl.drain()
            head, ranges, reset = feed.wait("s", 0, timeout=5.0)
            assert head >= 1 and not reset
            assert ranges == ((1000, 1064),)
        finally:
            ctl.close()
            feed.close()

    def test_stats_snapshot(self, engine):
        ctl = IngestController(engine)
        try:
            ctl.submit("s", *_batch(0, 10))
            ctl.drain()
            stats = ctl.stats()
            assert stats["accepted_batches"] == 1
            assert stats["applied_batches"] == 1
            assert stats["pending_bytes"] == 0
        finally:
            ctl.close()
