"""End-to-end observability: engine spans, persistence, CLI surfaces.

Covers the acceptance criteria of the observability layer: a traced
query produces a span tree spanning read-path and operator spans with
I/O counter deltas attached, and ``repro stats`` reports counters plus
histogram quantiles (text, JSON and valid Prometheus exposition text)
after a load + query session.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.query.executor import Executor
from repro.query.session import Session
from repro.query.sql import parse as parse_sql
from repro.storage import StorageConfig, StorageEngine

from .test_exporters import parse_exposition


@pytest.fixture
def store(tmp_path, capsys):
    """A storage dir loaded through the CLI (separate process-like runs)."""
    csv = tmp_path / "data.csv"
    db = tmp_path / "db"
    assert main(["generate", "--dataset", "KOB", "--points", "3000",
                 "--out", str(csv)]) == 0
    assert main(["load", "--db", str(db), "--series", "root.k",
                 "--csv", str(csv), "--chunk-points", "500"]) == 0
    capsys.readouterr()
    return db


class TestSpanTree:
    def test_m4lsm_query_produces_read_and_operator_spans(self, engine):
        # A contested chunk (the overwrite) forces real solver I/O.
        engine.create_series("s")
        t = np.arange(500, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.write_batch("s", np.array([100], dtype=np.int64),
                           np.array([999.0]))
        engine.flush_all()
        executor = Executor(engine)
        executor.execute(parse_sql(
            "SELECT M4(s) FROM s GROUP BY SPANS(10)"))
        root = engine.tracer.last_root
        assert root.name == "query"
        operator = root.find("operator.m4lsm")
        assert operator is not None
        # Read path: the metadata pass charged metadata reads ...
        metadata = operator.find("read.metadata")
        assert metadata is not None
        assert metadata.counters.get("metadata_reads", 0) > 0
        # ... and the per-span solve loop charged chunk/page I/O.
        solve = operator.find("solve")
        assert solve is not None
        assert solve.attrs["spans"] == 10
        assert solve.counters.get("chunk_loads", 0) > 0
        assert solve.counters.get("pages_decoded", 0) > 0
        # The root rolls up every child's counters.
        assert root.counters.get("metadata_reads", 0) \
            >= metadata.counters["metadata_reads"]

    def test_m4udf_query_produces_scan_and_merge_spans(
            self, loaded_engine):
        engine, _t, _v = loaded_engine
        executor = Executor(engine)
        executor.execute(parse_sql(
            "SELECT M4(s) FROM s GROUP BY SPANS(10) USING M4UDF"))
        root = engine.tracer.last_root
        operator = root.find("operator.m4udf")
        assert operator is not None
        chunks = operator.find("read.chunks")
        assert chunks is not None
        assert chunks.counters.get("chunk_loads", 0) > 0
        assert chunks.counters.get("pages_decoded", 0) > 0
        assert operator.find("merge") is not None
        assert operator.find("aggregate") is not None

    def test_flush_and_seal_spans(self, engine):
        engine.create_series("s")
        # 130 points at a 50-point threshold: write_batch auto-seals
        # two chunks, flush_all seals the 30-point remainder.
        t = np.arange(130, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        assert engine.tracer.last_root.name == "write.batch"
        assert len(engine.tracer.last_root.find_all(
            "flush.seal_chunk")) == 2
        engine.flush_all()
        root = engine.tracer.last_root
        assert root.name == "flush"
        assert root.attrs["points"] == 30
        seal = root.find("flush.seal_chunk")
        assert seal is not None
        assert seal.attrs["points"] == 30

    def test_recovery_spans_on_reopen(self, tmp_path, small_config):
        db = tmp_path / "db"
        t = np.arange(120, dtype=np.int64)
        with StorageEngine(db, small_config) as engine:
            engine.create_series("s")
            engine.write_batch("s", t, t.astype(float))
            engine.flush_all()
        with StorageEngine(db, small_config) as engine:
            root = engine.tracer.last_root
            assert root.name == "recovery"
            for child in ("recovery.catalog", "recovery.tsfiles",
                          "recovery.mods", "recovery.wal"):
                assert root.find(child) is not None
            assert root.find("recovery.catalog").attrs["series"] == 1
            assert engine.metrics.counter(
                "engine_recoveries_total").value >= 1

    def test_explain_returns_table_and_trace(self, loaded_engine):
        engine, _t, _v = loaded_engine
        executor = Executor(engine)
        parsed = parse_sql("SELECT M4(s) FROM s GROUP BY SPANS(10)")
        table, trace = executor.explain(parsed)
        assert len(table) > 0
        assert trace is not None
        assert sum(trace.counts_by_mode().values()) == 10
        # Plain execution returns the identical table.
        assert executor.execute(parsed).rows == table.rows

    def test_explain_on_udf_has_no_solver_trace(self, loaded_engine):
        engine, _t, _v = loaded_engine
        executor = Executor(engine)
        table, trace = executor.explain(parse_sql(
            "SELECT M4(s) FROM s GROUP BY SPANS(10) USING M4UDF"))
        assert len(table) > 0
        assert trace is None


class TestEngineMetrics:
    def test_write_query_counters(self, loaded_engine):
        engine, t, _v = loaded_engine
        executor = Executor(engine)
        executor.execute(parse_sql(
            "SELECT M4(s) FROM s GROUP BY SPANS(10)"))
        metrics = engine.metrics
        assert metrics.counter("engine_points_written_total").value \
            == t.size
        assert metrics.counter("engine_chunks_sealed_total").value > 0
        assert metrics.counter("query_total", kind="m4",
                               operator="m4lsm").value == 1
        assert metrics.histogram("query_seconds", kind="m4").count == 1
        assert metrics.gauge("engine_series").value == 1

    def test_cache_hits_and_misses_flow_through_iostats(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=50,
                               points_per_page=20,
                               chunk_cache_points=100_000)
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            t = np.arange(500, dtype=np.int64)
            engine.write_batch("s", t, t.astype(float))
            engine.flush_all()
            executor = Executor(engine)
            parsed = parse_sql(
                "SELECT M4(s) FROM s GROUP BY SPANS(5) USING M4UDF")
            executor.execute(parsed)
            assert engine.stats.cache_misses > 0
            before = engine.stats.snapshot()
            executor.execute(parsed)
            diff = engine.stats.diff(before)
            # The second pass is served by the shared cache.
            assert diff.cache_hits > 0
            assert diff.cache_misses == 0

    def test_disabled_metrics_record_nothing(self, tmp_path):
        config = StorageConfig(metrics_enabled=False)
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            t = np.arange(100, dtype=np.int64)
            engine.write_batch("s", t, t.astype(float))
            engine.flush_all()
            snapshot = engine.metrics.snapshot()
            assert snapshot["counters"] == {}
            assert engine.tracer.last_root is None
        assert not (tmp_path / "db" / "obs.json").exists()


class TestPersistence:
    def test_obs_snapshot_survives_reopen(self, tmp_path, small_config):
        db = tmp_path / "db"
        t = np.arange(300, dtype=np.int64)
        with StorageEngine(db, small_config) as engine:
            engine.create_series("s")
            engine.write_batch("s", t, t.astype(float))
            engine.flush_all()
        assert (db / "obs.json").exists()
        with StorageEngine(db, small_config) as engine:
            counter = engine.metrics.counter("engine_points_written_total")
            assert counter.value == 300
            engine.write_batch("s", t + 1000, t.astype(float))
            engine.flush_all()
            Executor(engine).execute(parse_sql(
                "SELECT M4(s) FROM s GROUP BY SPANS(10)"))
        with StorageEngine(db, small_config) as engine:
            counter = engine.metrics.counter("engine_points_written_total")
            assert counter.value == 600
            # Lifetime io counters accumulate across sessions too.
            snapshot = engine.observability_snapshot()
            assert snapshot["iostats"]["bytes_read"] > 0

    def test_corrupt_obs_file_is_ignored(self, tmp_path, small_config):
        db = tmp_path / "db"
        with StorageEngine(db, small_config) as engine:
            engine.create_series("s")
        (db / "obs.json").write_text("{not json")
        with StorageEngine(db, small_config) as engine:
            assert engine.metrics.snapshot() is not None

    def test_slow_log_persists(self, tmp_path, small_config):
        config = StorageConfig(
            avg_series_point_number_threshold=50, points_per_page=20,
            slow_query_seconds=0.0)  # trace-all mode
        db = tmp_path / "db"
        t = np.arange(100, dtype=np.int64)
        with Session(db, config) as session:
            session.create_series("s")
            session.insert_batch("s", t, t.astype(float))
            session.execute("SELECT M4(s) FROM s GROUP BY SPANS(4)")
            assert len(session.slow_queries()) == 1
            entry = session.slow_queries()[0]
            assert entry["statement"] \
                == "SELECT M4(s) FROM s GROUP BY SPANS(4)"
            assert entry["kind"] == "m4"
        with Session(db, config) as session:
            statements = [e["statement"] for e in session.slow_queries()]
            assert "SELECT M4(s) FROM s GROUP BY SPANS(4)" in statements
            snapshot = session.stats_snapshot()
            assert snapshot["slow_queries"]


class TestStatsCli:
    def test_text_report_after_load_and_query(self, store, capsys):
        assert main(["query", "--db", str(store),
                     "SELECT M4(s) FROM root.k GROUP BY SPANS(4)"]) == 0
        capsys.readouterr()
        assert main(["stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "engine_points_written_total" in out
        assert "query_total" in out
        assert "histograms (seconds):" in out
        assert "p50=" in out and "p99=" in out
        assert "io counters (engine lifetime):" in out

    def test_prometheus_output_is_valid_exposition_text(
            self, store, capsys):
        assert main(["stats", str(store), "--format", "prometheus"]) == 0
        families = parse_exposition(capsys.readouterr().out)
        counter = families["engine_points_written_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][0][2] == 3000.0
        assert families["repro_span_seconds"]["type"] == "histogram"

    def test_json_output_parses(self, store, capsys):
        assert main(["stats", str(store), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["metrics"]["counters"][
            "engine_points_written_total"]["value"] == 3000
        assert "iostats" in data

    def test_probe_runs_a_query(self, store, capsys):
        assert main(["stats", str(store), "--probe", "root.k"]) == 0
        out = capsys.readouterr().out
        # The probe charges read-path io counters in this very session.
        assert "metadata_reads" in out

    def test_probe_of_unknown_series_fails(self, store, capsys):
        assert main(["stats", str(store), "--probe", "nothing"]) == 1
        assert "nothing" in capsys.readouterr().err


class TestExplainCli:
    def test_explain_prints_span_tree_and_trace(self, store, capsys):
        assert main(["query", "--db", str(store), "--explain",
                     "SELECT M4(s) FROM root.k GROUP BY SPANS(4)"]) == 0
        out = capsys.readouterr().out
        assert "FirstTime" in out            # the result table came first
        assert "span tree:" in out
        assert "operator.m4lsm" in out
        assert "read.metadata" in out
        assert "M4-LSM trace" in out         # the per-span solver EXPLAIN
        assert "metadata-only spans" in out

    def test_explain_udf_prints_span_tree_only(self, store, capsys):
        assert main(["query", "--db", str(store), "--explain",
                     "SELECT M4(s) FROM root.k GROUP BY SPANS(4) "
                     "USING M4UDF"]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "operator.m4udf" in out
        assert "M4-LSM trace" not in out
