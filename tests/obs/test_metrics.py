"""Tests for the metric primitives and the registry."""

import pytest

from repro.obs import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry, NULL_REGISTRY)
from repro.obs.metrics import render_key


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0,
                                           "p99": 0.0, "max": 0.0}

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_observe_tracks_count_sum_max(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(13.0)
        assert histogram.max == 8.0
        # One observation per bucket, one in overflow.
        assert histogram.counts == [1, 1, 1, 1]

    def test_quantiles_are_ordered_and_bounded(self):
        histogram = Histogram()
        for i in range(100):
            histogram.observe(0.001 * (i + 1))
        quantiles = histogram.percentiles()
        assert 0.0 < quantiles["p50"] <= quantiles["p95"]
        assert quantiles["p95"] <= quantiles["p99"] <= quantiles["max"]
        assert quantiles["max"] == pytest.approx(0.1)

    def test_overflow_bucket_reports_exact_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(123.456)
        assert histogram.quantile(0.5) == 123.456
        assert histogram.quantile(1.0) == 123.456

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_merge_state_accumulates(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a.merge_state(b.counts, b.count, b.sum, b.max)
        assert a.count == 3
        assert a.sum == pytest.approx(12.0)
        assert a.max == 10.0
        assert a.counts == [1, 1, 1]

    def test_merge_state_rejects_layout_mismatch(self):
        a = Histogram(buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge_state([1, 2], 3, 1.0, 1.0)


class TestRenderKey:
    def test_plain_name(self):
        assert render_key("writes_total", {}) == "writes_total"

    def test_labels_sorted(self):
        key = render_key("query_seconds", {"kind": "m4", "b": "2"})
        assert key == 'query_seconds{b="2",kind="m4"}'


class TestMetricsRegistry:
    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("writes_total", series="s").inc(3)
        assert registry.counter("writes_total", series="s").value == 3
        # Different labels get an independent counter.
        assert registry.counter("writes_total", series="t").value == 0

    def test_histogram_custom_buckets_on_first_use(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        assert histogram.buckets == (1.0, 2.0)
        assert registry.histogram("h") is histogram

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.buckets == tuple(DEFAULT_LATENCY_BUCKETS)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("events_total", kind="flush").inc(2)
        registry.gauge("series").set(7)
        registry.histogram("latency").observe(0.01)
        snapshot = registry.snapshot()
        counter = snapshot["counters"]['events_total{kind="flush"}']
        assert counter == {"name": "events_total",
                           "labels": {"kind": "flush"}, "value": 2}
        assert snapshot["gauges"]["series"]["value"] == 7
        histogram = snapshot["histograms"]["latency"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.01)
        assert set(histogram["quantiles"]) == {"p50", "p95", "p99", "max"}
        assert len(histogram["counts"]) == len(histogram["buckets"]) + 1

    def test_load_accumulates_counters_and_histograms(self):
        first = MetricsRegistry()
        first.counter("events_total").inc(5)
        first.gauge("series").set(3)
        first.histogram("latency").observe(0.5)
        second = MetricsRegistry()
        second.counter("events_total").inc(1)
        second.histogram("latency").observe(1.5)
        second.load(first.snapshot())
        assert second.counter("events_total").value == 6
        assert second.gauge("series").value == 3
        histogram = second.histogram("latency")
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(2.0)

    def test_load_skips_malformed_entries(self):
        registry = MetricsRegistry()
        registry.load({"counters": {"bad": {"nope": 1},
                                    "ok": {"name": "c", "value": 2}},
                       "gauges": {"bad": 5},
                       "histograms": {"bad": {"name": "h"}}})
        assert registry.counter("c").value == 2
        assert registry.snapshot()["histograms"] == {}

    def test_load_ignores_non_dict(self):
        registry = MetricsRegistry()
        registry.load(None)
        registry.load("garbage")
        assert registry.snapshot()["counters"] == {}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.counter("c").value == 0
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["c"]

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
        # load() on a disabled registry is also a no-op.
        registry.load({"counters": {"c": {"name": "c", "value": 1}}})
        assert registry.snapshot()["counters"] == {}

    def test_null_registry_shared_instrument(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(10)
        assert counter.value == 0
        assert NULL_REGISTRY.histogram("h").percentiles()["max"] == 0.0
