"""Tests for the hierarchical span tracer."""

from repro.obs import MetricsRegistry, NULL_TRACER, Tracer, tracer_of
from repro.storage.iostats import IoStats


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child.a") as a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert a.children[0].name == "grandchild"
        assert a.parent is root
        assert [s.name for s in root.walk()] == [
            "root", "child.a", "grandchild", "child.b"]

    def test_last_root_is_the_completed_root(self):
        tracer = Tracer()
        assert tracer.last_root is None
        with tracer.span("first"):
            assert tracer.last_root is None  # not finished yet
        with tracer.span("second"):
            pass
        assert tracer.last_root.name == "second"

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_find_and_find_all(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("load"):
                pass
            with tracer.span("load"):
                pass
        assert root.find("load") is root.children[0]
        assert len(root.find_all("load")) == 2
        assert root.find("missing") is None

    def test_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("op", series="s", points=10) as span:
            pass
        assert span.duration > 0.0
        assert span.attrs == {"series": "s", "points": 10}


class TestCounterDeltas:
    def test_span_captures_nonzero_deltas_only(self):
        stats = IoStats()
        tracer = Tracer(stats=stats)
        with tracer.span("read") as span:
            stats.chunk_loads += 3
            stats.pages_decoded += 7
        assert span.counters == {"chunk_loads": 3, "pages_decoded": 7}

    def test_nested_spans_get_their_own_window(self):
        stats = IoStats()
        tracer = Tracer(stats=stats)
        with tracer.span("outer") as outer:
            stats.metadata_reads += 1
            with tracer.span("inner") as inner:
                stats.chunk_loads += 2
        # Inner sees only its own window; outer sees the whole query.
        assert inner.counters == {"chunk_loads": 2}
        assert outer.counters == {"metadata_reads": 1, "chunk_loads": 2}

    def test_no_stats_means_no_counters(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            pass
        assert span.counters == {}


class TestRenderAndDump:
    def test_render_shows_names_attrs_counters(self):
        stats = IoStats()
        tracer = Tracer(stats=stats)
        with tracer.span("query", series="s"):
            with tracer.span("read"):
                stats.bytes_read += 99
        text = tracer.last_root.render()
        assert "query" in text and "series=s" in text
        assert "read" in text and "[bytes_read=99]" in text
        assert "ms" in text
        # The child line is indented under the root line.
        lines = text.splitlines()
        assert lines[1].startswith("  read")

    def test_to_dict_is_recursive(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        dump = tracer.last_root.to_dict()
        assert dump["name"] == "a"
        assert dump["attrs"] == {"k": "v"}
        assert dump["children"][0]["name"] == "b"
        assert dump["seconds"] > 0.0


class TestRegistryIntegration:
    def test_span_duration_lands_in_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("flush"):
            pass
        with tracer.span("flush"):
            pass
        histogram = registry.histogram("repro_span_seconds", span="flush")
        assert histogram.count == 2
        assert histogram.sum > 0.0


class TestDisabledTracer:
    def test_disabled_tracer_hands_out_noop_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", series="s") as span:
            span.attrs["extra"] = 1  # annotation is silently discarded
        assert tracer.last_root is None
        assert span.render() == ""
        assert span.to_dict() == {}
        assert span.find("anything") is None
        assert list(span.walk()) == []

    def test_null_tracer_is_disabled(self):
        with NULL_TRACER.span("x") as span:
            pass
        assert span.duration == 0.0
        assert NULL_TRACER.last_root is None


class TestTracerOf:
    def test_engine_with_tracer(self):
        class Engine:
            tracer = Tracer()
        engine = Engine()
        assert tracer_of(engine) is Engine.tracer

    def test_stand_in_without_tracer(self):
        class Bare:
            pass
        tracer = tracer_of(Bare())
        with tracer.span("op"):
            pass
        assert tracer.last_root is None  # no-op fallback


class TestRequestTracing:
    """The cross-thread request-tracing primitives added for /trace."""

    def test_root_span_is_detailed_and_detail_inherits(self):
        tracer = Tracer()
        root = tracer.root_span("request", endpoint="query")
        with root:
            with tracer.span("child") as child:
                assert child.detailed is True
        assert root.detailed is True
        with tracer.span("plain") as plain:
            pass
        assert plain.detailed is False

    def test_activate_reroots_another_thread(self):
        import threading

        tracer = Tracer()
        from repro.obs import activate

        root = tracer.root_span("request")

        def worker():
            with activate(root):
                with tracer.span("worker.op"):
                    pass

        with root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(5)
        names = [s.name for s in root.walk()]
        assert "worker.op" in names
        worker_span = root.find("worker.op")
        assert worker_span.parent is root
        assert worker_span.thread != root.thread

    def test_activate_restores_previous_current(self):
        from repro.obs import activate, current_span

        tracer = Tracer()
        with tracer.span("outer") as outer:
            other = tracer.root_span("request")
            with activate(other):
                assert current_span() is other
            assert current_span() is outer

    def test_timed_span_attaches_a_premeasured_interval(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            span = tracer.timed_span("queue.wait", 10.0, 10.25,
                                     endpoint="query")
        assert span.parent is root
        assert root.children == [span]
        assert span.duration == 0.25
        assert span.attrs == {"endpoint": "query"}

    def test_ambient_span_only_fires_in_detailed_trees(self):
        from repro.obs import ambient_span

        tracer = Tracer()
        with tracer.span("plain") as plain:
            with ambient_span("item", index=0):
                pass
        assert plain.children == []  # not a detailed tree
        root = tracer.root_span("request")
        with root:
            with ambient_span("item", index=0):
                pass
        assert [c.name for c in root.children] == ["item"]

    def test_attach_timed_needs_an_active_span(self):
        from repro.obs import attach_timed

        tracer = Tracer()
        assert attach_timed("lock.wait", 0.0, 1.0) is None  # no trace
        with tracer.span("root") as root:
            span = attach_timed("lock.wait", 0.0, 0.5, side="read")
        assert span is not None and span.parent is root

    def test_disabled_tracer_noops_everywhere(self):
        from repro.obs import activate, ambient_span, attach_timed

        tracer = Tracer(enabled=False)
        root = tracer.root_span("request")
        with root:
            with activate(root):
                assert attach_timed("lock.wait", 0.0, 1.0) is None
                with ambient_span("item") as item:
                    item.attrs["k"] = "v"  # discarded, not an error
        assert root.to_dict() == {}

    def test_timed_span_lands_in_duration_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("root"):
            tracer.timed_span("queue.wait", 5.0, 5.5)
        snapshot = registry.snapshot()["histograms"]
        entry = snapshot['repro_span_seconds{span="queue.wait"}']
        assert entry["count"] == 1
