"""Tests for the rolling slow-query log."""

import pytest

from repro.obs import SlowQueryLog


class TestThreshold:
    def test_fast_queries_are_not_recorded(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.record("SELECT fast", 0.5) is None
        assert len(log) == 0

    def test_slow_queries_are_recorded_with_info(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        entry = log.record("SELECT slow", 2.5, kind="m4", series="s")
        assert entry["statement"] == "SELECT slow"
        assert entry["seconds"] == 2.5
        assert entry["kind"] == "m4" and entry["series"] == "s"
        assert entry["unix_time"] > 0
        assert len(log) == 1

    def test_exactly_at_threshold_is_recorded(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.record("SELECT edge", 1.0) is not None

    def test_non_positive_threshold_keeps_everything(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        assert log.record("SELECT anything", 0.000001) is not None
        assert len(log) == 1


class TestRing:
    def test_capacity_evicts_oldest(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for i in range(5):
            log.record("q%d" % i, 0.1)
        statements = [e["statement"] for e in log.entries()]
        assert statements == ["q2", "q3", "q4"]
        assert log.capacity == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_entries_are_copies(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record("q", 0.1)
        log.entries()[0]["statement"] = "mutated"
        assert log.entries()[0]["statement"] == "q"

    def test_load_and_clear(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        log.load([{"statement": "old", "seconds": 9.0},
                  "not-a-dict",
                  {"statement": "older", "seconds": 8.0}])
        assert [e["statement"] for e in log.entries()] == ["old", "older"]
        log.clear()
        assert len(log) == 0

    def test_load_none_is_noop(self):
        log = SlowQueryLog()
        log.load(None)
        assert len(log) == 0
