"""Tests for the sampling wall-clock profiler.

The profiler's contract is behavioural, not statistical: off means no
thread exists, start/stop is idempotent and restart-safe, and the
collapsed output is flamegraph.pl grammar (``frame;frame;frame count``)
rooted at the thread name.  A deliberately busy worker thread gives the
sampler something deterministic to catch.
"""

import threading
import time

import pytest

from repro.obs import SamplingProfiler


def _busy_for(stop):
    """A worker with a recognisable frame to sample."""
    while not stop.is_set():
        sum(range(200))


class TestLifecycle:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
        profiler = SamplingProfiler()
        with pytest.raises(ValueError):
            profiler.start(interval=-1)
        assert not profiler.running

    def test_off_means_no_thread(self):
        before = threading.active_count()
        profiler = SamplingProfiler(interval=0.001)
        assert threading.active_count() == before
        assert profiler.running is False
        assert profiler.stats()["samples"] == 0
        assert profiler.collapsed() == ""

    def test_start_is_idempotent_and_stop_returns_text(self):
        profiler = SamplingProfiler(interval=0.001)
        assert profiler.start() is True
        try:
            assert profiler.start() is False  # already running
            assert profiler.running is True
            time.sleep(0.05)
        finally:
            collapsed = profiler.stop()
        assert profiler.running is False
        assert isinstance(collapsed, str)
        assert profiler.stop() == collapsed  # stop when idle is a no-op

    def test_restart_resets_counters(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        time.sleep(0.03)
        profiler.stop()
        assert profiler.stats()["samples"] > 0
        profiler.start(interval=0.002)
        profiler.stop()
        stats = profiler.stats()
        assert stats["interval_seconds"] == pytest.approx(0.002)
        assert stats["distinct_stacks"] == len(
            [line for line in profiler.collapsed().splitlines() if line])


class TestSampling:
    def test_catches_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_for, args=(stop,),
                                  name="busy-bee", daemon=True)
        worker.start()
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        try:
            time.sleep(0.1)
        finally:
            collapsed = profiler.stop()
            stop.set()
            worker.join()
        assert profiler.stats()["samples"] > 5
        # the worker shows up, rooted at its thread name, with the
        # busy function somewhere in the stack
        busy_lines = [line for line in collapsed.splitlines()
                      if line.startswith("busy-bee;")]
        assert busy_lines, collapsed
        assert any("_busy_for" in line for line in busy_lines)

    def test_collapsed_grammar(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_for, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        try:
            time.sleep(0.05)
        finally:
            collapsed = profiler.stop()
            stop.set()
            worker.join()
        lines = collapsed.splitlines()
        assert lines
        for line in lines:
            # frame;frame;...;frame <count> — frame text may itself
            # contain spaces (e.g. "<frozen importlib._bootstrap>")
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit(), line
            assert all(frame for frame in stack.split(";")), line
        # heaviest stack first
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_sampler_does_not_sample_itself(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        time.sleep(0.05)
        collapsed = profiler.stop()
        assert "repro-profiler" not in collapsed
