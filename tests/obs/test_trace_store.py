"""Tests for traceparent propagation, trace retention, and export.

The traceparent parser is strict where the W3C spec is strict (field
widths, all-zero ids, version ``ff``) and tolerant where it is tolerant
(unknown future versions, extra fields).  The store's keep policy and
eviction are the contract ``GET /trace`` relies on, and the Chrome
export is validated structurally — the same checks the CI trace smoke
runs against a live server.
"""

import pytest

from repro.obs import (
    Tracer,
    TraceStore,
    make_traceparent,
    parse_traceparent,
    to_chrome_trace,
)


def _root(tracer=None, seconds=0.001):
    """A completed root span with a deterministic duration."""
    tracer = tracer if tracer is not None else Tracer()
    root = tracer.root_span("request", endpoint="query")
    with root:
        pass
    root.started = 100.0
    root.ended = 100.0 + seconds
    return root


class TestTraceparent:
    def test_roundtrip(self):
        header = make_traceparent(sampled=True)
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.sampled is True
        assert len(ctx.trace_id) == 32
        assert len(ctx.parent_span_id) == 16
        assert header.startswith("00-%s-%s-01"
                                 % (ctx.trace_id, ctx.parent_span_id))

    def test_unsampled_flag(self):
        ctx = parse_traceparent(make_traceparent(sampled=False))
        assert ctx.sampled is False

    def test_explicit_ids_and_case_folding(self):
        ctx = parse_traceparent("00-" + "AB" * 16 + "-" + "CD" * 8 + "-01")
        assert ctx.trace_id == "ab" * 16
        assert ctx.parent_span_id == "cd" * 8

    def test_future_version_accepted(self):
        ctx = parse_traceparent(
            "cc-" + "1" * 32 + "-" + "2" * 16 + "-00-extrafield")
        assert ctx is not None and ctx.sampled is False

    @pytest.mark.parametrize("header", [
        None,
        "",
        42,
        "not-a-traceparent",
        "00-" + "1" * 32 + "-" + "2" * 16,          # too few fields
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # forbidden version
        "0-" + "1" * 32 + "-" + "2" * 16 + "-01",   # short version
        "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        "00-" + "1" * 32 + "-" + "2" * 15 + "-01",  # short span id
        "00-" + "0" * 32 + "-" + "2" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "g" * 32 + "-" + "2" * 16 + "-01",  # non-hex
        "00-" + "1" * 32 + "-" + "2" * 16 + "-1",   # short flags
    ])
    def test_malformed_rejected(self, header):
        assert parse_traceparent(header) is None


class TestKeepPolicy:
    def test_sampled_always_kept(self):
        store = TraceStore(capacity=8, sample_every=0, slow_seconds=10.0)
        entry = store.record(_root(), "t1", "r1", "query", 200,
                             sampled=True)
        assert entry is not None and entry["sampled"] is True
        assert len(store) == 1

    def test_fast_unsampled_dropped(self):
        store = TraceStore(capacity=8, sample_every=0, slow_seconds=10.0)
        assert store.record(_root(), "t1", "r1", "query", 200) is None
        assert len(store) == 0
        assert store.stats() == {"seen": 1, "kept": 0, "retained": 0,
                                 "capacity": 8}

    def test_slow_always_kept(self):
        store = TraceStore(capacity=8, sample_every=0, slow_seconds=0.5)
        assert store.record(_root(seconds=0.6), "t1", "r1",
                            "query", 200) is not None

    def test_nonpositive_threshold_keeps_everything(self):
        store = TraceStore(capacity=8, sample_every=0, slow_seconds=0.0)
        assert store.record(_root(), "t1", "r1", "query", 200) is not None

    def test_one_in_n_sampling(self):
        store = TraceStore(capacity=64, sample_every=4, slow_seconds=10.0)
        kept = [store.record(_root(), "t%d" % i, "r%d" % i, "query", 200)
                for i in range(12)]
        # every 4th arrival survives: indices 3, 7, 11
        assert [i for i, e in enumerate(kept) if e is not None] == [3, 7, 11]
        assert store.stats()["seen"] == 12
        assert store.stats()["kept"] == 3

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
        with pytest.raises(ValueError):
            TraceStore(sample_every=-1)


class TestRingAndLookup:
    def _filled(self, n, capacity=4):
        store = TraceStore(capacity=capacity, sample_every=0,
                           slow_seconds=0.0)
        for i in range(n):
            store.record(_root(), "trace%d" % i, "req%d" % i,
                         "query", 200)
        return store

    def test_eviction_keeps_newest(self):
        store = self._filled(10, capacity=4)
        assert len(store) == 4
        ids = [e["request_id"] for e in store.entries()]
        assert ids == ["req9", "req8", "req7", "req6"]  # newest first
        assert store.get("req0") is None                # evicted
        stats = store.stats()
        assert stats["kept"] == 10 and stats["retained"] == 4

    def test_lookup_by_either_id(self):
        store = self._filled(3)
        assert store.get("req1")["trace_id"] == "trace1"
        assert store.get("trace2")["request_id"] == "req2"
        assert store.get("nope") is None

    def test_lookup_newest_wins(self):
        store = TraceStore(capacity=4, sample_every=0, slow_seconds=0.0)
        store.record(_root(), "shared", "req0", "query", 200)
        store.record(_root(), "shared", "req1", "render", 200)
        assert store.get("shared")["request_id"] == "req1"

    def test_clear(self):
        store = self._filled(3)
        store.clear()
        assert len(store) == 0 and store.entries() == []


class TestChromeExport:
    def _entry(self):
        return {
            "trace_id": "t" * 32, "request_id": "r000001",
            "endpoint": "query", "status": 200, "seconds": 0.003,
            "unix_time": 0.0, "sampled": True,
            "root": {
                "name": "request", "seconds": 0.003,
                "started": 10.0, "ended": 10.003, "thread": "http-1",
                "attrs": {"endpoint": "query"}, "counters": {},
                "children": [
                    {"name": "solve", "seconds": 0.002,
                     "started": 10.001, "ended": 10.003,
                     "thread": "worker-0", "attrs": {"w": 100},
                     "counters": {"points_decoded": 42}, "children": []},
                    {"name": "noop", "seconds": 0.0,
                     "started": None, "ended": None, "thread": None,
                     "attrs": {}, "counters": {}, "children": []},
                ],
            },
        }

    def test_structure(self):
        doc = to_chrome_trace(self._entry())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["request_id"] == "r000001"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        # the timestamp-less span is skipped, the other two exported
        assert [e["name"] for e in complete] == ["request", "solve"]
        assert len(meta) == 2  # one thread_name per distinct thread

    def test_timestamps_relative_microseconds(self):
        doc = to_chrome_trace(self._entry())
        request, solve = [e for e in doc["traceEvents"]
                          if e["ph"] == "X"]
        assert request["ts"] == pytest.approx(0.0)
        assert request["dur"] == pytest.approx(3000.0)
        assert solve["ts"] == pytest.approx(1000.0)
        assert solve["dur"] == pytest.approx(2000.0)

    def test_threads_and_counters(self):
        doc = to_chrome_trace(self._entry())
        request, solve = [e for e in doc["traceEvents"]
                          if e["ph"] == "X"]
        assert request["tid"] != solve["tid"]
        assert solve["args"]["w"] == 100
        assert solve["args"]["io.points_decoded"] == 42
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"http-1", "worker-0"}

    def test_live_span_tree_exports(self):
        """End-to-end: a real recorded span tree produces valid events."""
        tracer = Tracer()
        store = TraceStore(capacity=4, sample_every=0, slow_seconds=0.0)
        root = tracer.root_span("request", endpoint="query")
        with root:
            with tracer.span("solve", w=10):
                pass
        entry = store.record(root, "a" * 32, "r1", "query", 200,
                             sampled=True)
        doc = to_chrome_trace(entry)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["request", "solve"]
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
