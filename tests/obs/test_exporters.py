"""Tests for the JSON / Prometheus / terminal exporters.

``parse_exposition`` is a miniature parser for the Prometheus text
exposition format (0.0.4): it validates comment lines, metric/label
syntax and sample values, and returns the parsed families.  The
integration tests reuse it against real ``repro stats`` output, which is
how the "exporter output parses as valid exposition text" acceptance
criterion is asserted.
"""

import json
import re

import pytest

from repro.obs import MetricsRegistry, render_text, to_json, to_prometheus

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def parse_exposition(text):
    """Parse Prometheus text format; raises AssertionError when invalid.

    Returns ``{family: {"type": kind, "samples": [(name, labels, value)]}}``
    where ``family`` strips histogram ``_bucket``/``_sum``/``_count``
    suffixes back to the declared family name.
    """
    families = {}
    declared = {}
    for line in text.splitlines():
        assert line == line.rstrip(), "trailing whitespace: %r" % line
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert len(parts) >= 3, "malformed comment: %r" % line
            assert parts[1] in ("HELP", "TYPE"), line
            assert _METRIC_RE.match(parts[2]), line
            if parts[1] == "TYPE":
                kind = parts[3]
                assert kind in ("counter", "gauge", "histogram",
                                "summary", "untyped"), line
                declared[parts[2]] = kind
                families[parts[2]] = {"type": kind, "samples": []}
            continue
        match = _SAMPLE_RE.match(line)
        assert match, "malformed sample line: %r" % line
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            for pair in re.split(r",(?=[a-zA-Z_])",
                                 match.group("labels")):
                assert _LABEL_RE.match(pair), \
                    "malformed label pair %r in %r" % (pair, line)
                key, value = pair.split("=", 1)
                labels[key] = value[1:-1]
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                family = base
        assert family in declared, \
            "sample %r precedes its TYPE declaration" % line
        if declared[family] != "histogram":
            assert name == family, \
                "suffixed sample %r for non-histogram family" % line
        families[family]["samples"].append((name, labels, value))
    # Histogram invariants per label set: buckets cumulative, +Inf
    # equals _count.
    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        last = {}
        inf_value = {}
        count_value = {}
        for name, labels, value in data["samples"]:
            series = tuple(sorted((k, v) for k, v in labels.items()
                                  if k != "le"))
            if name == family + "_bucket":
                assert value >= last.get(series, -1.0), \
                    "non-cumulative bucket in %s%r" % (family, series)
                last[series] = value
                if labels.get("le") == "+Inf":
                    inf_value[series] = value
            elif name == family + "_count":
                count_value[series] = value
        assert inf_value, "%s has no +Inf bucket" % family
        for series, value in inf_value.items():
            assert value == count_value.get(series), \
                "%s%r: +Inf bucket %s != count %s" \
                % (family, series, value, count_value.get(series))
    return families


@pytest.fixture
def populated_registry():
    registry = MetricsRegistry()
    registry.counter("engine_points_written_total").inc(500)
    registry.counter("query_total", kind="m4", operator="m4lsm").inc(3)
    registry.gauge("engine_series").set(2)
    histogram = registry.histogram("query_seconds", kind="m4")
    for value in (0.001, 0.004, 0.02, 1.2):
        histogram.observe(value)
    return registry


class TestToJson:
    def test_round_trips_through_json(self, populated_registry):
        text = to_json(populated_registry.snapshot())
        data = json.loads(text)
        assert data["counters"]["engine_points_written_total"]["value"] \
            == 500
        assert 'query_seconds{kind="m4"}' in data["histograms"]

    def test_sorted_and_indented(self, populated_registry):
        text = to_json(populated_registry.snapshot())
        assert text.index('"counters"') < text.index('"gauges"')


class TestToPrometheus:
    def test_output_parses_as_valid_exposition_text(
            self, populated_registry):
        families = parse_exposition(
            to_prometheus(populated_registry.snapshot()))
        assert families["engine_points_written_total"]["type"] == "counter"
        assert families["engine_series"]["type"] == "gauge"
        assert families["query_seconds"]["type"] == "histogram"

    def test_counter_value_and_labels(self, populated_registry):
        families = parse_exposition(
            to_prometheus(populated_registry.snapshot()))
        ((name, labels, value),) = families["query_total"]["samples"]
        assert labels == {"kind": "m4", "operator": "m4lsm"}
        assert value == 3.0

    def test_histogram_count_and_sum(self, populated_registry):
        families = parse_exposition(
            to_prometheus(populated_registry.snapshot()))
        samples = {name: value for name, labels, value
                   in families["query_seconds"]["samples"]
                   if not name.endswith("_bucket")}
        assert samples["query_seconds_count"] == 4.0
        assert samples["query_seconds_sum"] == pytest.approx(1.225)

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        families = parse_exposition(to_prometheus(registry.snapshot()))
        ((_, labels, _),) = families["c"]["samples"]
        assert labels == {"path": 'a\\"b\\\\c'}

    def test_invalid_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("bad-name.total").inc(1)
        families = parse_exposition(to_prometheus(registry.snapshot()))
        assert "bad_name_total" in families

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""

    def test_newline_in_label_value_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", stmt="SELECT 1\nFROM x").inc()
        text = to_prometheus(registry.snapshot())
        # a literal newline inside a label would split the sample line
        # and break every scraper; it must arrive as backslash-n
        assert '\\n' in text
        families = parse_exposition(text)
        ((_, labels, _),) = families["c"]["samples"]
        assert labels == {"stmt": "SELECT 1\\nFROM x"}

    def test_empty_histogram_exports_zero_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lock_wait_seconds", series="s1", side="read")
        families = parse_exposition(to_prometheus(registry.snapshot()))
        samples = families["lock_wait_seconds"]["samples"]
        buckets = [(labels, value) for name, labels, value in samples
                   if name.endswith("_bucket")]
        assert buckets and all(value == 0.0 for _, value in buckets)
        scalars = {name: value for name, labels, value in samples
                   if not name.endswith("_bucket")}
        assert scalars["lock_wait_seconds_sum"] == 0.0
        assert scalars["lock_wait_seconds_count"] == 0.0

    def test_nan_and_inf_gauges_stay_scrapable(self):
        registry = MetricsRegistry()
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_inf").set(float("inf"))
        registry.gauge("g_ninf").set(float("-inf"))
        text = to_prometheus(registry.snapshot())
        assert "nan" not in text.lower().replace("g_nan", "")
        families = parse_exposition(text)
        assert families["g_nan"]["samples"][0][2] == 0.0
        assert families["g_inf"]["samples"][0][2] == float("inf")
        assert families["g_ninf"]["samples"][0][2] == float("-inf")


class TestRenderText:
    def test_sections_present(self, populated_registry):
        text = render_text({"metrics": populated_registry.snapshot(),
                            "iostats": {"chunk_loads": 9},
                            "slow_queries": [{"statement": "SELECT slow",
                                              "seconds": 2.5}]})
        assert "counters:" in text
        assert "engine_points_written_total" in text
        assert "p50=" in text and "p99=" in text
        assert "chunk_loads" in text
        assert "SELECT slow" in text

    def test_accepts_bare_metrics_snapshot(self, populated_registry):
        text = render_text(populated_registry.snapshot())
        assert "engine_series" in text

    def test_empty_snapshot(self):
        assert render_text(MetricsRegistry().snapshot()) \
            == "(no metrics recorded)"
