"""Degraded reads: damaged chunks are quarantined and skipped, queries
answer from the surviving data with the skipped ranges reported, and
strict mode still fails loudly."""

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator
from repro.core.result import merge_time_ranges
from repro.core.spans import all_span_bounds
from repro.errors import CorruptFileError
from repro.storage import StorageConfig, StorageEngine

# W is chosen so span boundaries split the 100-point chunks: the M4-LSM
# solver must then read chunk data (the metadata-only fused fast path
# cannot answer), which is what trips the checksum on the damaged chunk.
W = 13
N = 1000


def build_store(db):
    config = StorageConfig(avg_series_point_number_threshold=100,
                           points_per_page=50)
    engine = StorageEngine(db, config)
    engine.create_series("s")
    t = np.arange(N, dtype=np.int64)
    engine.write_batch("s", t, np.sin(t / 7.0) * 5)
    engine.flush_all()
    return engine, config


def corrupt_chunk(meta):
    """Flip one byte inside the chunk's first page payload on disk."""
    with open(meta.file_path, "r+b") as f:
        f.seek(meta.data_offset + 3)
        byte = f.read(1)
        f.seek(meta.data_offset + 3)
        f.write(bytes([byte[0] ^ 0x40]))


@pytest.fixture
def damaged(tmp_path):
    """A reopened store with one chunk's page payload corrupted, plus
    the healthy query results taken before the damage."""
    db = tmp_path / "db"
    engine, config = build_store(db)
    healthy = M4UDFOperator(engine).query("s", 0, N, W)
    victim = engine.chunks_for("s")[3]
    engine.close()
    corrupt_chunk(victim)
    engine = StorageEngine(db, config)
    yield engine, victim, healthy
    engine.close()


class TestRangeMerging:
    def test_clip_sort_merge(self):
        assert merge_time_ranges([(50, 80), (10, 30), (25, 40)],
                                 0, 60) == ((10, 40), (50, 60))

    def test_adjacent_ranges_fuse(self):
        assert merge_time_ranges([(0, 10), (10, 20)]) == ((0, 20),)

    def test_empty_after_clip(self):
        assert merge_time_ranges([(0, 10)], 20, 30) == ()


class TestM4UDFDegraded:
    def test_skips_damaged_chunk(self, damaged):
        engine, victim, healthy = damaged
        result = M4UDFOperator(engine).query("s", 0, N, W)
        assert result.degraded
        assert result.skipped == ((victim.start_time,
                                   victim.end_time + 1),)
        assert engine.quarantine.contains(victim.file_path,
                                          victim.data_offset)
        # Spans untouched by the damaged range match the healthy answer.
        bounds = all_span_bounds(0, N, W)
        untouched = 0
        for i in range(W):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi <= victim.start_time or lo > victim.end_time:
                assert result.spans[i] == healthy.spans[i]
                untouched += 1
        assert untouched > 0

    def test_second_query_prefilters_quarantined(self, damaged):
        engine, _victim, _healthy = damaged
        first = M4UDFOperator(engine).query("s", 0, N, W)
        before = engine.stats.chunk_loads
        second = M4UDFOperator(engine).query("s", 0, N, W)
        assert second == first  # identical surviving spans
        assert second.skipped == first.skipped
        # The quarantined chunk was never even attempted the second time.
        assert engine.stats.chunk_loads < 2 * before

    def test_strict_raises(self, damaged):
        engine, _victim, _healthy = damaged
        with pytest.raises(CorruptFileError):
            M4UDFOperator(engine, degraded=False).query("s", 0, N, W)

    def test_config_can_disable_degradation(self, damaged):
        engine, _victim, _healthy = damaged
        engine.config.degraded_reads = False
        try:
            with pytest.raises(CorruptFileError):
                M4UDFOperator(engine).query("s", 0, N, W)
        finally:
            engine.config.degraded_reads = True


class TestM4LSMDegraded:
    def test_skips_damaged_chunk(self, damaged):
        engine, victim, _healthy = damaged
        result = M4LSMOperator(engine).query("s", 0, N, W)
        assert result.degraded
        assert result.skipped == ((victim.start_time,
                                   victim.end_time + 1),)
        assert engine.quarantine.contains(victim.file_path,
                                          victim.data_offset)

    def test_agrees_with_degraded_udf(self, damaged):
        engine, _victim, _healthy = damaged
        udf = M4UDFOperator(engine).query("s", 0, N, W)
        lsm = M4LSMOperator(engine).query("s", 0, N, W)
        assert udf.semantically_equal(lsm)
        assert udf.skipped == lsm.skipped

    def test_strict_raises(self, damaged):
        engine, _victim, _healthy = damaged
        with pytest.raises(CorruptFileError):
            M4LSMOperator(engine, degraded=False).query("s", 0, N, W)

    def test_counts_degraded_queries(self, damaged):
        engine, _victim, _healthy = damaged
        M4LSMOperator(engine).query("s", 0, N, W)
        counter = engine.metrics.counter("degraded_queries_total",
                                         operator="M4-LSM")
        assert counter.value >= 1


class TestQuarantinePersistence:
    def test_survives_reopen(self, damaged):
        engine, victim, _healthy = damaged
        M4UDFOperator(engine).query("s", 0, N, W)
        assert len(engine.quarantine) == 1
        db, config = engine._data_dir, engine.config
        engine.close()
        reopened = StorageEngine(db, config)
        try:
            assert len(reopened.quarantine) == 1
            assert reopened.quarantine.contains(victim.file_path,
                                                victim.data_offset)
            result = M4UDFOperator(reopened).query("s", 0, N, W)
            assert result.degraded
        finally:
            reopened.close()

    def test_clear_forgets(self, damaged):
        engine, _victim, _healthy = damaged
        M4UDFOperator(engine).query("s", 0, N, W)
        engine.quarantine.clear()
        assert len(engine.quarantine) == 0


class TestRenderDegraded:
    def test_fully_quarantined_series_renders_blank(self, tmp_path):
        from repro.server.service import render_chart
        engine, _config = build_store(tmp_path / "db")
        try:
            for meta in engine.chunks_for("s"):
                engine.quarantine.add_meta(meta, reason="test")
            matrix, result = render_chart(engine, "s", 20, 10)
            assert result.degraded
            assert not matrix.any()
        finally:
            engine.close()
