"""Unit tests for chunk/page statistics (the Definition 2.4 metadata)."""

import numpy as np
import pytest

from repro.core.series import Point
from repro.errors import StorageError
from repro.storage import Statistics


@pytest.fixture
def stats():
    t = np.array([10, 20, 30, 40], dtype=np.int64)
    v = np.array([5.0, -1.0, 7.0, 2.0])
    return Statistics.from_arrays(t, v)


class TestFromArrays:
    def test_four_representation_points(self, stats):
        assert stats.first == Point(10, 5.0)
        assert stats.last == Point(40, 2.0)
        assert stats.bottom == Point(20, -1.0)
        assert stats.top == Point(30, 7.0)
        assert stats.count == 4

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            Statistics.from_arrays(np.empty(0, dtype=np.int64),
                                   np.empty(0))

    def test_single_point(self):
        stats = Statistics.from_arrays([7], [3.5])
        assert stats.first == stats.last == stats.bottom == stats.top \
            == Point(7, 3.5)

    def test_tied_extremes_pick_earliest(self):
        stats = Statistics.from_arrays([1, 2, 3], [9.0, 9.0, 9.0])
        assert stats.top == Point(1, 9.0)
        assert stats.bottom == Point(1, 9.0)


class TestIntervalPredicates:
    def test_covers_time_is_interval_not_membership(self, stats):
        assert stats.covers_time(25)  # inside the interval, no point there
        assert stats.covers_time(10) and stats.covers_time(40)
        assert not stats.covers_time(9)
        assert not stats.covers_time(41)

    def test_overlaps_half_open(self, stats):
        assert stats.overlaps(40, 50)
        assert not stats.overlaps(41, 50)
        assert stats.overlaps(0, 11)
        assert not stats.overlaps(0, 10)

    def test_inside(self, stats):
        assert stats.inside(10, 41)
        assert not stats.inside(10, 40)  # end_time == t_end is excluded
        assert not stats.inside(11, 50)


class TestMerge:
    def test_merge_combines_extremes(self, stats):
        other = Statistics.from_arrays([50, 60], [100.0, -100.0])
        merged = stats.merge(other)
        assert merged.count == 6
        assert merged.first == Point(10, 5.0)
        assert merged.last == Point(60, -100.0)
        assert merged.top == Point(50, 100.0)
        assert merged.bottom == Point(60, -100.0)

    def test_merge_tie_breaks_on_time(self):
        a = Statistics.from_arrays([1], [5.0])
        b = Statistics.from_arrays([2], [5.0])
        assert a.merge(b).top == Point(1, 5.0)
        assert b.merge(a).top == Point(1, 5.0)

    def test_merge_order_independent(self, stats):
        other = Statistics.from_arrays([5, 45], [0.0, 3.0])
        assert stats.merge(other) == other.merge(stats)


class TestSerialization:
    def test_roundtrip(self, stats):
        data = stats.to_bytes()
        assert len(data) == Statistics.SERIALIZED_SIZE
        assert Statistics.from_bytes(data) == stats

    def test_roundtrip_with_offset(self, stats):
        data = b"junk" + stats.to_bytes()
        assert Statistics.from_bytes(data, offset=4) == stats

    def test_truncated_raises(self, stats):
        with pytest.raises(StorageError):
            Statistics.from_bytes(stats.to_bytes()[:-1])

    def test_special_floats_roundtrip(self):
        stats = Statistics.from_arrays([1, 2], [np.inf, -np.inf])
        out = Statistics.from_bytes(stats.to_bytes())
        assert out.top.v == np.inf and out.bottom.v == -np.inf
