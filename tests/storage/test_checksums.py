"""Checksums, torn-tail policy, v1 compatibility and TsFile salvage."""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import CorruptFileError
from repro.storage import StorageConfig, StorageEngine, write_chunk
from repro.storage import faultfs
from repro.storage.faultfs import FaultInjector, FaultRule
from repro.storage.tsfile import (
    MAGIC_V1 as TSFILE_MAGIC_V1,
    TsFileReader,
    TsFileWriter,
    _FOOTER_V1,
)
from repro.storage.wal import MAGIC_V1 as WAL_MAGIC_V1, WriteAheadLog


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    faultfs.uninstall()


def make_chunk(series_id=1, version=1, n=100, offset=0):
    config = StorageConfig(avg_series_point_number_threshold=10_000,
                           points_per_page=40)
    t = np.arange(n, dtype=np.int64) + offset
    v = (np.arange(n, dtype=np.float64) + offset) * 0.5
    block, meta = write_chunk(series_id, version, t, v, config)
    return block, meta, t, v


class TestWalChecksums:
    def test_torn_tail_truncated_and_prior_kept(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        wal = WriteAheadLog(path)
        wal.append(1, 10, 1.0)
        wal.append(1, 20, 2.0)
        wal.sync()
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear mid-record
        wal = WriteAheadLog(path)
        assert list(wal.replay()) == [(1, 10, 1.0)]
        # the torn bytes are gone: appending after repair stays valid
        wal.append(1, 30, 3.0)
        wal.sync()
        assert list(wal.replay()) == [(1, 10, 1.0), (1, 30, 3.0)]
        wal.close()

    def test_bitflip_in_record_raises(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        wal = WriteAheadLog(path)
        wal.append(1, 10, 1.0)
        wal.append(1, 20, 2.0)
        wal.sync()
        wal.close()
        data = bytearray(path.read_bytes())
        data[10] ^= 0x40  # first record's payload
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptFileError):
            list(WriteAheadLog(path).replay())

    def test_bad_crc_at_tail_is_loud_not_torn(self, tmp_path):
        # A FULL-SIZE final record with a bad CRC is corruption, not a
        # torn tail: dropping it could lose an acknowledged point.
        path = tmp_path / "wal-000001.log"
        wal = WriteAheadLog(path)
        wal.append(1, 10, 1.0)
        wal.sync()
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01  # flip inside the stored CRC itself
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptFileError):
            list(WriteAheadLog(path).replay())

    def test_v1_file_still_replays(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        record = struct.Struct("<Iqd")
        path.write_bytes(WAL_MAGIC_V1 + record.pack(1, 10, 1.0)
                         + record.pack(2, 20, 2.0))
        wal = WriteAheadLog(path)
        assert list(wal.replay()) == [(1, 10, 1.0), (2, 20, 2.0)]
        wal.close()

    def test_torn_header_reads_as_empty(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        path.write_bytes(b"WALv2")  # crash mid-header write
        wal = WriteAheadLog(path)
        assert list(wal.replay()) == []
        wal.close()
        assert path.read_bytes().startswith(b"WALv2\n")  # repaired

    def test_rotate_is_crash_atomic(self, tmp_path):
        path = tmp_path / "wal-000001.log"
        wal = WriteAheadLog(path)
        wal.append(1, 10, 1.0)
        wal.sync()
        # the replace step fails: the OLD complete log must survive
        faultfs.install(FaultInjector([
            FaultRule("replace", "eio", path_substr="wal-")]))
        with pytest.raises(OSError):
            wal.rotate()
        faultfs.uninstall()
        assert list(WriteAheadLog(path).replay()) == [(1, 10, 1.0)]


class TestTsFileChecksums:
    def test_page_bitflip_detected_with_chunk_attribution(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, _t, _v = make_chunk()
        with TsFileWriter(path) as writer:
            located = writer.append_chunk(block, meta)
        data = bytearray(path.read_bytes())
        data[located.data_offset + 5] ^= 0x10
        path.write_bytes(bytes(data))
        with TsFileReader(path) as reader:
            meta = reader.read_metadata()[0]
            with pytest.raises(CorruptFileError) as info:
                reader.read_chunk_arrays(meta)
        assert info.value.chunk == (str(path), located.data_offset)

    def test_every_page_byte_is_covered(self, tmp_path):
        # flip each byte of the first page's payload region in turn:
        # the CRC must catch every single one.
        path = tmp_path / "x.tsfile"
        block, meta, _t, _v = make_chunk(n=10)
        with TsFileWriter(path) as writer:
            located = writer.append_chunk(block, meta)
        pristine = path.read_bytes()
        page = located.pages[0]
        for rel in range(page.time_length + page.value_length):
            data = bytearray(pristine)
            data[located.data_offset + rel] ^= 0x01
            path.write_bytes(bytes(data))
            with TsFileReader(path) as reader:
                with pytest.raises(CorruptFileError):
                    reader.read_chunk_arrays(reader.read_metadata()[0])

    def test_metadata_section_bitflip_detected(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, _t, _v = make_chunk()
        with TsFileWriter(path) as writer:
            located = writer.append_chunk(block, meta)
        end_of_data = located.data_offset + located.data_length
        data = bytearray(path.read_bytes())
        data[end_of_data + 10] ^= 0x01  # inside the tail metadata blob
        path.write_bytes(bytes(data))
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()

    def test_verify_can_be_disabled(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, t, _v = make_chunk()
        with TsFileWriter(path) as writer:
            located = writer.append_chunk(block, meta)
        data = bytearray(path.read_bytes())
        data[located.data_offset + 5] ^= 0x10
        path.write_bytes(bytes(data))
        with TsFileReader(path, verify_checksums=False) as reader:
            meta = reader.read_metadata()[0]
            # may decode to wrong values or raise on undecodable bytes;
            # the point is the CRC gate is off.
            try:
                reader.read_chunk_arrays(meta)
            except CorruptFileError:
                pass

    def test_transient_eio_is_retried(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, t, v = make_chunk()
        with TsFileWriter(path) as writer:
            writer.append_chunk(block, meta)
        retries = []
        faultfs.install(FaultInjector([
            FaultRule("read", "eio", path_substr=".tsfile", times=2)]))
        with TsFileReader(path, on_retry=lambda a, e: retries.append(a),
                          retry_base_delay=0.001) as reader:
            out_t, out_v = reader.read_chunk_arrays(
                reader.read_metadata()[0])
        np.testing.assert_array_equal(out_t, t)
        np.testing.assert_array_equal(out_v, v)
        assert retries  # at least one retry actually happened


class TestSalvage:
    def write_unsealed(self, path, n_chunks=3):
        writer = TsFileWriter(path)
        located = []
        for i in range(n_chunks):
            block, meta, t, v = make_chunk(version=i + 1,
                                           offset=i * 1000)
            located.append((writer.append_chunk(block, meta), t, v))
        # no close(): simulate a process killed before sealing
        writer._file.flush()
        return located

    def test_unsealed_file_salvages_all_chunks(self, tmp_path):
        path = tmp_path / "x.tsfile"
        located = self.write_unsealed(path)
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()  # no footer
            salvaged = reader.salvage_metadata()
            assert [m.version for m in salvaged] == [1, 2, 3]
            for meta, (_located, t, v) in zip(salvaged, located):
                out_t, out_v = reader.read_chunk_arrays(meta)
                np.testing.assert_array_equal(out_t, t)
                np.testing.assert_array_equal(out_v, v)

    def test_torn_final_chunk_salvages_prefix(self, tmp_path):
        path = tmp_path / "x.tsfile"
        self.write_unsealed(path, n_chunks=3)
        data = path.read_bytes()
        path.write_bytes(data[:-50])  # tear into the last data block
        with TsFileReader(path) as reader:
            salvaged = reader.salvage_metadata()
        assert [m.version for m in salvaged] == [1, 2]

    def test_footer_bitflip_salvages_sealed_file(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, t, v = make_chunk()
        with TsFileWriter(path) as writer:
            writer.append_chunk(block, meta)
        data = bytearray(path.read_bytes())
        data[-12] ^= 0x01  # inside the footer
        path.write_bytes(bytes(data))
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()
            salvaged = reader.salvage_metadata()
            assert len(salvaged) == 1
            out_t, out_v = reader.read_chunk_arrays(salvaged[0])
        np.testing.assert_array_equal(out_t, t)
        np.testing.assert_array_equal(out_v, v)

    def test_midfile_damage_is_loud_not_torn(self, tmp_path):
        path = tmp_path / "x.tsfile"
        self.write_unsealed(path, n_chunks=3)
        data = bytearray(path.read_bytes())
        data[len(TSFILE_MAGIC_V1) + 1] ^= 0x01  # first inline header
        path.write_bytes(bytes(data))
        with TsFileReader(path) as reader:
            # valid chunks exist beyond the break: refusing beats
            # silently serving an empty file
            with pytest.raises(CorruptFileError):
                reader.salvage_metadata()


class TestV1TsFileCompat:
    def write_v1_file(self, path, chunks):
        """Hand-roll a seed-format file: no inline headers, no CRCs."""
        with open(path, "wb") as f:
            f.write(TSFILE_MAGIC_V1)
            offset = len(TSFILE_MAGIC_V1)
            located = []
            for block, meta in chunks:
                placed = meta.located(str(path), offset, len(block))
                f.write(block)
                offset += len(block)
                located.append(placed)
            blob = bytearray(struct.pack("<I", len(located)))
            for placed in located:
                blob += placed.to_bytes(format_version=1)
            f.write(blob)
            f.write(_FOOTER_V1.pack(offset, len(blob), TSFILE_MAGIC_V1))
        return located

    def test_v1_roundtrip(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, t, v = make_chunk()
        self.write_v1_file(path, [(block, meta)])
        with TsFileReader(path) as reader:
            assert reader.format_version == 1
            metadata = reader.read_metadata()
            assert len(metadata) == 1
            assert metadata[0].pages[0].time_crc == 0  # no checksum
            out_t, out_v = reader.read_chunk_arrays(metadata[0])
        np.testing.assert_array_equal(out_t, t)
        np.testing.assert_array_equal(out_v, v)

    def test_v1_engine_store_opens_in_v2_code(self, tmp_path):
        # Simulate a seed-format store: v1 tsfile + v1 catalog + v1 wal.
        import repro.storage.catalog as catalog_mod
        import repro.storage.wal as wal_mod
        db = tmp_path / "db"
        db.mkdir()
        block, meta, t, v = make_chunk(series_id=1, version=1)
        self.write_v1_file(db / "000001.tsfile", [(block, meta)])
        (db / "catalog.meta").write_bytes(
            catalog_mod.MAGIC_V1 + struct.pack("<IH", 1, 1) + b"a")
        (db / "deletes.mods").write_bytes(b"MODSv1\n\0")
        (db / "wal-000001.log").write_bytes(
            wal_mod.MAGIC_V1 + struct.Struct("<Iqd").pack(1, 5000, 9.0))
        engine = StorageEngine(db)
        try:
            assert engine.recovery_summary["chunks"] == 1
            assert engine.recovery_summary["wal_points"] == 1
            engine.flush_all()
            assert engine.total_points("a") == len(t) + 1
        finally:
            engine.close()


class TestCrcHelpers:
    def test_page_crcs_recorded_in_v2_metadata(self, tmp_path):
        path = tmp_path / "x.tsfile"
        block, meta, _t, _v = make_chunk()
        with TsFileWriter(path) as writer:
            writer.append_chunk(block, meta)
        with TsFileReader(path) as reader:
            pages = reader.read_metadata()[0].pages
        for page in pages:
            start = page.time_offset
            payload = block[start:start + page.time_length]
            assert zlib.crc32(payload) == page.time_crc
