"""Tests for IoStats arithmetic: diff, add, snapshot, reset.

The counters are the substrate-independent cost signal everything in
the repo reports (benchmarks, span traces, ``repro stats``), so the
arithmetic has to be exact and must pick up new fields automatically.
"""

import dataclasses

import numpy as np

from repro.storage.cache import ChunkCache
from repro.storage.iostats import IoStats

FIELDS = [f.name for f in dataclasses.fields(IoStats)]


class TestArithmetic:
    def test_diff_covers_every_field(self):
        stats = IoStats()
        snap = stats.snapshot()
        for i, name in enumerate(FIELDS):
            setattr(stats, name, getattr(stats, name) + i + 1)
        diff = stats.diff(snap)
        for i, name in enumerate(FIELDS):
            assert getattr(diff, name) == i + 1

    def test_diff_does_not_mutate_operands(self):
        stats = IoStats(chunk_loads=5)
        snap = IoStats(chunk_loads=2)
        stats.diff(snap)
        assert stats.chunk_loads == 5 and snap.chunk_loads == 2

    def test_add_covers_every_field(self):
        a = IoStats(**{name: 1 for name in FIELDS})
        b = IoStats(**{name: 2 for name in FIELDS})
        total = a + b
        assert all(getattr(total, name) == 3 for name in FIELDS)
        # Addition builds a fresh object.
        assert all(getattr(a, name) == 1 for name in FIELDS)

    def test_add_then_diff_round_trips(self):
        a = IoStats(pages_decoded=7, cache_hits=3)
        b = IoStats(pages_decoded=2, bytes_read=10)
        assert (a + b).diff(b).as_dict() == a.as_dict()

    def test_snapshot_is_independent_both_ways(self):
        stats = IoStats(metadata_reads=4)
        snap = stats.snapshot()
        stats.metadata_reads = 9
        snap.cache_misses = 5
        assert snap.metadata_reads == 4
        assert stats.cache_misses == 0

    def test_reset_zeroes_every_field(self):
        stats = IoStats(**{name: 7 for name in FIELDS})
        stats.reset()
        assert all(getattr(stats, name) == 0 for name in FIELDS)

    def test_as_dict_matches_fields(self):
        assert set(IoStats().as_dict()) == set(FIELDS)
        assert IoStats(cache_hits=2).as_dict()["cache_hits"] == 2


class TestCacheWiring:
    def test_chunk_cache_charges_hits_and_misses(self):
        stats = IoStats()
        cache = ChunkCache(capacity_points=100, stats=stats)
        assert cache.get("k") is None
        assert (stats.cache_misses, stats.cache_hits) == (1, 0)
        cache.put("k", np.arange(10))
        assert cache.get("k") is not None
        assert (stats.cache_misses, stats.cache_hits) == (1, 1)
        # The cache's internal counters mirror the shared IoStats.
        assert cache.misses == 1 and cache.hits == 1

    def test_cache_without_stats_still_counts_internally(self):
        cache = ChunkCache(capacity_points=100)
        cache.get("k")
        cache.put("k", np.arange(10))
        cache.get("k")
        assert cache.misses == 1 and cache.hits == 1
