"""fsck: offline checksum verification of a whole store, as a library
(:func:`fsck_store`) and through the ``repro fsck`` CLI exit codes."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import StorageError
from repro.storage import StorageConfig, StorageEngine, fsck_store


@pytest.fixture
def store(tmp_path):
    config = StorageConfig(avg_series_point_number_threshold=100,
                           points_per_page=50)
    db = tmp_path / "db"
    engine = StorageEngine(db, config)
    engine.create_series("s")
    t = np.arange(500, dtype=np.int64)
    engine.write_batch("s", t, np.cos(t / 9.0))
    engine.write("s", 10_000, 1.0)  # leaves a WAL record behind
    engine.delete("s", 3, 7)
    engine.flush_all()
    chunks = engine.chunks_for("s")
    engine.close()
    return db, chunks


def flip_byte(path, offset, mask=0x40):
    data = bytearray(path.read_bytes())
    data[offset] ^= mask
    path.write_bytes(bytes(data))


class TestFsckStore:
    def test_clean_store(self, store):
        db, chunks = store
        report = fsck_store(db)
        assert report.clean
        assert report.chunks_checked == len(chunks)
        assert report.files_checked > 3  # catalog, mods, wal, tsfile, obs
        assert "clean" in report.render()

    def test_damaged_page_is_an_error(self, store):
        db, chunks = store
        victim = chunks[0]
        flip_byte(db / victim.file_path.split("/")[-1],
                  victim.data_offset + 2)
        report = fsck_store(db)
        assert not report.clean
        assert report.chunks_damaged == 1
        [error] = [e for e in report.errors
                   if e.get("data_offset") == victim.data_offset]
        assert error["series_id"] == victim.series_id
        assert "DAMAGED" in report.render()

    def test_quarantine_records_damage(self, store):
        db, chunks = store
        victim = chunks[1]
        flip_byte(db / victim.file_path.split("/")[-1],
                  victim.data_offset + 2)
        report = fsck_store(db, quarantine=True)
        assert report.quarantined == 1
        assert (db / "quarantine.json").exists()
        # The quarantine now shields reads: reopening degrades cleanly.
        from repro.core import M4UDFOperator
        engine = StorageEngine(db)
        try:
            result = M4UDFOperator(engine).query("s", 0, 500, 5)
            assert result.degraded
        finally:
            engine.close()

    def test_torn_wal_is_a_warning(self, store):
        db, _chunks = store
        [wal] = list(db.glob("wal-*.log"))
        wal.write_bytes(wal.read_bytes()[:-3])
        report = fsck_store(db)
        assert report.clean  # tearing is recoverable
        assert any("torn" in w["issue"] for w in report.warnings)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            fsck_store(tmp_path / "nope")


class TestFsckCli:
    def test_clean_exit_zero(self, store, capsys):
        db, _chunks = store
        assert main(["fsck", "--db", str(db)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_damage_exit_nonzero(self, store, capsys):
        db, chunks = store
        flip_byte(db / chunks[0].file_path.split("/")[-1],
                  chunks[0].data_offset + 2)
        assert main(["fsck", "--db", str(db)]) == 1
        assert "[error]" in capsys.readouterr().out

    def test_json_report(self, store, capsys):
        db, _chunks = store
        assert main(["fsck", "--db", str(db), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["chunks_checked"] > 0

    def test_no_pages_skips_payload_checks(self, store, capsys):
        db, chunks = store
        flip_byte(db / chunks[0].file_path.split("/")[-1],
                  chunks[0].data_offset + 2)
        # Without page verification the payload flip goes unseen ...
        assert main(["fsck", "--db", str(db), "--no-pages"]) == 0
        # ... and with it, it does not.
        assert main(["fsck", "--db", str(db)]) == 1
        capsys.readouterr()

    def test_missing_store_is_reported(self, tmp_path, capsys):
        assert main(["fsck", "--db", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
