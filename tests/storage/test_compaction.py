"""Unit tests for compaction (implemented, but off by default per Table 4)."""

import numpy as np

from repro.storage import compact_all, compact_series, merge_arrays


def load_overlapping(engine):
    engine.create_series("s")
    engine.write_batch("s", np.arange(0, 100, 2, dtype=np.int64),
                       np.zeros(50))
    engine.flush("s")
    engine.write_batch("s", np.arange(1, 100, 2, dtype=np.int64),
                       np.ones(50))
    engine.delete("s", 90, 99)
    engine.flush_all()


class TestCompaction:
    def test_folds_overlap_and_deletes(self, engine):
        load_overlapping(engine)
        before = merge_arrays(
            [(*engine.data_reader().load_chunk(m), m.version)
             for m in engine.chunks_for("s")],
            engine.deletes_for("s"))
        survivors = compact_series(engine, "s")
        assert survivors == 90  # 100 points minus the 10 in [90, 99]
        assert len(engine.deletes_for("s")) == 0
        chunks = engine.chunks_for("s")
        for earlier, later in zip(chunks, chunks[1:]):
            assert earlier.end_time < later.start_time
        after = merge_arrays(
            [(*engine.data_reader().load_chunk(m), m.version)
             for m in chunks])
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])

    def test_queries_unchanged_by_compaction(self, engine):
        from repro.core import M4UDFOperator, M4LSMOperator
        load_overlapping(engine)
        udf = M4UDFOperator(engine)
        before = udf.query("s", 0, 100, 7)
        compact_series(engine, "s")
        after_udf = M4UDFOperator(engine).query("s", 0, 100, 7)
        after_lsm = M4LSMOperator(engine).query("s", 0, 100, 7)
        assert before.semantically_equal(after_udf)
        assert before.semantically_equal(after_lsm)

    def test_compact_empty_series(self, engine):
        engine.create_series("empty")
        assert compact_series(engine, "empty") == 0

    def test_compact_all(self, engine):
        load_overlapping(engine)
        engine.create_series("other")
        engine.write_batch("other", np.arange(10, dtype=np.int64),
                           np.zeros(10))
        engine.flush_all()
        counts = compact_all(engine)
        assert counts == {"s": 90, "other": 10}

    def test_fully_deleted_series_compacts_to_nothing(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.arange(60, dtype=np.int64), np.zeros(60))
        engine.delete("s", 0, 59)
        engine.flush_all()
        assert compact_series(engine, "s") == 0
        assert engine.chunks_for("s") == []
