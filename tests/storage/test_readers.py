"""Unit tests for MetadataReader, DataReader and MergeReader."""

import numpy as np
import pytest

from repro.core.series import Point
from repro.storage import Delete, DeleteList, IoStats, MergeReader
from repro.storage.merge import merge_arrays
from repro.storage.readers import MetadataReader


class TestMetadataReader:
    def test_chunks_overlapping_filters_and_sorts(self, loaded_engine):
        engine, t, _v = loaded_engine
        reader = engine.metadata_reader("s")
        # 500 points, 10 per step, chunks of 50 -> 10 chunks of span 490.
        subset = reader.chunks_overlapping(int(t[0]), int(t[0]) + 1)
        assert len(subset) == 1
        all_chunks = reader.chunks_overlapping(int(t[0]), int(t[-1]) + 1)
        assert len(all_chunks) == 10
        versions = [c.version for c in all_chunks]
        assert versions == sorted(versions)

    def test_accounts_metadata_reads(self, loaded_engine):
        engine, t, _v = loaded_engine
        stats = IoStats()
        reader = MetadataReader(engine.chunks_for("s"), stats)
        reader.chunks_overlapping(int(t[0]), int(t[-1]) + 1)
        assert stats.metadata_reads == 10


class TestDataReader:
    def test_load_chunk_roundtrip(self, loaded_engine):
        engine, t, v = loaded_engine
        reader = engine.data_reader()
        meta = engine.chunks_for("s")[0]
        out_t, out_v = reader.load_chunk(meta)
        np.testing.assert_array_equal(out_t, t[:50])
        np.testing.assert_array_equal(out_v, v[:50])

    def test_load_chunk_applies_deletes(self, loaded_engine):
        engine, t, _v = loaded_engine
        meta = engine.chunks_for("s")[0]
        deletes = DeleteList([Delete(int(t[0]), int(t[9]), meta.version + 1)])
        reader = engine.data_reader()
        out_t, _ = reader.load_chunk(meta, deletes=deletes)
        assert out_t.size == 40

    def test_load_chunk_clips_time_range(self, loaded_engine):
        engine, t, _v = loaded_engine
        meta = engine.chunks_for("s")[0]
        reader = engine.data_reader()
        out_t, _ = reader.load_chunk(meta,
                                     time_range=(int(t[5]), int(t[10])))
        assert out_t.tolist() == t[5:10].tolist()

    def test_load_chunk_rows_partial_pages(self, loaded_engine):
        engine, t, v = loaded_engine
        meta = engine.chunks_for("s")[0]  # 50 points, pages of 20
        before = engine.stats.snapshot()
        reader = engine.data_reader()
        out_t, out_v = reader.load_chunk_rows(meta, 25, 35)
        np.testing.assert_array_equal(out_t, t[25:35])
        np.testing.assert_array_equal(out_v, v[25:35])
        decoded = engine.stats.diff(before).pages_decoded
        assert decoded == 2  # one page, both columns

    def test_point_at_row(self, loaded_engine):
        engine, t, v = loaded_engine
        meta = engine.chunks_for("s")[0]
        reader = engine.data_reader()
        assert reader.point_at_row(meta, 42) == Point(int(t[42]),
                                                      float(v[42]))

    def test_point_at_row_out_of_bounds(self, loaded_engine):
        engine, _t, _v = loaded_engine
        from repro.errors import StorageError
        meta = engine.chunks_for("s")[0]
        reader = engine.data_reader()
        with pytest.raises(StorageError):
            reader.point_at_row(meta, 50)

    def test_page_cache_avoids_second_decode(self, loaded_engine):
        engine, _t, _v = loaded_engine
        meta = engine.chunks_for("s")[0]
        reader = engine.data_reader()
        reader.page_timestamps(meta, 0)
        before = engine.stats.snapshot()
        reader.page_timestamps(meta, 0)
        assert engine.stats.diff(before).pages_decoded == 0
        reader.clear_cache()
        reader.page_timestamps(meta, 0)
        assert engine.stats.diff(before).pages_decoded == 1

    def test_chunk_index_kinds(self, loaded_engine):
        engine, t, _v = loaded_engine
        from repro.core.index import BinarySearchIndex, ChunkIndex
        meta = engine.chunks_for("s")[0]
        reader = engine.data_reader()
        assert isinstance(reader.chunk_index(meta), ChunkIndex)
        assert isinstance(reader.chunk_index(meta, use_regression=False),
                          BinarySearchIndex)
        assert reader.chunk_index(meta).exists(int(t[3]))


class TestMergeReader:
    def chunk(self, times, values, version):
        return (np.array(times, dtype=np.int64),
                np.array(values, dtype=np.float64), version)

    def test_streams_in_time_order(self):
        reader = MergeReader([self.chunk([5, 10], [1, 2], 1),
                              self.chunk([1, 7], [3, 4], 2)])
        points = list(reader)
        assert [p.t for p in points] == [1, 5, 7, 10]

    def test_duplicate_resolution_by_version(self):
        reader = MergeReader([self.chunk([5], [1], 1),
                              self.chunk([5], [2], 2)])
        assert list(reader) == [Point(5, 2.0)]

    def test_deletes_applied(self):
        deletes = DeleteList([Delete(4, 6, 3)])
        reader = MergeReader([self.chunk([3, 5, 7], [1, 2, 3], 1)], deletes)
        assert [p.t for p in reader] == [3, 7]

    def test_matches_vectorized_merge(self):
        rng = np.random.default_rng(9)
        chunks = []
        for version in range(1, 5):
            n = int(rng.integers(5, 30))
            t = np.sort(rng.choice(200, size=n, replace=False))
            chunks.append(self.chunk(t, rng.normal(size=n), version))
        deletes = DeleteList([Delete(50, 80, 10)])
        streamed = list(MergeReader(chunks, deletes))
        vec_t, vec_v = merge_arrays(chunks, deletes)
        assert [p.t for p in streamed] == vec_t.tolist()
        assert [p.v for p in streamed] == vec_v.tolist()

    def test_counts_points_merged(self):
        stats = IoStats()
        list(MergeReader([self.chunk([1, 2, 3], [1, 2, 3], 1)],
                         stats=stats))
        assert stats.points_merged == 3
