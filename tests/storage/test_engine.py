"""Unit tests for the storage engine."""

import os

import numpy as np
import pytest

from repro.errors import SeriesNotFoundError, StorageError
from repro.storage import StorageConfig, StorageEngine, merge_arrays


class TestSchema:
    def test_create_series_idempotent(self, engine):
        first = engine.create_series("a")
        assert engine.create_series("a") == first
        assert engine.create_series("b") != first
        assert set(engine.series_names()) == {"a", "b"}

    def test_unknown_series_raises(self, engine):
        with pytest.raises(SeriesNotFoundError):
            engine.write("ghost", 1, 1.0)
        with pytest.raises(SeriesNotFoundError):
            engine.chunks_for("ghost")


class TestWritesAndFlush:
    def test_auto_flush_at_threshold(self, engine):
        engine.create_series("s")
        for i in range(120):  # threshold is 50
            engine.write("s", i, float(i))
        engine.flush_all()
        chunks = engine.chunks_for("s")
        assert [c.n_points for c in chunks] == [50, 50, 20]

    def test_batch_write_chunks_cut_in_time_order(self, engine):
        engine.create_series("s")
        t = np.arange(130, dtype=np.int64)[::-1].copy()  # reverse order
        engine.write_batch("s", t, t.astype(float))
        engine.flush_all()
        chunks = engine.chunks_for("s")
        assert chunks[0].start_time == 0
        assert chunks[-1].end_time == 129
        # chunks must not overlap: drain sorts before cutting
        for earlier, later in zip(chunks, chunks[1:]):
            assert earlier.end_time < later.start_time

    def test_query_before_flush_raises(self, engine):
        engine.create_series("s")
        engine.write("s", 1, 1.0)
        with pytest.raises(StorageError):
            engine.chunks_for("s")

    def test_out_of_order_batches_create_overlap(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.arange(50, dtype=np.int64) * 2,
                           np.zeros(50))
        engine.flush("s")
        engine.write_batch("s", np.arange(50, dtype=np.int64) * 2 + 1,
                           np.ones(50))
        engine.flush_all()
        chunks = engine.chunks_for("s")
        assert len(chunks) == 2
        assert chunks[0].statistics.overlaps(chunks[1].start_time,
                                             chunks[1].end_time + 1)

    def test_versions_strictly_increase_across_series(self, engine):
        engine.create_series("a")
        engine.create_series("b")
        engine.write_batch("a", np.arange(50, dtype=np.int64), np.zeros(50))
        engine.write_batch("b", np.arange(50, dtype=np.int64), np.zeros(50))
        engine.flush_all()
        versions = ([c.version for c in engine.chunks_for("a")]
                    + [c.version for c in engine.chunks_for("b")])
        assert len(set(versions)) == len(versions)


class TestDeletes:
    def test_delete_flushes_memtable_first(self, engine):
        engine.create_series("s")
        engine.write("s", 1, 1.0)
        delete = engine.delete("s", 0, 10)
        engine.flush_all()
        chunks = engine.chunks_for("s")
        assert len(chunks) == 1
        assert delete.version > chunks[0].version

    def test_delete_recorded_in_mods_log(self, engine):
        engine.create_series("s")
        engine.write("s", 1, 1.0)
        engine.delete("s", 0, 10)
        records = list(engine._mods.read_all())
        assert len(records) == 1
        assert records[0][1].t_start == 0

    def test_deletes_affect_merge(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.arange(60, dtype=np.int64),
                           np.arange(60, dtype=float))
        engine.delete("s", 10, 19)
        engine.flush_all()
        assert engine.total_points("s") == 50


class TestFileManagement:
    def test_tsfile_rotation(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=10,
                               points_per_page=10, chunks_per_tsfile=3)
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            engine.write_batch("s", np.arange(100, dtype=np.int64),
                               np.zeros(100))
            engine.flush_all()
            files = {c.file_path for c in engine.chunks_for("s")}
            assert len(files) == 4  # 10 chunks / 3 per file

    def test_files_exist_on_disk(self, loaded_engine):
        engine, _t, _v = loaded_engine
        for meta in engine.chunks_for("s"):
            assert os.path.exists(meta.file_path)

    def test_reader_pool_reuses_readers(self, loaded_engine):
        engine, _t, _v = loaded_engine
        path = engine.chunks_for("s")[0].file_path
        assert engine.tsfile_reader(path) is engine.tsfile_reader(path)

    def test_total_points(self, loaded_engine):
        engine, t, _v = loaded_engine
        assert engine.total_points("s") == t.size


class TestPersistenceAcrossReaders:
    def test_metadata_reloadable_from_disk(self, loaded_engine):
        """Sealed TsFiles are self-describing: a fresh reader sees the
        same chunks the engine tracks in memory."""
        engine, t, v = loaded_engine
        from repro.storage.tsfile import TsFileReader
        files = sorted({c.file_path for c in engine.chunks_for("s")})
        reloaded = []
        for path in files:
            with TsFileReader(path) as reader:
                reloaded.extend(reader.read_metadata())
        assert len(reloaded) == len(engine.chunks_for("s"))
        chunk_data = []
        for meta in sorted(reloaded, key=lambda m: m.version):
            with TsFileReader(meta.file_path) as reader:
                out_t, out_v = reader.read_chunk_arrays(meta)
            chunk_data.append((out_t, out_v, meta.version))
        merged_t, merged_v = merge_arrays(chunk_data)
        np.testing.assert_array_equal(merged_t, t)
        np.testing.assert_array_equal(merged_v, v)


class TestCloseLifecycle:
    """close() is idempotent and safe to race with in-flight queries."""

    def test_close_is_idempotent(self, tmp_path):
        engine = StorageEngine(tmp_path / "db", StorageConfig())
        engine.create_series("s")
        engine.close()
        assert engine.closed
        engine.close()  # second call is a no-op, not an error
        assert engine.closed

    def test_concurrent_close_single_winner(self, loaded_engine, tmp_path):
        import json
        import threading
        engine, _t, _v = loaded_engine
        barrier = threading.Barrier(8)
        failures = []

        def racer():
            barrier.wait()
            try:
                engine.close()
            except Exception as exc:  # noqa: BLE001 - recording all
                failures.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not failures
        assert engine.closed
        # exactly one close persisted a parseable snapshot
        snapshot = json.loads(
            (tmp_path / "db" / "obs.json").read_text())
        assert "metrics" in snapshot

    def test_close_races_inflight_queries_cleanly(self, tmp_path):
        """Queries racing close() either complete or fail with a clean
        engine-closed error; nothing hangs, nothing corrupts obs.json."""
        import json
        import threading
        from repro.core.m4lsm import M4LSMOperator
        from repro.errors import ReproError

        engine = StorageEngine(
            tmp_path / "db",
            StorageConfig(avg_series_point_number_threshold=50,
                          points_per_page=20, parallelism=2))
        t = np.arange(2000, dtype=np.int64) * 5
        engine.create_series("s")
        engine.write_batch("s", t, np.sin(t / 37.0))
        engine.flush_all()

        unexpected = []
        stop = threading.Event()

        def query_loop():
            operator = M4LSMOperator(engine)
            while not stop.is_set():
                try:
                    operator.query("s", 0, 10000, 25)
                except (ReproError, OSError, ValueError):
                    return  # clean refusal once the engine is closed
                except Exception as exc:  # noqa: BLE001 - the test's point
                    unexpected.append(exc)
                    return

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.15)  # let queries get in flight
        engine.close()
        stop.set()
        for thread in threads:
            thread.join(10)
            assert not thread.is_alive(), "query thread hung after close"
        assert not unexpected, unexpected
        snapshot = json.loads((tmp_path / "db" / "obs.json").read_text())
        assert "metrics" in snapshot

    def test_tsfile_reader_refused_after_close(self, loaded_engine):
        engine, _t, _v = loaded_engine
        path = engine.chunks_for("s")[0].file_path
        engine.close()
        with pytest.raises(StorageError):
            engine.tsfile_reader(path)
