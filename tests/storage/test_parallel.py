"""ChunkPipeline unit tests: ordering, nesting, shutdown fallback."""

from __future__ import annotations

import threading

import pytest

from repro.storage import ChunkPipeline, in_worker_thread, serial_map


def test_map_ordered_preserves_submission_order():
    with ChunkPipeline(4) as pipeline:
        out = pipeline.map_ordered(lambda x: x * x, range(50))
    assert out == [x * x for x in range(50)]


def test_runs_on_worker_threads():
    with ChunkPipeline(3) as pipeline:
        names = pipeline.map_ordered(
            lambda _x: threading.current_thread().name, range(12))
    assert all(name.startswith("repro-chunk") for name in names)


def test_nested_fanout_degrades_to_serial():
    """A map issued from inside a worker must not re-enter the pool —
    with every worker busy waiting, that would deadlock."""
    with ChunkPipeline(2) as pipeline:

        def outer(x):
            assert in_worker_thread()
            inner = pipeline.map_ordered(
                lambda y: (y, threading.current_thread().name), range(3))
            me = threading.current_thread().name
            assert all(name == me for _y, name in inner)
            return x + sum(y for y, _name in inner)

        out = pipeline.map_ordered(outer, range(8))
    assert out == [x + 3 for x in range(8)]


def test_exception_propagates_like_serial_loop():
    def boom(x):
        if x == 3:
            raise ValueError("item 3")
        return x

    with ChunkPipeline(4) as pipeline:
        with pytest.raises(ValueError, match="item 3"):
            pipeline.map_ordered(boom, range(6))


def test_shutdown_falls_back_to_serial():
    pipeline = ChunkPipeline(2)
    pipeline.shutdown()
    pipeline.shutdown()  # idempotent
    assert pipeline.map_ordered(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]


def test_single_item_and_empty_stay_inline():
    with ChunkPipeline(2) as pipeline:
        assert pipeline.map_ordered(
            lambda _x: in_worker_thread(), [1]) == [False]
        assert pipeline.map_ordered(lambda x: x, []) == []


def test_invalid_worker_count():
    with pytest.raises(ValueError):
        ChunkPipeline(0)


def test_serial_map_matches():
    assert serial_map(lambda x: x * 2, range(4)) == [0, 2, 4, 6]


def test_main_thread_is_not_worker():
    assert not in_worker_thread()
