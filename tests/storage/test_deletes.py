"""Unit tests for deletes and delete lists (Definition 2.5)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import TIME_MAX, TIME_MIN, Delete, DeleteList
from repro.storage.versions import VERSION_INFINITY


class TestDelete:
    def test_covers_closed_range(self):
        delete = Delete(10, 20, 1)
        assert delete.covers(10) and delete.covers(20) and delete.covers(15)
        assert not delete.covers(9) and not delete.covers(21)

    def test_empty_range_rejected(self):
        with pytest.raises(StorageError):
            Delete(5, 4, 1)

    def test_point_range_allowed(self):
        assert Delete(5, 5, 1).covers(5)

    def test_virtual_before(self):
        d = Delete.virtual_before(100)
        assert d.covers(99) and d.covers(TIME_MIN)
        assert not d.covers(100)
        assert d.is_virtual() and d.version == VERSION_INFINITY

    def test_virtual_from(self):
        d = Delete.virtual_from(100)
        assert d.covers(100) and d.covers(TIME_MAX)
        assert not d.covers(99)
        assert d.is_virtual()

    def test_real_delete_not_virtual(self):
        assert not Delete(0, 1, 7).is_virtual()


class TestDeleteList:
    @pytest.fixture
    def deletes(self):
        return DeleteList([Delete(10, 20, 2), Delete(50, 60, 5)])

    def test_covers_respects_min_version(self, deletes):
        assert deletes.covers(15)
        assert deletes.covers(15, min_version=1)
        assert not deletes.covers(15, min_version=2)  # delete v2 not newer
        assert deletes.covers(55, min_version=2)

    def test_versions_must_increase(self, deletes):
        with pytest.raises(StorageError):
            deletes.add(Delete(0, 1, 3))

    def test_virtual_appends_regardless_of_version(self, deletes):
        deletes.add(Delete.virtual_before(5))
        deletes.add(Delete.virtual_from(100))
        assert len(deletes) == 4

    def test_extended_does_not_mutate(self, deletes):
        extra = deletes.extended([Delete.virtual_before(5)])
        assert len(extra) == 3
        assert len(deletes) == 2

    def test_after_version(self, deletes):
        assert len(deletes.after_version(2)) == 1
        assert len(deletes.after_version(0)) == 2

    def test_overlapping(self, deletes):
        hits = deletes.overlapping(15, 55)
        assert len(hits) == 2
        assert deletes.overlapping(21, 49) == []
        assert len(deletes.overlapping(20, 20)) == 1

    def test_keep_mask_vectorized(self, deletes):
        t = np.array([5, 10, 20, 30, 55, 61], dtype=np.int64)
        mask = deletes.keep_mask(t, chunk_version=1)
        assert mask.tolist() == [True, False, False, True, False, True]

    def test_keep_mask_skips_older_deletes(self, deletes):
        t = np.array([15, 55], dtype=np.int64)
        mask = deletes.keep_mask(t, chunk_version=3)  # only v5 applies
        assert mask.tolist() == [True, False]

    def test_apply_no_copy_when_nothing_deleted(self, deletes):
        t = np.array([1, 2], dtype=np.int64)
        v = np.array([1.0, 2.0])
        out_t, out_v = deletes.apply(t, v, chunk_version=1)
        assert out_t is t and out_v is v


class TestFullyDeletes:
    def test_single_covering_delete(self):
        deletes = DeleteList([Delete(0, 100, 2)])
        assert deletes.fully_deletes(10, 50, chunk_version=1)
        assert not deletes.fully_deletes(10, 50, chunk_version=3)

    def test_stitched_coverage(self):
        deletes = DeleteList([Delete(0, 49, 2), Delete(50, 100, 3)])
        assert deletes.fully_deletes(10, 90, 1)

    def test_gap_breaks_coverage(self):
        deletes = DeleteList([Delete(0, 40, 2), Delete(42, 100, 3)])
        assert not deletes.fully_deletes(10, 90, 1)

    def test_adjacent_integer_ranges_stitch(self):
        # [0,40] and [41,100] cover every integer timestamp in [10,90].
        deletes = DeleteList([Delete(0, 40, 2), Delete(41, 100, 3)])
        assert deletes.fully_deletes(10, 90, 1)

    def test_partial_coverage(self):
        deletes = DeleteList([Delete(0, 40, 2)])
        assert not deletes.fully_deletes(10, 90, 1)
        assert deletes.fully_deletes(10, 40, 1)
