"""Unit and integration tests for the WAL, catalog and crash recovery."""

import os

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator
from repro.errors import CorruptFileError
from repro.storage import (
    CatalogFile,
    StorageConfig,
    StorageEngine,
    WalManager,
    WriteAheadLog,
    list_tsfiles,
)


@pytest.fixture
def config():
    return StorageConfig(avg_series_point_number_threshold=50,
                         points_per_page=25)


class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.append(1, 10, 1.5)
        wal.append_batch(1, [20, 30], [2.5, 3.5])
        wal.sync()
        assert list(wal.replay()) == [(1, 10, 1.5), (1, 20, 2.5),
                                      (1, 30, 3.5)]
        wal.close()

    def test_rotate_empties_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.append(1, 10, 1.0)
        wal.rotate()
        assert list(wal.replay()) == []
        wal.close()

    def test_rewrite_replaces_contents(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.append(1, 10, 1.0)
        wal.rewrite(1, [99], [9.9])
        assert list(wal.replay()) == [(1, 99, 9.9)]
        wal.close()

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "w.log"
        wal = WriteAheadLog(path)
        wal.append(1, 10, 1.0)
        wal.append(1, 20, 2.0)
        wal.close()
        # Simulate a crash mid-append: cut 3 bytes off the last record.
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        survivor = WriteAheadLog(path)
        assert list(survivor.replay()) == [(1, 10, 1.0)]
        survivor.close()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "w.log"
        path.write_bytes(b"garbage!")
        wal = WriteAheadLog(path)
        with pytest.raises(CorruptFileError):
            list(wal.replay())
        wal.close()


class TestWalManager:
    def test_per_series_segments(self, tmp_path):
        manager = WalManager(tmp_path)
        manager.segment(1).append(1, 10, 1.0)
        manager.segment(2).append(2, 20, 2.0)
        manager.segment(1).sync()
        manager.segment(2).sync()
        assert sorted(manager.replay_all()) == [(1, 10, 1.0), (2, 20, 2.0)]
        manager.close()

    def test_rotating_one_segment_keeps_others(self, tmp_path):
        manager = WalManager(tmp_path)
        manager.segment(1).append(1, 10, 1.0)
        manager.segment(2).append(2, 20, 2.0)
        manager.segment(1).rotate()
        manager.segment(2).sync()
        assert list(manager.replay_all()) == [(2, 20, 2.0)]
        manager.close()


class TestCatalog:
    def test_roundtrip(self, tmp_path):
        catalog = CatalogFile(tmp_path / "c.meta")
        catalog.append(1, "root.sg.a")
        catalog.append(2, "root.sg.b-日本語")
        assert list(catalog.read_all()) == [(1, "root.sg.a"),
                                            (2, "root.sg.b-日本語")]

    def test_torn_tail_keeps_prior_records(self, tmp_path):
        path = tmp_path / "c.meta"
        catalog = CatalogFile(path)
        catalog.append(1, "root.sg.a")
        catalog.append(2, "root.sg.b")
        path.write_bytes(path.read_bytes()[:-2])
        assert list(CatalogFile(path).read_all()) == [(1, "root.sg.a")]

    def test_bad_crc_raises(self, tmp_path):
        path = tmp_path / "c.meta"
        catalog = CatalogFile(path)
        catalog.append(1, "series")
        data = bytearray(path.read_bytes())
        data[9] ^= 0x01  # series_id byte: framing intact, CRC must catch
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptFileError):
            list(CatalogFile(path).read_all())


class TestRecovery:
    def populate(self, db, config):
        engine = StorageEngine(db, config)
        engine.create_series("a")
        engine.create_series("b")
        t = np.arange(130, dtype=np.int64)
        engine.write_batch("a", t, t.astype(float))
        engine.delete("a", 5, 9)
        engine.write_batch("b", t[:60], t[:60].astype(float) * 2)
        engine.write("b", 999, 42.0)
        engine.close()  # NOT flushed: 'b' has 11 buffered points

    def test_everything_recovered(self, tmp_path, config):
        db = tmp_path / "db"
        self.populate(db, config)
        engine = StorageEngine(db, config)
        summary = engine.recovery_summary
        assert summary["series"] == 2
        assert summary["deletes"] == 1
        assert summary["wal_points"] == 11
        engine.flush_all()
        assert engine.total_points("a") == 125  # the delete survived
        assert engine.total_points("b") == 61
        engine.close()

    def test_operators_agree_after_recovery(self, tmp_path, config):
        db = tmp_path / "db"
        self.populate(db, config)
        engine = StorageEngine(db, config)
        engine.flush_all()
        a = M4UDFOperator(engine).query("a", 0, 200, 5)
        b = M4LSMOperator(engine).query("a", 0, 200, 5)
        assert a.semantically_equal(b)
        engine.close()

    def test_versions_continue_after_recovery(self, tmp_path, config):
        db = tmp_path / "db"
        self.populate(db, config)
        engine = StorageEngine(db, config)
        old_max = max(c.version for name in ("a", "b")
                      for c in engine._series[name].chunks)
        engine.flush_all()
        new_versions = [c.version for c in engine.chunks_for("b")]
        assert min(v for v in new_versions if v > old_max) > old_max
        engine.close()

    def test_file_sequence_continues(self, tmp_path, config):
        db = tmp_path / "db"
        self.populate(db, config)
        before = {seq for seq, _ in list_tsfiles(db)}
        engine = StorageEngine(db, config)
        engine.write_batch("a", np.arange(1000, 1100, dtype=np.int64),
                           np.zeros(100))
        engine.flush_all()
        after = {seq for seq, _ in list_tsfiles(db)}
        assert after > before
        engine.close()

    def test_double_recovery_is_stable(self, tmp_path, config):
        db = tmp_path / "db"
        self.populate(db, config)
        first = StorageEngine(db, config)
        first.close()
        second = StorageEngine(db, config)
        assert second.recovery_summary["wal_points"] == 11
        second.flush_all()
        assert second.total_points("b") == 61
        second.close()

    def test_wal_disabled_loses_buffered_points_only(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=50,
                               points_per_page=25, enable_wal=False)
        db = tmp_path / "db"
        engine = StorageEngine(db, config)
        engine.create_series("a")
        t = np.arange(60, dtype=np.int64)
        engine.write_batch("a", t, t.astype(float))  # 50 flushed, 10 lost
        engine.close()
        reopened = StorageEngine(db, config)
        assert reopened.recovery_summary["wal_points"] == 0
        reopened.flush_all()
        assert reopened.total_points("a") == 50
        reopened.close()

    def test_fresh_directory_has_no_recovery(self, tmp_path, config):
        engine = StorageEngine(tmp_path / "new", config)
        assert engine.recovery_summary is None
        engine.close()

    def test_recovery_replays_exact_values(self, tmp_path, config):
        db = tmp_path / "db"
        engine = StorageEngine(db, config)
        engine.create_series("s")
        engine.write("s", 1, 3.14159)
        engine.write("s", 2, -2.71828)
        # single writes are buffered without an explicit sync; close()
        # releases handles which flushes OS buffers
        engine.close()
        reopened = StorageEngine(db, config)
        reopened.flush_all()
        reader = reopened.data_reader()
        meta = reopened.chunks_for("s")[0]
        t, v = reader.load_chunk(meta)
        assert t.tolist() == [1, 2]
        assert v.tolist() == pytest.approx([3.14159, -2.71828])
        reopened.close()
