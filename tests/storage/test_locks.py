"""RWLock unit tests: reentrancy, exclusion, writer preference."""

from __future__ import annotations

import threading
import time

import pytest

from repro.storage import RWLock


def test_many_concurrent_readers():
    lock = RWLock()
    inside = []
    barrier = threading.Barrier(4)

    def reader():
        with lock.read():
            barrier.wait(timeout=10)  # all 4 hold the read side at once
            inside.append(1)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert len(inside) == 4


def test_writer_is_exclusive():
    lock = RWLock()
    counter = {"value": 0, "max_seen": 0}

    def writer():
        for _ in range(200):
            with lock.write():
                counter["value"] += 1
                counter["max_seen"] = max(counter["max_seen"],
                                          counter["value"])
                counter["value"] -= 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert counter["max_seen"] == 1  # never two writers inside


def test_write_lock_is_reentrant():
    lock = RWLock()
    with lock.write():
        with lock.write():
            with lock.read():   # holder may take the read side too
                pass
    # Fully released: another thread can now acquire (and release).
    def other():
        lock.acquire_write()
        lock.release_write()

    t = threading.Thread(target=other)
    t.start()
    t.join(5)
    assert not t.is_alive()


def test_read_lock_is_reentrant():
    lock = RWLock()
    with lock.read():
        with lock.read():
            pass
    with lock.write():  # fully released afterwards
        pass


def test_read_to_write_upgrade_raises():
    lock = RWLock()
    with lock.read():
        with pytest.raises(RuntimeError):
            lock.acquire_write()


def test_reader_blocks_writer_until_release():
    lock = RWLock()
    order = []
    lock.acquire_read()

    def writer():
        with lock.write():
            order.append("writer")

    t = threading.Thread(target=writer)
    t.start()
    time.sleep(0.05)
    assert order == []  # writer parked behind the reader
    order.append("reader-release")
    lock.release_read()
    t.join(5)
    assert order == ["reader-release", "writer"]


def test_waiting_writer_blocks_new_readers():
    """Writer preference: once a writer waits, fresh readers queue
    behind it instead of starving it."""
    lock = RWLock()
    events = []
    lock.acquire_read()
    writer_waiting = threading.Event()

    def writer():
        writer_waiting.set()
        with lock.write():
            events.append("writer")

    def late_reader():
        writer_waiting.wait(5)
        time.sleep(0.05)  # let the writer reach its wait loop
        with lock.read():
            events.append("late-reader")

    tw = threading.Thread(target=writer)
    tr = threading.Thread(target=late_reader)
    tw.start()
    tr.start()
    time.sleep(0.15)
    lock.release_read()
    tw.join(5)
    tr.join(5)
    assert events == ["writer", "late-reader"]


def test_release_errors():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()


class TestLockWaitObs:
    """Contention observability: wait times land in histograms and,
    inside a detailed request trace, as ``lock.wait`` spans."""

    def _observed(self, registry, side):
        snapshot = registry.snapshot()["histograms"]
        key = 'lock_wait_seconds{series="s1",side="%s"}' % side
        return snapshot[key]["count"] if key in snapshot else 0

    def test_uncontended_acquisitions_are_recorded(self):
        from repro.obs import MetricsRegistry
        from repro.storage.locks import LockWaitObs

        registry = MetricsRegistry()
        lock = RWLock(obs=LockWaitObs(registry, "s1"))
        with lock.read():
            pass
        with lock.write():
            pass
        assert self._observed(registry, "read") == 1
        assert self._observed(registry, "write") == 1

    def test_reentrant_acquisitions_are_not_timed(self):
        from repro.obs import MetricsRegistry
        from repro.storage.locks import LockWaitObs

        registry = MetricsRegistry()
        lock = RWLock(obs=LockWaitObs(registry, "s1"))
        with lock.write():
            with lock.write():      # reentrant: cannot wait
                pass
            with lock.read():       # holder re-entering the read side
                pass
        assert self._observed(registry, "write") == 1
        assert self._observed(registry, "read") == 0

    def test_contended_wait_is_measured(self):
        from repro.obs import MetricsRegistry
        from repro.storage.locks import LockWaitObs

        registry = MetricsRegistry()
        lock = RWLock(obs=LockWaitObs(registry, "s1"))
        lock.acquire_write()
        waited = []

        def reader():
            started = time.perf_counter()
            with lock.read():
                waited.append(time.perf_counter() - started)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        lock.release_write()
        thread.join(5)
        snapshot = registry.snapshot()["histograms"]
        entry = snapshot['lock_wait_seconds{series="s1",side="read"}']
        assert entry["count"] == 1
        assert entry["sum"] >= 0.04  # saw most of the 50ms hold

    def test_wait_attaches_to_an_active_detailed_trace(self):
        from repro.obs import MetricsRegistry, Tracer
        from repro.storage.locks import LockWaitObs

        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        lock = RWLock(obs=LockWaitObs(registry, "s1"))
        root = tracer.root_span("request", endpoint="test")
        with root:
            with lock.read():
                pass
        waits = root.find_all("lock.wait")
        assert len(waits) == 1
        assert waits[0].attrs == {"series": "s1", "side": "read"}

    def test_no_trace_means_no_span_but_still_a_histogram(self):
        from repro.obs import MetricsRegistry
        from repro.storage.locks import LockWaitObs

        registry = MetricsRegistry()
        lock = RWLock(obs=LockWaitObs(registry, "s1"))
        with lock.read():
            pass
        assert self._observed(registry, "read") == 1
