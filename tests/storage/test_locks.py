"""RWLock unit tests: reentrancy, exclusion, writer preference."""

from __future__ import annotations

import threading
import time

import pytest

from repro.storage import RWLock


def test_many_concurrent_readers():
    lock = RWLock()
    inside = []
    barrier = threading.Barrier(4)

    def reader():
        with lock.read():
            barrier.wait(timeout=10)  # all 4 hold the read side at once
            inside.append(1)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert len(inside) == 4


def test_writer_is_exclusive():
    lock = RWLock()
    counter = {"value": 0, "max_seen": 0}

    def writer():
        for _ in range(200):
            with lock.write():
                counter["value"] += 1
                counter["max_seen"] = max(counter["max_seen"],
                                          counter["value"])
                counter["value"] -= 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert counter["max_seen"] == 1  # never two writers inside


def test_write_lock_is_reentrant():
    lock = RWLock()
    with lock.write():
        with lock.write():
            with lock.read():   # holder may take the read side too
                pass
    # Fully released: another thread can now acquire (and release).
    def other():
        lock.acquire_write()
        lock.release_write()

    t = threading.Thread(target=other)
    t.start()
    t.join(5)
    assert not t.is_alive()


def test_read_lock_is_reentrant():
    lock = RWLock()
    with lock.read():
        with lock.read():
            pass
    with lock.write():  # fully released afterwards
        pass


def test_read_to_write_upgrade_raises():
    lock = RWLock()
    with lock.read():
        with pytest.raises(RuntimeError):
            lock.acquire_write()


def test_reader_blocks_writer_until_release():
    lock = RWLock()
    order = []
    lock.acquire_read()

    def writer():
        with lock.write():
            order.append("writer")

    t = threading.Thread(target=writer)
    t.start()
    time.sleep(0.05)
    assert order == []  # writer parked behind the reader
    order.append("reader-release")
    lock.release_read()
    t.join(5)
    assert order == ["reader-release", "writer"]


def test_waiting_writer_blocks_new_readers():
    """Writer preference: once a writer waits, fresh readers queue
    behind it instead of starving it."""
    lock = RWLock()
    events = []
    lock.acquire_read()
    writer_waiting = threading.Event()

    def writer():
        writer_waiting.set()
        with lock.write():
            events.append("writer")

    def late_reader():
        writer_waiting.wait(5)
        time.sleep(0.05)  # let the writer reach its wait loop
        with lock.read():
            events.append("late-reader")

    tw = threading.Thread(target=writer)
    tr = threading.Thread(target=late_reader)
    tw.start()
    tr.start()
    time.sleep(0.15)
    lock.release_read()
    tw.join(5)
    tr.join(5)
    assert events == ["writer", "late-reader"]


def test_release_errors():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()
