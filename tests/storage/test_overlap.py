"""Unit tests for the contested-chunk overlap sweep."""

import numpy as np
import pytest

from repro.storage import Delete, write_chunk
from repro.storage.overlap import contested_versions


def meta(start, end, version):
    t = np.array([start, end] if end > start else [start], dtype=np.int64)
    v = np.zeros(t.size)
    return write_chunk(1, version, t, v)[1]


class TestOverlapSweep:
    def test_disjoint_chunks_uncontested(self):
        chunks = [meta(0, 9, 1), meta(10, 19, 2), meta(20, 29, 3)]
        assert contested_versions(chunks) == set()

    def test_adjacent_pair_contested(self):
        chunks = [meta(0, 10, 1), meta(10, 20, 2)]
        assert contested_versions(chunks) == {1, 2}

    def test_pair_separated_in_sort_order(self):
        """The regression case: A overlaps C, but B sorts between them."""
        a = meta(0, 100, 1)
        b = meta(5, 8, 2)
        c = meta(10, 50, 3)
        assert contested_versions([a, b, c]) == {1, 2, 3}

    def test_chain_with_escaping_tail(self):
        a = meta(0, 10, 1)
        b = meta(5, 50, 2)
        c = meta(40, 60, 3)
        d = meta(70, 80, 4)
        assert contested_versions([a, b, c, d]) == {1, 2, 3}

    def test_nested_intervals(self):
        outer = meta(0, 100, 1)
        inner = meta(40, 60, 2)
        assert contested_versions([inner, outer]) == {1, 2}

    def test_every_pairwise_overlap_is_caught(self):
        """Property check against the quadratic reference."""
        rng = np.random.default_rng(0)
        for _ in range(30):
            chunks = []
            for version in range(1, int(rng.integers(2, 12))):
                start = int(rng.integers(0, 100))
                end = start + int(rng.integers(0, 30))
                chunks.append(meta(start, end, version))
            expected = set()
            for i, a in enumerate(chunks):
                for b in chunks[i + 1:]:
                    if (a.start_time <= b.end_time
                            and b.start_time <= a.end_time):
                        expected.add(a.version)
                        expected.add(b.version)
            assert contested_versions(chunks) == expected

    def test_delete_contests_only_older_chunks(self):
        chunks = [meta(0, 10, 1), meta(20, 30, 5)]
        deletes = [Delete(5, 25, 3)]
        assert contested_versions(chunks, deletes) == {1}

    def test_delete_outside_all_chunks(self):
        chunks = [meta(0, 10, 1)]
        deletes = [Delete(50, 60, 2)]
        assert contested_versions(chunks, deletes) == set()

    def test_empty_input(self):
        assert contested_versions([]) == set()

    def test_single_chunk(self):
        assert contested_versions([meta(0, 10, 1)]) == set()
