"""Unit tests for the TsFile container."""

import numpy as np
import pytest

from repro.errors import CorruptFileError, ReadOnlyError
from repro.storage import IoStats, StorageConfig, write_chunk
from repro.storage.tsfile import MAGIC, TsFileReader, TsFileWriter


def write_file(path, n_chunks=3, points=120, pages=40):
    config = StorageConfig(avg_series_point_number_threshold=10_000,
                           points_per_page=pages)
    expected = []
    with TsFileWriter(path) as writer:
        for i in range(n_chunks):
            t = np.arange(points, dtype=np.int64) + i * points * 2
            v = np.arange(points, dtype=np.float64) * (i + 1)
            block, meta = write_chunk(1, i + 1, t, v, config)
            writer.append_chunk(block, meta)
            expected.append((t, v))
    return expected


class TestWriter:
    def test_append_after_close_rejected(self, tmp_path):
        path = tmp_path / "x.tsfile"
        writer = TsFileWriter(path)
        writer.close()
        with pytest.raises(ReadOnlyError):
            writer.append_chunk(b"", None)

    def test_close_idempotent(self, tmp_path):
        path = tmp_path / "x.tsfile"
        writer = TsFileWriter(path)
        assert writer.close() == writer.close()

    def test_located_metadata_returned(self, tmp_path):
        from repro.storage.tsfile import _CHUNK_HEADER
        path = tmp_path / "x.tsfile"
        t = np.arange(10, dtype=np.int64)
        block, meta = write_chunk(1, 1, t, t.astype(float))
        with TsFileWriter(path) as writer:
            located = writer.append_chunk(block, meta)
        assert located.file_path == str(path)
        # v2: the data block sits after the inline CHNK header + metadata
        assert located.data_offset == (len(MAGIC) + _CHUNK_HEADER.size
                                       + len(located.to_bytes()))
        assert located.data_length == len(block)


class TestReader:
    def test_metadata_roundtrip(self, tmp_path):
        path = tmp_path / "x.tsfile"
        write_file(path, n_chunks=4)
        with TsFileReader(path) as reader:
            metadata = reader.read_metadata()
        assert len(metadata) == 4
        assert [m.version for m in metadata] == [1, 2, 3, 4]

    def test_chunk_arrays_roundtrip(self, tmp_path):
        path = tmp_path / "x.tsfile"
        expected = write_file(path)
        with TsFileReader(path) as reader:
            for meta, (t, v) in zip(reader.read_metadata(), expected):
                out_t, out_v = reader.read_chunk_arrays(meta)
                np.testing.assert_array_equal(out_t, t)
                np.testing.assert_array_equal(out_v, v)

    def test_single_page_reads(self, tmp_path):
        path = tmp_path / "x.tsfile"
        expected = write_file(path, n_chunks=1, points=120, pages=40)
        with TsFileReader(path) as reader:
            meta = reader.read_metadata()[0]
            page1_t = reader.read_page_timestamps(meta, 1)
            np.testing.assert_array_equal(page1_t, expected[0][0][40:80])
            page2_v = reader.read_page_values(meta, 2)
            np.testing.assert_array_equal(page2_v, expected[0][1][80:120])

    def test_stats_accounting(self, tmp_path):
        path = tmp_path / "x.tsfile"
        write_file(path, n_chunks=2, points=100, pages=50)
        stats = IoStats()
        with TsFileReader(path, stats) as reader:
            metadata = reader.read_metadata()
            assert stats.metadata_reads == 2
            assert stats.bytes_read > 0
            before = stats.pages_decoded
            reader.read_chunk_arrays(metadata[0])
            assert stats.chunk_loads == 1
            assert stats.pages_decoded == before + 4  # 2 pages x 2 columns
            assert stats.points_decoded == 200


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.tsfile"
        path.write_bytes(b"NOTAFILE" + b"\x00" * 100)
        with pytest.raises(CorruptFileError):
            TsFileReader(path)

    def test_truncated_footer(self, tmp_path):
        path = tmp_path / "x.tsfile"
        write_file(path, n_chunks=1)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()

    def test_tiny_file(self, tmp_path):
        path = tmp_path / "x.tsfile"
        path.write_bytes(MAGIC)
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()

    def test_missing_file(self, tmp_path):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            TsFileReader(tmp_path / "absent.tsfile")
