"""Unit tests for the shared decoded-page ChunkCache."""

import numpy as np
import pytest

from repro.storage import StorageConfig, StorageEngine
from repro.storage.cache import ChunkCache


class TestChunkCache:
    def test_get_put(self):
        cache = ChunkCache(100)
        assert cache.get("a") is None
        cache.put("a", np.arange(10))
        np.testing.assert_array_equal(cache.get("a"), np.arange(10))
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_by_points(self):
        cache = ChunkCache(25)
        cache.put("a", np.arange(10))
        cache.put("b", np.arange(10))
        cache.get("a")  # refresh a
        cache.put("c", np.arange(10))  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.points <= 25

    def test_oversized_value_not_cached(self):
        cache = ChunkCache(5)
        cache.put("big", np.arange(10))
        assert cache.get("big") is None
        assert len(cache) == 0

    def test_replace_existing_key(self):
        cache = ChunkCache(100)
        cache.put("a", np.arange(10))
        cache.put("a", np.arange(20))
        assert cache.points == 20
        assert cache.get("a").size == 20

    def test_clear(self):
        cache = ChunkCache(100)
        cache.put("a", np.arange(10))
        cache.clear()
        assert len(cache) == 0 and cache.points == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ChunkCache(0)

    def test_stats(self):
        cache = ChunkCache(100)
        cache.put("a", np.arange(4))
        cache.get("a")
        cache.get("b")
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "points": 4}


class TestEngineIntegration:
    def test_second_query_hits_cache(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=50,
                               points_per_page=25,
                               chunk_cache_points=1_000_000)
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            t = np.arange(500, dtype=np.int64)
            engine.write_batch("s", t, t.astype(float))
            engine.flush_all()
            from repro.core import M4UDFOperator
            udf = M4UDFOperator(engine)
            udf.query("s", 0, 500, 5)
            decoded_cold = engine.stats.pages_decoded
            udf.query("s", 0, 500, 5)
            assert engine.stats.pages_decoded == decoded_cold  # all hits
            assert engine.chunk_cache.hits > 0

    def test_cache_disabled_by_default(self, engine):
        assert engine.chunk_cache is None

    def test_results_identical_with_and_without_cache(self, tmp_path):
        from repro.core import M4LSMOperator
        t = np.arange(1000, dtype=np.int64) * 3
        v = np.sin(t / 100.0)
        results = []
        for cache_points in (0, 100_000):
            config = StorageConfig(avg_series_point_number_threshold=100,
                                   points_per_page=50,
                                   chunk_cache_points=cache_points)
            with StorageEngine(tmp_path / ("db%d" % cache_points),
                               config) as engine:
                engine.create_series("s")
                engine.write_batch("s", t, v)
                engine.delete("s", 100, 200)
                engine.flush_all()
                op = M4LSMOperator(engine)
                results.append(op.query("s", 0, 3000, 9))
                results.append(op.query("s", 0, 3000, 9))  # warm
        assert results[0].semantically_equal(results[1])
        assert results[0].semantically_equal(results[2])
        assert results[0].semantically_equal(results[3])
