"""Unit tests for the fault-injection layer itself."""

import errno

import pytest

from repro.storage import faultfs
from repro.storage.faultfs import FaultInjector, FaultRule, retry_io


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    faultfs.uninstall()


def test_passthrough_without_injector(tmp_path):
    path = tmp_path / "x.bin"
    with faultfs.fopen(path, "wb") as f:
        f.write(b"hello")
        faultfs.fsync(f)
    with faultfs.fopen(path, "rb") as f:
        assert f.read() == b"hello"


def test_text_mode_rejected(tmp_path):
    with pytest.raises(ValueError):
        faultfs.fopen(tmp_path / "x", "w")


class TestRules:
    def test_eio_on_scripted_write(self, tmp_path):
        faultfs.install(FaultInjector([
            FaultRule("write", "eio", at=2)]))
        path = tmp_path / "x.bin"
        f = faultfs.fopen(path, "wb")
        f.write(b"one")  # write #1: fine
        with pytest.raises(OSError) as info:
            f.write(b"two")  # write #2: injected
        assert info.value.errno == errno.EIO
        f.write(b"three")  # rule exhausted (times=1)
        f.close()
        assert path.read_bytes() == b"onethree"

    def test_torn_write_keeps_prefix(self, tmp_path):
        faultfs.install(FaultInjector([
            FaultRule("write", "torn", at=1, keep=4)]))
        path = tmp_path / "x.bin"
        f = faultfs.fopen(path, "wb")
        with pytest.raises(OSError):
            f.write(b"abcdefgh")
        f.close()
        assert path.read_bytes() == b"abcd"

    def test_bitflip_read_changes_one_bit(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"\x00" * 8)
        faultfs.install(FaultInjector([
            FaultRule("read", "bitflip", at=1, bit=9)]))
        with faultfs.fopen(path, "rb") as f:
            data = f.read()
        assert data == b"\x00\x02" + b"\x00" * 6

    def test_short_read(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"0123456789")
        faultfs.install(FaultInjector([
            FaultRule("read", "short_read", at=1, keep=3)]))
        with faultfs.fopen(path, "rb") as f:
            assert f.read() == b"012"
            assert f.read(4) == b"3456"  # next read unaffected

    def test_path_substr_filters(self, tmp_path):
        faultfs.install(FaultInjector([
            FaultRule("write", "eio", path_substr="wal-", times=None)]))
        ok = faultfs.fopen(tmp_path / "data.bin", "wb")
        ok.write(b"x")  # not matched
        ok.close()
        bad = faultfs.fopen(tmp_path / "wal-000001.log", "ab")
        with pytest.raises(OSError):
            bad.write(b"x")
        bad.close()

    def test_fsync_noop_skips_sync(self, tmp_path):
        faultfs.install(FaultInjector([
            FaultRule("fsync", "fsync_noop", times=None)]))
        with faultfs.fopen(tmp_path / "x.bin", "wb") as f:
            f.write(b"x")
            faultfs.fsync(f)  # must not raise, must not crash

    def test_probability_is_seeded(self, tmp_path):
        def failures(seed):
            faultfs.install(FaultInjector(
                [FaultRule("write", "eio", probability=0.5, times=None)],
                seed=seed))
            f = faultfs.fopen(tmp_path / ("p%d.bin" % seed), "wb")
            out = []
            for i in range(20):
                try:
                    f.write(b"x")
                    out.append(False)
                except OSError:
                    out.append(True)
            f.close()
            return out

        assert failures(7) == failures(7)
        assert any(failures(7))
        assert not all(failures(7))

    def test_inject_checkpoint_counts_and_faults(self):
        injector = faultfs.install(FaultInjector([
            FaultRule("replace", "eio", at=1)]))
        with pytest.raises(OSError):
            faultfs.inject("replace", "/x/obs.json")
        faultfs.inject("replace", "/x/obs.json")  # exhausted
        assert injector.total_ops == 2
        assert injector.op_counts["replace"] == 2

    def test_fire_log_records_op_index(self, tmp_path):
        injector = faultfs.install(FaultInjector([
            FaultRule("write", "eio", at=2)]))
        f = faultfs.fopen(tmp_path / "x.bin", "wb")  # op 1: open
        f.write(b"a")                                # op 2: write #1
        with pytest.raises(OSError):
            f.write(b"b")                            # op 3: write #2
        f.close()
        assert [entry[0] for entry in injector.fire_log] == [3]


class TestRetryIo:
    def test_eventual_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        assert retry_io(flaky, attempts=4, sleep=lambda s: None) == "ok"
        assert len(calls) == 3

    def test_exhausted_reraises(self):
        def always():
            raise OSError(errno.EIO, "transient")

        with pytest.raises(OSError):
            retry_io(always, attempts=3, sleep=lambda s: None)

    def test_non_transient_not_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise OSError(errno.ENOENT, "gone")

        with pytest.raises(OSError):
            retry_io(fatal, attempts=5, sleep=lambda s: None)
        assert len(calls) == 1

    def test_non_oserror_not_retried(self):
        from repro.errors import CorruptFileError
        calls = []

        def corrupt():
            calls.append(1)
            raise CorruptFileError("bad crc")

        with pytest.raises(CorruptFileError):
            retry_io(corrupt, attempts=5, sleep=lambda s: None)
        assert len(calls) == 1

    def test_backoff_is_capped_exponential(self):
        sleeps = []

        def always():
            raise OSError(errno.EIO, "x")

        with pytest.raises(OSError):
            retry_io(always, attempts=5, base_delay=0.01, max_delay=0.03,
                     sleep=sleeps.append)
        assert sleeps == [0.01, 0.02, 0.03, 0.03]

    def test_on_retry_hook(self):
        seen = []

        def always():
            raise OSError(errno.EIO, "x")

        with pytest.raises(OSError):
            retry_io(always, attempts=3, sleep=lambda s: None,
                     on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [1, 2]
