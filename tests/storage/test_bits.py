"""Unit tests for the bit-level reader/writer."""

import pytest

from repro.errors import EncodingError
from repro.storage.encoding import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits_pack_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.to_bytes() == bytes([0b10110000])

    def test_write_bits_value(self):
        writer = BitWriter()
        writer.write_bits(0b1101, 4)
        writer.write_bits(0b0010, 4)
        assert writer.to_bytes() == bytes([0b11010010])

    def test_bit_length_tracks_partial_bytes(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13
        assert len(writer.to_bytes()) == 2

    def test_width_over_64_rejected(self):
        with pytest.raises(EncodingError):
            BitWriter().write_bits(0, 65)

    def test_zero_width_writes_nothing(self):
        writer = BitWriter()
        writer.write_bits(123, 0)
        assert writer.bit_length == 0

    def test_64_bit_value(self):
        writer = BitWriter()
        value = (1 << 63) | 1
        writer.write_bits(value, 64)
        reader = BitReader(writer.to_bytes())
        assert reader.read_bits(64) == value


class TestBitReader:
    def test_roundtrip_mixed_widths(self):
        writer = BitWriter()
        fields = [(1, 1), (0b101, 3), (0xABCD, 16), (0, 5), (0x3F, 6)]
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.to_bytes())
        for value, width in fields:
            assert reader.read_bits(width) == value

    def test_exhausted_stream_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EncodingError):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11
