"""Tile cache persistence: the CRC-framed sidecar, staleness fencing,
damage tolerance and fsck coverage.

The on-disk cache is *derived* data, so every failure mode here must
degrade to recomputation: warnings, truncation, silent staleness drops —
never an exception, never a stale tile served.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.core import M4LSMOperator, TiledM4Operator
from repro.core.tiles import TileCache, TileEntry
from repro.core.tiles_io import FILENAME, MAGIC, load_tiles, save_tiles
from repro.core.result import SpanAggregate
from repro.core.series import Point
from repro.storage import StorageConfig, StorageEngine, fsck_store

FP = {"series": {"s": [3, 7, 1, 2]}, "quarantine": []}


def span(t0):
    return SpanAggregate(first=Point(t0, 1.0), last=Point(t0 + 3, 2.0),
                         bottom=Point(t0 + 1, -4.5), top=Point(t0 + 2, 9.0))


def sample_snapshot():
    full = TileEntry.from_result(
        TileEntry((span(0), span(4), SpanAggregate(), span(12)),
                  ((5, 7),), 0))
    empty = TileEntry.from_result(TileEntry((SpanAggregate(),) * 4, (), 0))
    return [("s", 2, 0, full), ("s", 2, 1, empty), ("über", 0, -3, full)]


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = tmp_path / FILENAME
        snapshot = sample_snapshot()
        assert save_tiles(path, snapshot, FP, 4)
        entries, warnings = load_tiles(path, None, None)
        assert warnings == []
        assert entries == snapshot  # order, keys, spans, skipped, bytes

    def test_missing_file(self, tmp_path):
        assert load_tiles(tmp_path / FILENAME, FP, 4) == ([], [])

    def test_engine_restart_revives_tiles(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=100,
                               tile_cache_bytes=4 * 1024 * 1024,
                               tile_cache_spans=16,
                               tile_cache_persist=True)
        db = tmp_path / "db"
        engine = StorageEngine(db, config)
        engine.create_series("s")
        t = np.arange(1024, dtype=np.int64)
        engine.write_batch("s", t, np.sin(t / 5.0))
        engine.flush_all()
        expected = TiledM4Operator(engine).query("s", 0, 1024, 128)
        warmed = len(engine.tile_cache)
        assert warmed > 0
        engine.close()
        assert (db / FILENAME).exists()
        with StorageEngine(db, config) as reopened:
            assert len(reopened.tile_cache) == warmed
            # Revived tiles answer without recomputation and match.
            loads_before = reopened.stats.chunk_loads
            got = TiledM4Operator(reopened).query("s", 0, 1024, 128)
            assert got == expected
            # Only the edge runs (here: none, the range is whole tiles)
            # may touch chunks.
            assert reopened.stats.chunk_loads == loads_before

    def test_stale_series_dropped_after_offline_differs(self, tmp_path):
        """Reopening with *more data than the snapshot fingerprinted*
        must drop the revived tiles instead of serving stale answers."""
        config = StorageConfig(avg_series_point_number_threshold=100,
                               tile_cache_bytes=4 * 1024 * 1024,
                               tile_cache_spans=16,
                               tile_cache_persist=True)
        db = tmp_path / "db"
        engine = StorageEngine(db, config)
        engine.create_series("s")
        t = np.arange(1024, dtype=np.int64)
        engine.write_batch("s", t, np.sin(t / 5.0))
        engine.flush_all()
        TiledM4Operator(engine).query("s", 0, 1024, 128)
        engine.close()
        # Mutate the store with persistence off: tiles.cache stays put
        # but the fingerprint moves on.
        plain_config = StorageConfig(
            avg_series_point_number_threshold=100)
        with StorageEngine(db, plain_config) as writer:
            ts = np.arange(100, 200, dtype=np.int64)
            writer.write_batch("s", ts, ts * 100.0)
            writer.flush_all()
        with StorageEngine(db, config) as reopened:
            assert len(reopened.tile_cache) == 0  # all stale, dropped
            assert TiledM4Operator(reopened).query("s", 0, 1024, 128) \
                == M4LSMOperator(reopened).query("s", 0, 1024, 128)


class TestStalenessFencing:
    def test_per_series_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / FILENAME
        save_tiles(path, sample_snapshot(), FP, 4)
        moved = {"series": {"s": [4, 9, 1, 2]}, "quarantine": []}
        entries, warnings = load_tiles(path, moved, 4)
        assert warnings == []
        assert [e[0] for e in entries] == ["über"]  # only 's' was stale

    def test_quarantine_change_drops_everything(self, tmp_path):
        path = tmp_path / FILENAME
        save_tiles(path, sample_snapshot(), FP, 4)
        moved = dict(FP, quarantine=[["f.tsfile", 123]])
        assert load_tiles(path, moved, 4) == ([], [])

    def test_geometry_change_drops_everything(self, tmp_path):
        path = tmp_path / FILENAME
        save_tiles(path, sample_snapshot(), FP, 4)
        entries, warnings = load_tiles(path, FP, 8)
        assert entries == []
        assert any("geometry" in w for w in warnings)


class TestDamage:
    def write(self, tmp_path):
        path = tmp_path / FILENAME
        save_tiles(path, sample_snapshot(), FP, 4)
        return path

    def test_torn_tail_keeps_prefix(self, tmp_path):
        path = self.write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        entries, warnings = load_tiles(path, FP, 4)
        assert len(entries) == 2            # last record lost
        assert any("torn tail" in w for w in warnings)

    def test_crc_flip_truncates_from_there(self, tmp_path):
        path = self.write(tmp_path)
        data = bytearray(path.read_bytes())
        # Find the second tile record and flip a payload byte: the
        # manifest and first tile survive, the rest is dropped.
        pos = len(MAGIC)
        for _ in range(2):                  # skip manifest + tile 0
            (length,) = struct.unpack_from("<I", data, pos)
            pos += 4 + length + 4
        data[pos + 4 + 5] ^= 0x01
        path.write_bytes(bytes(data))
        entries, warnings = load_tiles(path, FP, 4)
        assert len(entries) == 1
        assert any("checksum mismatch" in w for w in warnings)

    def test_bad_magic_ignores_file(self, tmp_path):
        path = self.write(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        entries, warnings = load_tiles(path, FP, 4)
        assert entries == []
        assert any("bad magic" in w for w in warnings)

    def test_absurd_length_stops_scan(self, tmp_path):
        path = self.write(tmp_path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, len(MAGIC), 1 << 30)
        path.write_bytes(bytes(data))
        entries, warnings = load_tiles(path, FP, 4)
        assert entries == []
        assert any("absurd record length" in w for w in warnings)

    def test_valid_crc_but_garbage_payload(self, tmp_path):
        """A record whose CRC passes but whose body does not parse is
        an undecodable-tile warning, not a crash."""
        path = self.write(tmp_path)
        payload = b"\x00\x05abc"            # name runs past the record
        path.write_bytes(
            path.read_bytes()
            + struct.pack("<I", len(payload)) + payload
            + struct.pack("<I", zlib.crc32(payload)))
        entries, warnings = load_tiles(path, None, None)
        assert len(entries) == 3            # the healthy prefix
        assert any("undecodable tile record" in w for w in warnings)


class TestFsck:
    @pytest.fixture
    def persisted_store(self, tmp_path):
        config = StorageConfig(avg_series_point_number_threshold=100,
                               tile_cache_bytes=4 * 1024 * 1024,
                               tile_cache_spans=16,
                               tile_cache_persist=True)
        db = tmp_path / "db"
        with StorageEngine(db, config) as engine:
            engine.create_series("s")
            t = np.arange(1024, dtype=np.int64)
            engine.write_batch("s", t, np.cos(t / 3.0))
            engine.flush_all()
            TiledM4Operator(engine).query("s", 0, 1024, 128)
        return db

    def test_clean_snapshot_stays_clean(self, persisted_store):
        report = fsck_store(persisted_store)
        assert report.clean
        assert not report.warnings

    def test_damage_is_a_warning_never_an_error(self, persisted_store):
        path = persisted_store / FILENAME
        path.write_bytes(path.read_bytes()[:-5])
        report = fsck_store(persisted_store)
        assert report.clean                  # warnings don't fail fsck
        assert any(w["file"] == FILENAME and "torn tail" in w["issue"]
                   for w in report.warnings)
