"""Unit tests for versions, config and I/O stats."""

import pytest

from repro.storage import IoStats, StorageConfig, VersionAllocator
from repro.storage.encoding import Compression, Encoding
from repro.storage.versions import VERSION_INFINITY


class TestVersionAllocator:
    def test_strictly_increasing_from_one(self):
        alloc = VersionAllocator()
        assert [alloc.next() for _ in range(3)] == [1, 2, 3]
        assert alloc.last == 3

    def test_custom_start(self):
        alloc = VersionAllocator(start=10)
        assert alloc.last == 9
        assert alloc.next() == 10

    def test_infinity_beats_everything(self):
        alloc = VersionAllocator()
        for _ in range(100):
            assert alloc.next() < VERSION_INFINITY


class TestStorageConfig:
    def test_defaults_match_table4(self):
        config = StorageConfig()
        assert config.avg_series_point_number_threshold == 1000
        assert not config.enable_compaction
        assert config.time_encoding == Encoding.TS_2DIFF

    def test_page_clamped_to_chunk_size(self):
        config = StorageConfig(avg_series_point_number_threshold=10,
                               points_per_page=100)
        assert config.points_per_page == 10

    @pytest.mark.parametrize("kwargs", [
        {"avg_series_point_number_threshold": 0},
        {"points_per_page": -1},
        {"chunks_per_tsfile": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StorageConfig(**kwargs)

    def test_compression_option(self):
        config = StorageConfig(compression=Compression.ZLIB)
        assert config.compression == Compression.ZLIB


class TestIoStats:
    def test_reset(self):
        stats = IoStats(chunk_loads=5, bytes_read=100)
        stats.reset()
        assert stats.chunk_loads == 0 and stats.bytes_read == 0

    def test_snapshot_is_independent(self):
        stats = IoStats()
        snap = stats.snapshot()
        stats.chunk_loads += 3
        assert snap.chunk_loads == 0

    def test_diff(self):
        stats = IoStats()
        snap = stats.snapshot()
        stats.pages_decoded += 7
        stats.bytes_read += 42
        diff = stats.diff(snap)
        assert diff.pages_decoded == 7 and diff.bytes_read == 42
        assert diff.chunk_loads == 0

    def test_add(self):
        total = IoStats(chunk_loads=1) + IoStats(chunk_loads=2,
                                                 index_lookups=5)
        assert total.chunk_loads == 3 and total.index_lookups == 5

    def test_as_dict_keys(self):
        keys = set(IoStats().as_dict())
        assert {"metadata_reads", "chunk_loads", "pages_decoded",
                "points_decoded", "points_merged", "bytes_read",
                "index_lookups", "candidate_iterations",
                "cache_hits", "cache_misses"} == keys
