"""Unit tests for the memtable write buffer."""

import numpy as np

from repro.storage import MemTable


class TestAppend:
    def test_single_points(self):
        table = MemTable()
        table.append(5, 1.0)
        table.append(3, 2.0)
        assert len(table) == 2 and bool(table)

    def test_batch(self):
        table = MemTable()
        table.append_batch([1, 2, 3], [1.0, 2.0, 3.0])
        assert len(table) == 3

    def test_empty_batch_noop(self):
        table = MemTable()
        table.append_batch([], [])
        assert len(table) == 0 and not table


class TestDrain:
    def test_sorts_by_time(self):
        table = MemTable()
        table.append_batch([30, 10, 20], [3.0, 1.0, 2.0])
        t, v = table.drain()
        assert t.tolist() == [10, 20, 30]
        assert v.tolist() == [1.0, 2.0, 3.0]
        assert len(table) == 0

    def test_last_write_wins_on_duplicates(self):
        table = MemTable()
        table.append(5, 1.0)
        table.append(5, 2.0)
        table.append_batch([5, 6], [3.0, 6.0])
        t, v = table.drain()
        assert t.tolist() == [5, 6]
        assert v.tolist() == [3.0, 6.0]

    def test_duplicate_within_batch_last_wins(self):
        table = MemTable()
        table.append_batch([7, 7, 7], [1.0, 2.0, 3.0])
        t, v = table.drain()
        assert t.tolist() == [7] and v.tolist() == [3.0]

    def test_drain_empty(self):
        t, v = MemTable().drain()
        assert t.size == 0 and v.size == 0
        assert t.dtype == np.int64 and v.dtype == np.float64


class TestDrainPrefix:
    def test_keeps_remainder_buffered(self):
        table = MemTable()
        table.append_batch([4, 1, 3, 2, 5], np.arange(5, dtype=float))
        t, _v = table.drain_prefix(3)
        assert t.tolist() == [1, 2, 3]
        assert len(table) == 2
        t2, _ = table.drain()
        assert t2.tolist() == [4, 5]

    def test_prefix_larger_than_content_drains_all(self):
        table = MemTable()
        table.append_batch([2, 1], [1.0, 2.0])
        t, _ = table.drain_prefix(10)
        assert t.tolist() == [1, 2]
        assert len(table) == 0

    def test_dedupe_happens_before_cut(self):
        table = MemTable()
        table.append_batch([1, 1, 2, 3], [1.0, 9.0, 2.0, 3.0])
        t, v = table.drain_prefix(2)
        assert t.tolist() == [1, 2]
        assert v.tolist() == [9.0, 2.0]
