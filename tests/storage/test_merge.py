"""Unit tests for the merge function M(C, D) (Definition 2.7)."""

import numpy as np
import pytest

from repro.storage import Delete, DeleteList, merge_arrays, merge_reference


def chunk(times, values, version):
    return (np.array(times, dtype=np.int64),
            np.array(values, dtype=np.float64), version)


class TestMergeArrays:
    def test_disjoint_chunks_concatenate(self):
        t, v = merge_arrays([chunk([1, 2], [1, 2], 1),
                             chunk([3, 4], [3, 4], 2)])
        assert t.tolist() == [1, 2, 3, 4]
        assert v.tolist() == [1, 2, 3, 4]

    def test_overwrite_takes_higher_version(self):
        t, v = merge_arrays([chunk([1, 2, 3], [1, 2, 3], 1),
                             chunk([2], [99], 2)])
        assert t.tolist() == [1, 2, 3]
        assert v.tolist() == [1, 99, 3]

    def test_overwrite_order_independent_of_input_order(self):
        a = chunk([2], [99], 2)
        b = chunk([1, 2, 3], [1, 2, 3], 1)
        t1, v1 = merge_arrays([a, b])
        t2, v2 = merge_arrays([b, a])
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(v1, v2)

    def test_delete_applies_to_older_chunks_only(self):
        deletes = DeleteList([Delete(2, 3, 2)])
        t, v = merge_arrays([chunk([1, 2, 3], [1, 2, 3], 1),
                             chunk([3], [33], 3)], deletes)
        assert t.tolist() == [1, 3]
        assert v.tolist() == [1, 33]

    def test_paper_example_figure5(self):
        # C1 (v1), D2 deletes P_C, C3 (v3) overwrites P_A: 11 points remain
        # out of 13 raw points (one overwritten, one deleted).
        c1 = chunk([10, 20, 30, 40, 50, 60, 70, 80, 85],
                   [1, 2, 3, 4, 5, 6, 7, 8, 8.5], 1)
        c3 = chunk([45, 50, 55, 90], [14, 15, 16, 19], 3)
        deletes = DeleteList([Delete(60, 60, 2)])
        t, v = merge_arrays([c1, c3], deletes)
        assert t.size == 11
        assert 60 not in t.tolist()          # P_C deleted by D2
        assert v[t.tolist().index(50)] == 15  # P_A overwritten by P_B

    def test_empty_inputs(self):
        t, v = merge_arrays([])
        assert t.size == 0 and v.size == 0
        t, v = merge_arrays([chunk([], [], 1)])
        assert t.size == 0

    def test_everything_deleted(self):
        deletes = DeleteList([Delete(0, 100, 5)])
        t, _v = merge_arrays([chunk([1, 2], [1, 2], 1)], deletes)
        assert t.size == 0

    def test_three_way_overwrite(self):
        t, v = merge_arrays([chunk([5], [1], 1), chunk([5], [2], 2),
                             chunk([5], [3], 3)])
        assert t.tolist() == [5] and v.tolist() == [3]

    def test_accepts_plain_iterable_of_deletes(self):
        t, _v = merge_arrays([chunk([1, 2], [1, 2], 1)], [Delete(1, 1, 2)])
        assert t.tolist() == [2]


class TestMergeReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_vectorized_on_random_workloads(self, seed):
        rng = np.random.default_rng(seed)
        chunks = []
        for version in range(1, int(rng.integers(2, 6))):
            n = int(rng.integers(1, 40))
            t = np.sort(rng.choice(100, size=n, replace=False))
            chunks.append(chunk(t, rng.integers(0, 50, n), version))
        deletes = DeleteList([
            Delete(int(lo), int(lo + rng.integers(0, 20)), 100 + i)
            for i, lo in enumerate(rng.integers(0, 90, 3))])
        ref_t, ref_v = merge_reference(chunks, deletes)
        vec_t, vec_v = merge_arrays(chunks, deletes)
        np.testing.assert_array_equal(ref_t, vec_t)
        np.testing.assert_array_equal(ref_v, vec_v)

    def test_delete_between_versions(self):
        # Delete v2 kills the v1 point but not the v3 re-insert.
        chunks = [chunk([5], [1], 1), chunk([5], [3], 3)]
        deletes = DeleteList([Delete(5, 5, 2)])
        t, v = merge_reference(chunks, deletes)
        assert t.tolist() == [5] and v.tolist() == [3]
