"""Unit tests for page metadata, chunk writing and chunk metadata."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import (
    Compression,
    Encoding,
    PageMetadata,
    Statistics,
    StorageConfig,
    split_rows,
    write_chunk,
)
from repro.storage.chunk import ChunkMetadata
from repro.storage.encoding import decode_page


def make_arrays(n=250, step=10):
    t = np.arange(n, dtype=np.int64) * step
    v = np.sin(t / 50.0) * 10
    return t, v


class TestSplitRows:
    def test_even_split(self):
        assert list(split_rows(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert list(split_rows(5, 2)) == [(0, 2), (2, 4), (4, 5)]

    def test_single_page(self):
        assert list(split_rows(3, 100)) == [(0, 3)]

    def test_bad_page_size(self):
        with pytest.raises(StorageError):
            list(split_rows(5, 0))


class TestWriteChunk:
    def test_page_directory_layout(self):
        t, v = make_arrays(250)
        config = StorageConfig(avg_series_point_number_threshold=1000,
                               points_per_page=100)
        block, meta = write_chunk(1, 7, t, v, config)
        assert len(meta.pages) == 3
        assert [p.first_row for p in meta.pages] == [0, 100, 200]
        assert [p.n_points for p in meta.pages] == [100, 100, 50]
        assert meta.version == 7
        assert meta.n_points == 250
        # Page payloads tile the data block exactly.
        total = sum(p.time_length + p.value_length for p in meta.pages)
        assert total == len(block)

    def test_statistics_match_arrays(self):
        t, v = make_arrays()
        _block, meta = write_chunk(1, 1, t, v)
        assert meta.statistics == Statistics.from_arrays(t, v)
        assert meta.start_time == int(t[0])
        assert meta.end_time == int(t[-1])

    def test_payloads_decode(self):
        t, v = make_arrays(120)
        config = StorageConfig(avg_series_point_number_threshold=1000,
                               points_per_page=50)
        block, meta = write_chunk(1, 1, t, v, config)
        page = meta.pages[1]
        time_payload = block[page.time_offset:
                             page.time_offset + page.time_length]
        out = decode_page(time_payload, meta.time_encoding, meta.compression)
        np.testing.assert_array_equal(out, t[50:100])

    def test_index_built_by_default(self):
        t, v = make_arrays()
        _block, meta = write_chunk(1, 1, t, v)
        regression = meta.step_regression()
        assert regression is not None
        assert regression.n_points == t.size

    def test_index_disabled(self):
        t, v = make_arrays()
        config = StorageConfig(build_chunk_index=False)
        _block, meta = write_chunk(1, 1, t, v, config)
        assert meta.step_regression() is None

    def test_empty_chunk_rejected(self):
        with pytest.raises(StorageError):
            write_chunk(1, 1, np.empty(0, dtype=np.int64), np.empty(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            write_chunk(1, 1, np.array([1], dtype=np.int64),
                        np.array([1.0, 2.0]))

    def test_single_point_chunk(self):
        _block, meta = write_chunk(1, 1, np.array([5], dtype=np.int64),
                                   np.array([2.5]))
        assert meta.n_points == 1
        assert meta.step_regression() is None  # needs >= 2 points


class TestChunkMetadataSerialization:
    @pytest.fixture
    def meta(self):
        t, v = make_arrays(130)
        config = StorageConfig(avg_series_point_number_threshold=1000,
                               points_per_page=60,
                               value_encoding=Encoding.GORILLA,
                               compression=Compression.ZLIB)
        _block, meta = write_chunk(3, 11, t, v, config)
        return meta.located("/tmp/f.tsfile", 4096, 999)

    def test_roundtrip(self, meta):
        out, offset = ChunkMetadata.from_bytes(meta.to_bytes(),
                                               file_path=meta.file_path)
        assert offset == len(meta.to_bytes())
        assert out == meta

    def test_roundtrip_preserves_codecs(self, meta):
        out, _ = ChunkMetadata.from_bytes(meta.to_bytes())
        assert out.value_encoding == Encoding.GORILLA
        assert out.compression == Compression.ZLIB

    def test_located_fields(self, meta):
        assert meta.file_path == "/tmp/f.tsfile"
        assert meta.data_offset == 4096
        assert meta.data_length == 999

    def test_truncated_raises(self, meta):
        with pytest.raises(StorageError):
            ChunkMetadata.from_bytes(meta.to_bytes()[:10])

    def test_page_helpers(self, meta):
        assert meta.page_row_starts().tolist() == [0, 60, 120]
        starts = meta.page_start_times()
        assert starts[0] == meta.start_time
        assert starts.size == 3


class TestPageMetadata:
    def test_roundtrip(self):
        stats = Statistics.from_arrays([1, 2], [5.0, -1.0])
        page = PageMetadata(stats, 40, 100, 20, 120, 36)
        out, offset = PageMetadata.from_bytes(page.to_bytes())
        assert out == page
        assert offset == PageMetadata.SERIALIZED_SIZE

    def test_truncated_raises(self):
        stats = Statistics.from_arrays([1], [1.0])
        page = PageMetadata(stats, 0, 0, 8, 8, 8)
        with pytest.raises(StorageError):
            PageMetadata.from_bytes(page.to_bytes()[:-4])
