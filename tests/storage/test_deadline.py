"""Cooperative deadline propagation through the query stack."""

import time

import pytest

from repro.core.m4 import M4UDFOperator
from repro.core.m4lsm import M4LSMOperator
from repro.errors import DeadlineExceededError
from repro.storage import StorageConfig, StorageEngine
from repro.storage.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.storage.parallel import ChunkPipeline


class TestDeadline:
    def test_remaining_and_expired(self):
        fresh = Deadline(30.0)
        assert not fresh.expired()
        assert 0 < fresh.remaining() <= 30.0
        fresh.check()  # no raise

        spent = Deadline(-1.0)
        assert spent.expired()
        assert spent.remaining() < 0
        with pytest.raises(DeadlineExceededError):
            spent.check()

    def test_check_deadline_is_noop_without_scope(self):
        assert current_deadline() is None
        check_deadline()  # must not raise on hot paths

    def test_scope_installs_and_restores(self):
        outer = Deadline(30.0)
        inner = Deadline(10.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
            with deadline_scope(None):  # no-op scope keeps the outer
                assert current_deadline() is outer
        assert current_deadline() is None

    def test_expired_scope_raises_at_checkpoint(self):
        with deadline_scope(Deadline(-1.0)):
            with pytest.raises(DeadlineExceededError):
                check_deadline()


class TestPipelineCancellation:
    def test_map_ordered_aborts_parallel_fanout(self):
        with ChunkPipeline(workers=2) as pipeline:
            with deadline_scope(Deadline(0.05)):
                with pytest.raises(DeadlineExceededError):
                    pipeline.map_ordered(
                        lambda i: time.sleep(0.05) or i, list(range(20)))

    def test_serial_map_aborts(self):
        from repro.storage.parallel import serial_map
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(DeadlineExceededError):
                serial_map(lambda i: time.sleep(0.05) or i,
                           list(range(20)))

    def test_map_ordered_aborts_after_shutdown_fallback(self):
        pipeline = ChunkPipeline(workers=2)
        pipeline.shutdown()  # maps now run serially
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(DeadlineExceededError):
                pipeline.map_ordered(lambda i: time.sleep(0.05) or i,
                                     list(range(20)))

    def test_map_ordered_unaffected_without_deadline(self):
        with ChunkPipeline(workers=2) as pipeline:
            assert pipeline.map_ordered(lambda i: i + 1,
                                        list(range(8))) == list(range(1, 9))

    def test_worker_threads_see_the_deadline(self):
        seen = []
        deadline = Deadline(30.0)
        with ChunkPipeline(workers=2) as pipeline:
            with deadline_scope(deadline):
                pipeline.map_ordered(
                    lambda i: seen.append(current_deadline()), [0, 1, 2])
        assert seen == [deadline] * 3


@pytest.mark.parametrize("parallelism", [1, 4])
class TestQueryCancellation:
    def _loaded(self, tmp_path, parallelism, n=800):
        import numpy as np
        engine = StorageEngine(
            tmp_path / "db",
            StorageConfig(avg_series_point_number_threshold=50,
                          points_per_page=20, parallelism=parallelism))
        t = np.arange(n, dtype=np.int64) * 10
        v = np.round(np.random.default_rng(0).normal(0.0, 10.0, n), 3)
        engine.create_series("s")
        engine.write_batch("s", t, v)
        engine.flush_all()
        return engine

    def test_m4lsm_aborts_on_expired_deadline(self, tmp_path, parallelism):
        with self._loaded(tmp_path, parallelism) as engine:
            operator = M4LSMOperator(engine)
            assert operator.query("s", 0, 8000, 20).spans  # sane baseline
            with deadline_scope(Deadline(-1.0)):
                with pytest.raises(DeadlineExceededError):
                    operator.query("s", 0, 8000, 20)

    def test_m4udf_aborts_on_expired_deadline(self, tmp_path, parallelism):
        with self._loaded(tmp_path, parallelism) as engine:
            with deadline_scope(Deadline(-1.0)):
                with pytest.raises(DeadlineExceededError):
                    M4UDFOperator(engine).query("s", 0, 8000, 20)
