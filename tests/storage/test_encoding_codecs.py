"""Unit tests for the page codecs: PLAIN, TS_2DIFF, RLE, GORILLA."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.storage.encoding import (
    Compression,
    Encoding,
    decode_gorilla,
    decode_page,
    decode_plain,
    decode_rle,
    decode_ts2diff,
    encode_gorilla,
    encode_page,
    encode_plain,
    encode_rle,
    encode_ts2diff,
    pack_uint64,
    run_length_split,
    unpack_uint64,
)


class TestPlain:
    @pytest.mark.parametrize("dtype", ["<i8", "<f8", "<i4", "<f4"])
    def test_roundtrip_dtypes(self, dtype):
        arr = np.array([1, -2, 3, 0], dtype=dtype)
        out = decode_plain(encode_plain(arr))
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    def test_empty(self):
        out = decode_plain(encode_plain(np.empty(0, dtype=np.float64)))
        assert out.size == 0

    def test_nan_and_inf_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0])
        out = decode_plain(encode_plain(arr))
        np.testing.assert_array_equal(out, arr)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(EncodingError):
            encode_plain(np.array(["a"], dtype=object))

    def test_truncated_raises(self):
        data = encode_plain(np.arange(10, dtype=np.int64))
        with pytest.raises(EncodingError):
            decode_plain(data[:12])

    def test_header_too_short_raises(self):
        with pytest.raises(EncodingError):
            decode_plain(b"\x00\x01")


class TestBitPacking:
    @pytest.mark.parametrize("width", [0, 1, 3, 7, 8, 13, 33, 64])
    def test_roundtrip_widths(self, width):
        rng = np.random.default_rng(width)
        if width == 0:
            values = np.zeros(17, dtype=np.uint64)
        elif width == 64:
            values = rng.integers(0, 2 ** 63, 17).astype(np.uint64)
        else:
            values = rng.integers(0, 2 ** width, 17).astype(np.uint64)
        packed = pack_uint64(values, width)
        out = unpack_uint64(packed, values.size, width)
        np.testing.assert_array_equal(out, values)

    def test_truncated_payload_raises(self):
        packed = pack_uint64(np.arange(10, dtype=np.uint64), 8)
        with pytest.raises(EncodingError):
            unpack_uint64(packed[:4], 10, 8)


class TestTs2Diff:
    def test_regular_timestamps_compress_hard(self):
        t = np.arange(1000, dtype=np.int64) * 9000
        encoded = encode_ts2diff(t)
        assert len(encoded) < 40  # constant deltas: width 0
        np.testing.assert_array_equal(decode_ts2diff(encoded), t)

    def test_irregular_roundtrip(self):
        rng = np.random.default_rng(1)
        t = np.cumsum(rng.integers(1, 10_000, 777)).astype(np.int64)
        np.testing.assert_array_equal(decode_ts2diff(encode_ts2diff(t)), t)

    def test_negative_deltas_roundtrip(self):
        arr = np.array([100, 50, 75, -20, 0], dtype=np.int64)
        np.testing.assert_array_equal(decode_ts2diff(encode_ts2diff(arr)),
                                      arr)

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_arrays(self, n):
        arr = np.arange(n, dtype=np.int64) * 7 + 3
        np.testing.assert_array_equal(decode_ts2diff(encode_ts2diff(arr)),
                                      arr)

    def test_extreme_values(self):
        arr = np.array([-(2 ** 62), 2 ** 62], dtype=np.int64)
        np.testing.assert_array_equal(decode_ts2diff(encode_ts2diff(arr)),
                                      arr)

    def test_2d_rejected(self):
        with pytest.raises(EncodingError):
            encode_ts2diff(np.zeros((2, 2), dtype=np.int64))

    def test_truncated_raises(self):
        data = encode_ts2diff(np.arange(100, dtype=np.int64) * 13)
        with pytest.raises(EncodingError):
            decode_ts2diff(data[:6])


class TestRle:
    def test_run_length_split(self):
        values, lengths = run_length_split(np.array([5, 5, 7, 7, 7, 5]))
        assert values.tolist() == [5, 7, 5]
        assert lengths.tolist() == [2, 3, 1]

    def test_constant_column_is_one_run(self):
        arr = np.full(10_000, 3.25)
        encoded = encode_rle(arr)
        assert len(encoded) < 40
        np.testing.assert_array_equal(decode_rle(encoded), arr)

    def test_no_runs_roundtrip(self):
        arr = np.arange(100, dtype=np.float64)
        np.testing.assert_array_equal(decode_rle(encode_rle(arr)), arr)

    def test_nan_runs_stay_together(self):
        arr = np.array([1.0, np.nan, np.nan, 2.0])
        out = decode_rle(encode_rle(arr))
        np.testing.assert_array_equal(out, arr)

    def test_empty(self):
        out = decode_rle(encode_rle(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_int_roundtrip(self):
        arr = np.repeat(np.array([9, -9, 0], dtype=np.int64), [3, 1, 5])
        np.testing.assert_array_equal(decode_rle(encode_rle(arr)), arr)


class TestGorilla:
    def test_slowly_varying_roundtrip(self):
        rng = np.random.default_rng(2)
        arr = np.cumsum(rng.normal(0, 0.01, 500)) + 100.0
        np.testing.assert_array_equal(decode_gorilla(encode_gorilla(arr)),
                                      arr)

    def test_constant_column_compresses(self):
        arr = np.full(1000, 42.0)
        encoded = encode_gorilla(arr)
        assert len(encoded) < 200
        np.testing.assert_array_equal(decode_gorilla(encoded), arr)

    def test_adversarial_bit_patterns(self):
        arr = np.array([0.0, -0.0, np.inf, -np.inf, 1e-308, 1e308,
                        np.pi, -np.pi, 0.1, 0.1])
        np.testing.assert_array_equal(decode_gorilla(encode_gorilla(arr)),
                                      arr)

    def test_nan_roundtrip(self):
        arr = np.array([1.0, np.nan, 2.0])
        out = decode_gorilla(encode_gorilla(arr))
        assert np.isnan(out[1]) and out[0] == 1.0 and out[2] == 2.0

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_arrays(self, n):
        arr = np.linspace(0, 1, n)
        np.testing.assert_array_equal(decode_gorilla(encode_gorilla(arr)),
                                      arr)


class TestRegistry:
    @pytest.mark.parametrize("encoding", list(Encoding))
    @pytest.mark.parametrize("compression", list(Compression))
    def test_roundtrip_all_combinations(self, encoding, compression):
        if encoding == Encoding.TS_2DIFF:
            arr = np.arange(200, dtype=np.int64) * 5 + 7
        else:
            arr = np.linspace(-5, 5, 200)
        payload = encode_page(arr, encoding, compression)
        out = decode_page(payload, encoding, compression)
        np.testing.assert_array_equal(out, arr)

    def test_zlib_shrinks_redundant_data(self):
        arr = np.zeros(10_000, dtype=np.float64)
        plain = encode_page(arr, Encoding.PLAIN, Compression.NONE)
        packed = encode_page(arr, Encoding.PLAIN, Compression.ZLIB)
        assert len(packed) < len(plain) / 10

    def test_unknown_encoding_rejected(self):
        with pytest.raises(EncodingError):
            encode_page(np.zeros(3), 99)
        with pytest.raises(EncodingError):
            decode_page(b"", 99)

    def test_corrupt_zlib_raises(self):
        with pytest.raises(EncodingError):
            decode_page(b"not zlib", Encoding.PLAIN, Compression.ZLIB)
