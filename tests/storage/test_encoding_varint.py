"""Unit tests for LEB128 varints and zigzag mapping."""

import pytest

from repro.errors import EncodingError
from repro.storage.encoding import (
    encode_signed,
    encode_unsigned,
    read_signed_varint,
    read_unsigned_varint,
    write_signed_varint,
    write_unsigned_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestZigzag:
    def test_small_values_map_to_small_codes(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2 ** 40, -(2 ** 40),
                                       2 ** 62, -(2 ** 62)])
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value


class TestUnsignedVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 21,
                                       2 ** 35, 2 ** 63 - 1])
    def test_roundtrip(self, value):
        data = encode_unsigned(value)
        decoded, offset = read_unsigned_varint(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_single_byte_below_128(self):
        assert len(encode_unsigned(127)) == 1
        assert len(encode_unsigned(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_unsigned(-1)

    def test_truncated_stream_raises(self):
        data = bytes([0x80])  # continuation bit set, nothing follows
        with pytest.raises(EncodingError):
            read_unsigned_varint(data, 0)

    def test_overlong_stream_raises(self):
        data = bytes([0x80] * 11)
        with pytest.raises(EncodingError):
            read_unsigned_varint(data, 0)

    def test_sequence_of_values(self):
        buffer = bytearray()
        values = [5, 0, 300, 2 ** 30]
        for value in values:
            write_unsigned_varint(value, buffer)
        offset = 0
        out = []
        for _ in values:
            value, offset = read_unsigned_varint(bytes(buffer), offset)
            out.append(value)
        assert out == values


class TestSignedVarint:
    @pytest.mark.parametrize("value", [0, -1, 1, -1000, 1000,
                                       -(2 ** 45), 2 ** 45])
    def test_roundtrip(self, value):
        data = encode_signed(value)
        decoded, _ = read_signed_varint(data, 0)
        assert decoded == value

    def test_interleaved_with_unsigned(self):
        buffer = bytearray()
        write_signed_varint(-42, buffer)
        write_unsigned_varint(42, buffer)
        value, offset = read_signed_varint(bytes(buffer), 0)
        assert value == -42
        value, _ = read_unsigned_varint(bytes(buffer), offset)
        assert value == 42
