"""Unit tests for the mods (delete log) file."""

import pytest

from repro.errors import CorruptFileError
from repro.storage import Delete
from repro.storage.mods import ModsFile


class TestModsFile:
    def test_append_and_read(self, tmp_path):
        mods = ModsFile(tmp_path / "d.mods")
        mods.append(1, Delete(10, 20, 3))
        mods.append(2, Delete(0, 5, 4))
        records = list(mods.read_all())
        assert records == [(1, Delete(10, 20, 3)), (2, Delete(0, 5, 4))]

    def test_empty_log(self, tmp_path):
        mods = ModsFile(tmp_path / "d.mods")
        assert list(mods.read_all()) == []

    def test_reopen_preserves_records(self, tmp_path):
        path = tmp_path / "d.mods"
        ModsFile(path).append(1, Delete(1, 2, 1))
        reopened = ModsFile(path)
        reopened.append(1, Delete(3, 4, 2))
        assert len(list(reopened.read_all())) == 2

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.mods"
        path.write_bytes(b"garbage!")
        with pytest.raises(CorruptFileError):
            list(ModsFile(path).read_all())

    def test_torn_tail_keeps_prior_records(self, tmp_path):
        path = tmp_path / "d.mods"
        mods = ModsFile(path)
        mods.append(1, Delete(1, 2, 1))
        mods.append(2, Delete(3, 4, 2))
        path.write_bytes(path.read_bytes()[:-3])
        assert list(ModsFile(path).read_all()) == [(1, Delete(1, 2, 1))]
        # repair truncated the torn bytes: a re-read is clean
        assert list(ModsFile(path).read_all()) == [(1, Delete(1, 2, 1))]

    def test_bad_crc_raises(self, tmp_path):
        path = tmp_path / "d.mods"
        mods = ModsFile(path)
        mods.append(1, Delete(1, 2, 1))
        data = bytearray(path.read_bytes())
        data[len(data) - 10] ^= 0x01  # inside the record payload
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptFileError):
            list(ModsFile(path).read_all())
