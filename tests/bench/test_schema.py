"""Unit tests for the versioned bench-artifact schema."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SchemaError,
    load_artifact,
    new_artifact,
    validate_artifact,
    write_artifact,
)
from repro.bench.schema import META_FIELDS, artifact_meta, machine_id


def matrix_row(cell_id="card=1;ov=0;del=0;op=m4lsm;par=1;tiles=off",
               gate=True, p50=0.01, chunk_loads=10):
    return {
        "id": cell_id,
        "config": {"dataset": "MF03"},
        "gate": gate,
        "repeats": 3,
        "wall": {"p50_seconds": p50, "p99_seconds": p50 * 1.2,
                 "samples": [p50, p50 * 1.1, p50 * 1.2]},
        "io": {"chunk_loads": chunk_loads, "pages_decoded": 40,
               "points_decoded": 4000, "bytes_read": 65536,
               "index_lookups": 12},
        "identity": {"checked": True, "equal": True},
    }


def matrix_doc(rows=None, **meta_extra):
    return new_artifact("matrix", rows or [matrix_row()], 4000,
                        **meta_extra)


class TestValidate:
    def test_fresh_artifact_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        doc = matrix_doc()
        write_artifact(str(path), doc)
        loaded = load_artifact(str(path), kind="matrix")
        assert loaded["schema"] == SCHEMA_VERSION
        assert [r["id"] for r in loaded["rows"]] \
            == [r["id"] for r in doc["rows"]]

    def test_returns_doc_for_chaining(self):
        doc = matrix_doc()
        assert validate_artifact(doc) is doc

    def test_pre_schema_artifact_names_the_converter(self):
        with pytest.raises(SchemaError) as exc:
            validate_artifact({"rows": [matrix_row()]})
        assert "convert_bench_artifacts" in str(exc.value)

    def test_wrong_version_rejected(self):
        doc = matrix_doc()
        doc["schema"] = "repro-bench/99"
        with pytest.raises(SchemaError):
            validate_artifact(doc)

    def test_unknown_kind_rejected(self):
        doc = matrix_doc()
        doc["kind"] = "turbo"
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert "matrix" in str(exc.value)

    @pytest.mark.parametrize("field", sorted(META_FIELDS))
    def test_each_missing_meta_field_rejected(self, field):
        doc = matrix_doc()
        del doc["meta"][field]
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert field in str(exc.value)

    @pytest.mark.parametrize("field", ["id", "config", "gate", "repeats",
                                       "wall", "io", "identity"])
    def test_each_missing_row_field_rejected(self, field):
        row = matrix_row()
        del row[field]
        doc = matrix_doc()
        doc["rows"] = [row]
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert ("%r" % field) in str(exc.value)

    def test_bool_never_passes_as_number(self):
        doc = matrix_doc()
        doc["meta"]["cpu_count"] = True
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert "bool" in str(exc.value)

    def test_empty_samples_rejected(self):
        row = matrix_row()
        row["wall"]["samples"] = []
        doc = matrix_doc()
        doc["rows"] = [row]
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert "samples" in str(exc.value)

    def test_duplicate_cell_ids_rejected(self):
        doc = matrix_doc()
        doc["rows"] = [matrix_row(), matrix_row()]
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc)
        assert "duplicate" in str(exc.value)

    def test_empty_rows_rejected(self):
        doc = matrix_doc()
        doc["rows"] = []
        with pytest.raises(SchemaError):
            validate_artifact(doc)

    def test_errors_fit_on_one_line(self):
        doc = matrix_doc()
        del doc["meta"]["git_sha"]
        with pytest.raises(SchemaError) as exc:
            validate_artifact(doc, path="x.json")
        message = str(exc.value)
        assert "\n" not in message and message.startswith("x.json:")


class TestLoadWrite:
    def test_not_json_is_a_one_line_schema_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SchemaError) as exc:
            load_artifact(str(path))
        assert "\n" not in str(exc.value)

    def test_missing_file_is_a_schema_error(self, tmp_path):
        with pytest.raises(SchemaError):
            load_artifact(str(tmp_path / "absent.json"))

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        write_artifact(str(path), matrix_doc())
        with pytest.raises(SchemaError) as exc:
            load_artifact(str(path), kind="tiles")
        assert "expected 'tiles'" in str(exc.value)

    def test_write_refuses_invalid_doc(self, tmp_path):
        doc = matrix_doc()
        del doc["meta"]["points"]
        path = tmp_path / "bad.json"
        with pytest.raises(SchemaError):
            write_artifact(str(path), doc)
        assert not path.exists()

    def test_written_json_is_stable(self, tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        doc = matrix_doc()
        write_artifact(str(path), doc)
        first = path.read_text(encoding="utf-8")
        write_artifact(str(path), doc)
        assert path.read_text(encoding="utf-8") == first
        assert first.endswith("\n")
        # sort_keys makes diffs reviewable.
        parsed = json.loads(first)
        assert list(parsed) == sorted(parsed)


class TestMeta:
    def test_machine_id_shape(self):
        fingerprint = machine_id()
        assert fingerprint.count("/") == 2
        assert "py" in fingerprint and fingerprint.endswith("cpu")

    def test_artifact_meta_extra_fields_ride_along(self):
        meta = artifact_meta(1234, repeats=7)
        assert meta["points"] == 1234
        assert meta["repeats"] == 7
        assert meta["machine_id"] == machine_id()
