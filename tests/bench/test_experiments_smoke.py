"""Tiny-scale smoke tests of every experiment sweep.

The real figures run under ``pytest benchmarks/``; these keep the sweep
code covered (and its tables well-formed) inside the fast unit suite.
"""

import pytest

from repro.bench import (
    ablation_index,
    ablation_lazy,
    fig1_pixel_accuracy,
    fig8_9_step_regression,
    fig10_vary_w,
    fig11_vary_range,
    fig12_vary_overlap,
    fig13_vary_delete_pct,
    fig14_vary_delete_range,
    headline_scaling,
    table2_datasets,
)

TINY = 4_000


def assert_tables(tables, expected_rows):
    if not isinstance(tables, (list, tuple)):
        tables = [tables]
    for table in tables:
        assert len(table.rows) == expected_rows, table.title
        rendered = table.render()
        assert table.title in rendered
        markdown = table.render_markdown()
        assert markdown.count("|") > 0


class TestSweepsAtTinyScale:
    def test_table2(self):
        table = table2_datasets(TINY)
        assert_tables(table, 4)
        assert table.column("# Points") == [TINY] * 4

    def test_fig8_9(self):
        assert_tables(fig8_9_step_regression(n_points=TINY), 4)

    def test_fig10(self):
        tables = fig10_vary_w(n_points=TINY, w_values=(2, 8))
        assert_tables(tables, 2)
        for table in tables:
            assert all(table.column("equal"))

    def test_fig11(self):
        tables = fig11_vary_range(n_points=TINY, w=4,
                                  fractions=(0.5, 1.0))
        assert_tables(tables, 2)
        for table in tables:
            assert all(table.column("equal"))

    def test_fig12(self):
        tables = fig12_vary_overlap(n_points=TINY, w=4, overlaps=(0, 30),
                                    datasets=("MF03",))
        assert_tables(tables, 2)
        assert all(tables[0].column("equal"))

    def test_fig13(self):
        tables = fig13_vary_delete_pct(n_points=TINY, w=4,
                                       delete_pcts=(0, 30),
                                       datasets=("KOB",))
        assert_tables(tables, 2)
        assert all(tables[0].column("equal"))

    def test_fig14(self):
        tables = fig14_vary_delete_range(n_points=TINY, w=4, n_deletes=2,
                                         range_multipliers=(0.5, 5),
                                         datasets=("RcvTime",))
        assert_tables(tables, 2)
        assert all(tables[0].column("equal"))

    def test_fig1(self):
        table = fig1_pixel_accuracy(n_points=TINY, width=40, height=20)
        assert_tables(table, 5)
        errors = dict(zip(table.column("Reducer"),
                          table.column("differing pixels")))
        assert errors["M4"] == 0

    def test_headline(self):
        table = headline_scaling(w=8, point_counts=(TINY, 2 * TINY))
        assert_tables(table, 2)

    def test_ablation_index(self):
        tables = ablation_index(n_points=TINY, w=4, datasets=("KOB",))
        assert_tables(tables, 2)

    def test_ablation_lazy(self):
        tables = ablation_lazy(n_points=TINY, w=4, datasets=("MF03",))
        assert_tables(tables, 2)
        for table in tables:
            loads = dict(zip(table.column("strategy"),
                             table.column("points decoded")))
            assert loads["lazy"] <= loads["eager"]
