"""Determinism guarantees the regression gate stands on.

The gate treats I/O counters as authoritative because they are a pure
function of (code, cell config, scale).  That only holds if (a) the
generated store bytes are a pure function of the cell config and (b)
re-running a cell replays the exact same I/O.  Both are asserted here
at tiny scale — Hypothesis drives the config corners for (a).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import Cell, CellConfig, run_matrix
from repro.bench.driver import generate_cell_data
from repro.datasets.generators import PROFILES

TINY = 1_500

configs = st.builds(
    CellConfig,
    dataset=st.sampled_from(sorted(PROFILES)),
    cardinality=st.integers(min_value=1, max_value=3),
    overlap_pct=st.sampled_from([0, 10, 30]),
    delete_pct=st.sampled_from([0, 20]),
    seed=st.integers(min_value=0, max_value=2**16),
)


class TestDataDeterminism:
    @given(config=configs)
    @settings(max_examples=25, deadline=None)
    def test_generated_data_is_byte_identical(self, config):
        first = generate_cell_data(config, 300)
        second = generate_cell_data(config, 300)
        assert [name for name, _, _ in first] \
            == [name for name, _, _ in second]
        for (_, t1, v1), (_, t2, v2) in zip(first, second):
            assert t1.tobytes() == t2.tobytes()
            assert v1.tobytes() == v2.tobytes()

    def test_seed_changes_the_data(self):
        base = CellConfig(seed=0)
        other = CellConfig(seed=1)
        _, _, v0 = generate_cell_data(base, 300)[0]
        _, _, v1 = generate_cell_data(other, 300)[0]
        assert v0.tobytes() != v1.tobytes()

    def test_points_change_the_data_length(self):
        config = CellConfig()
        _, t, _ = generate_cell_data(config, 400)[0]
        assert len(t) == 400


class TestRunDeterminism:
    CELLS = [
        Cell(CellConfig(operator="m4udf", overlap_pct=20, delete_pct=20,
                        w=16), gate=True),
        Cell(CellConfig(operator="m4lsm", overlap_pct=20, delete_pct=20,
                        w=16), gate=True),
    ]

    @pytest.fixture(scope="class")
    def twice(self):
        first = run_matrix(cells=self.CELLS, points=TINY, repeats=2)
        second = run_matrix(cells=self.CELLS, points=TINY, repeats=2)
        return first, second

    def test_io_counters_identical_across_runs(self, twice):
        first, second = twice
        a = {row["id"]: row["io"] for row in first["rows"]}
        b = {row["id"]: row["io"] for row in second["rows"]}
        assert a == b

    def test_identity_and_gates_identical_across_runs(self, twice):
        first, second = twice
        for key in ("identity", "gate", "config"):
            assert [row[key] for row in first["rows"]] \
                == [row[key] for row in second["rows"]]

    def test_wall_samples_are_fresh_measurements(self, twice):
        first, second = twice
        a = [row["wall"]["samples"] for row in first["rows"]]
        b = [row["wall"]["samples"] for row in second["rows"]]
        # Timings are measured, not derived: byte-equality would mean
        # the driver cached a result instead of re-running the query.
        assert a != b
