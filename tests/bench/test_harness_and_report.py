"""Unit tests for the benchmark harness and report tables."""

import pytest

from repro.bench import (
    BenchTable,
    bench_points,
    make_operator,
    monotone_non_decreasing,
    prepare_engine,
    roughly_constant,
    timed_query,
)


class TestBenchTable:
    def test_render_contains_everything(self):
        table = BenchTable("demo", ["w", "latency"])
        table.add_row(10, 0.0123)
        table.add_row(100, 0.5)
        text = table.render()
        assert "demo" in text and "latency" in text and "0.0123" in text

    def test_cell_count_enforced(self):
        table = BenchTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = BenchTable("demo", ["a"])
        table.add_row(5)
        md = table.render_markdown()
        assert md.startswith("### demo")
        assert "| a |" in md and "| 5 |" in md

    def test_column(self):
        table = BenchTable("demo", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_tiny_floats_use_scientific(self):
        table = BenchTable("demo", ["x"])
        table.add_row(0.0000042)
        assert "e-06" in table.render()


class TestShapeHelpers:
    def test_monotone(self):
        assert monotone_non_decreasing([1, 2, 2, 5])
        assert not monotone_non_decreasing([1, 2, 1.5])
        assert monotone_non_decreasing([1, 2, 1.9], tolerance=0.1)

    def test_roughly_constant(self):
        assert roughly_constant([1.0, 1.2, 0.9])
        assert not roughly_constant([1.0, 5.0])
        assert roughly_constant([0, 0, 0])
        assert roughly_constant([])


class TestHarness:
    def test_bench_points_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_POINTS", "1234")
        assert bench_points() == 1234
        monkeypatch.delenv("REPRO_BENCH_POINTS")
        assert bench_points(777) == 777

    def test_prepare_and_time(self, tmp_path):
        with prepare_engine("MF03", n_points=5000, chunk_points=500,
                            overlap_pct=20, delete_pct=20,
                            data_dir=str(tmp_path / "db")) as prepared:
            assert prepared.t_qe > prepared.t_qs
            udf = make_operator(prepared, "m4udf")
            lsm = make_operator(prepared, "m4lsm")
            udf_run = timed_query(udf, prepared, 9, repeats=2)
            lsm_run = timed_query(lsm, prepared, 9, repeats=2)
            assert udf_run.seconds > 0 and lsm_run.seconds > 0
            assert udf_run.result.semantically_equal(lsm_run.result)
            assert udf_run.stats.chunk_loads >= lsm_run.stats.chunk_loads

    def test_timing_row_reports_cache_and_metrics(self, tmp_path):
        with prepare_engine("MF03", n_points=2000, chunk_points=500,
                            data_dir=str(tmp_path / "db")) as prepared:
            lsm = make_operator(prepared, "m4lsm")
            run = timed_query(lsm, prepared, 9)
            row = run.as_row()
            assert row["seconds"] == run.seconds
            assert row["stats"]["metadata_reads"] > 0
            # Cache counters always present (0 when the cache is off).
            assert row["cache_hits"] == row["stats"]["cache_hits"]
            assert row["cache_misses"] == row["stats"]["cache_misses"]
            # The metrics snapshot rides along with every bench row.
            counters = row["metrics"]["counters"]
            assert counters["engine_points_written_total"]["value"] \
                >= 2000

    def test_owned_temp_dir_cleaned_up(self):
        import os
        prepared = prepare_engine("KOB", n_points=2000, chunk_points=500)
        path = prepared.data_dir
        assert os.path.isdir(path)
        prepared.close()
        assert not os.path.exists(path)

    def test_unknown_operator_rejected(self, tmp_path):
        with prepare_engine("MF03", n_points=2000,
                            data_dir=str(tmp_path / "db")) as prepared:
            with pytest.raises(ValueError):
                make_operator(prepared, "turbo")
