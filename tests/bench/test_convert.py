"""Legacy ``BENCH_*.json`` → versioned-schema converter tests."""

import json

import pytest

from repro.bench import SCHEMA_VERSION, SchemaError, load_artifact
from repro.bench.convert import (
    convert_file,
    convert_legacy,
    detect_kind,
    main,
)

LEGACY_ROWS = {
    "parallelism": {
        "experiment": "E13", "operator": "m4lsm", "parallelism": 4,
        "serial_seconds": 1.0, "parallel_seconds": 0.4, "speedup": 2.5,
        "identical": True,
    },
    "server": {
        "experiment": "E14", "mode": "shed", "users": 16, "total": 400,
        "ok": 390, "shed": 10, "timeouts": 0, "throughput": 120.0,
        "p50_seconds": 0.05, "p95_seconds": 0.2, "p99_seconds": 0.4,
        "shed_rate": 0.025,
    },
    "durability": {
        "experiment": "E15", "path": "ingest", "regime": "steady",
        "verify_on_seconds": 1.2, "verify_off_seconds": 1.0,
        "overhead": 0.2,
    },
    "tiles": {
        "experiment": "E16", "pass": "warm", "viewports": 24,
        "p50_seconds": 0.01, "total_seconds": 0.4, "p50_speedup": 6.5,
        "tile_hits": 40, "tile_misses": 8, "identical": True,
    },
}


class TestDetectKind:
    @pytest.mark.parametrize("kind", sorted(LEGACY_ROWS))
    def test_each_legacy_shape_detected(self, kind):
        assert detect_kind([LEGACY_ROWS[kind]]) == kind

    def test_unknown_shape_rejected(self):
        with pytest.raises(SchemaError):
            detect_kind([{"mystery": 1}])
        with pytest.raises(SchemaError):
            detect_kind([])


class TestConvertLegacy:
    @pytest.mark.parametrize("kind", sorted(LEGACY_ROWS))
    def test_converted_artifact_validates(self, kind):
        doc = convert_legacy({"rows": [LEGACY_ROWS[kind]]},
                             created_unix=1234.5)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["kind"] == kind
        assert doc["rows"] == [LEGACY_ROWS[kind]]

    def test_substrate_is_marked_unknown(self):
        doc = convert_legacy({"rows": [LEGACY_ROWS["tiles"]]})
        meta = doc["meta"]
        assert meta["converted"] is True
        # Unknown machine_id keeps wall-clock comparisons advisory.
        assert meta["machine_id"] == "unknown"
        assert meta["git_sha"] == "unknown"
        assert meta["points"] == 0

    def test_rows_are_preserved_verbatim(self):
        row = dict(LEGACY_ROWS["durability"], extra_field="kept")
        doc = convert_legacy({"rows": [row]})
        assert doc["rows"][0]["extra_field"] == "kept"

    def test_legacy_row_missing_fields_rejected(self):
        row = dict(LEGACY_ROWS["parallelism"])
        del row["speedup"]
        with pytest.raises(SchemaError):
            convert_legacy({"rows": [row]})

    def test_non_object_rejected(self):
        with pytest.raises(SchemaError):
            convert_legacy([1, 2, 3])


class TestConvertFile:
    def write(self, path, doc):
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_converts_then_idempotent(self, tmp_path):
        path = self.write(tmp_path / "BENCH_tiles.json",
                          {"rows": [LEGACY_ROWS["tiles"]]})
        assert convert_file(path) == "converted"
        loaded = load_artifact(path, kind="tiles")
        assert loaded["meta"]["converted"] is True
        # Second pass recognises the schema and leaves the file alone.
        before = open(path, encoding="utf-8").read()
        assert convert_file(path) == "ok"
        assert open(path, encoding="utf-8").read() == before

    def test_main_reports_per_file(self, tmp_path, capsys):
        good = self.write(tmp_path / "BENCH_parallelism.json",
                          {"rows": [LEGACY_ROWS["parallelism"]]})
        bad = self.write(tmp_path / "BENCH_junk.json", {"rows": [{}]})
        assert main([good, bad]) == 1
        captured = capsys.readouterr()
        assert "converted" in captured.out
        assert captured.err.startswith("error:")

    def test_main_without_args_prints_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err


class TestRepoArtifacts:
    @pytest.mark.parametrize("name,kind", [
        ("BENCH_parallelism.json", "parallelism"),
        ("BENCH_server.json", "server"),
        ("BENCH_durability.json", "durability"),
        ("BENCH_tiles.json", "tiles"),
    ])
    def test_checked_in_artifacts_are_schema_valid(self, name, kind):
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "benchmarks", name)
        if not os.path.exists(path):
            pytest.skip("%s not present" % name)
        load_artifact(path, kind=kind)
