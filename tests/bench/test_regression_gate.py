"""The ``repro bench --check`` contract: exit codes and gate verdicts.

Baseline/current artifacts are synthesized (valid per the schema) so
every scenario — clean pass, injected 2x p50 slowdown, within-noise
drift, counter regression, identity failure, missing gated cell,
schema-invalid file — is deterministic and instant.
"""

import copy
import json

import pytest

from repro.bench import SchemaError, compare_artifacts, new_artifact
from repro.bench.compare import ABS_WALL_SLACK_SECONDS
from repro.cli import main

POINTS = 50_000


def cell_row(cell_id, gate=True, p50=0.100, spread=0.02, chunk_loads=120,
             checked=True, equal=True):
    samples = [p50, p50 * (1 + spread), p50 * (1 + spread / 2)]
    return {
        "id": cell_id,
        "config": {"operator": "m4lsm"},
        "gate": gate,
        "repeats": len(samples),
        "wall": {"p50_seconds": p50, "p99_seconds": max(samples),
                 "samples": samples},
        "io": {"chunk_loads": chunk_loads, "pages_decoded": 400,
               "points_decoded": 40000, "bytes_read": 655360,
               "index_lookups": 64},
        "identity": {"checked": checked, "equal": equal},
    }


def artifact(rows=None):
    rows = rows if rows is not None else [
        cell_row("card=1;ov=0;del=0;op=m4lsm;par=1;tiles=off"),
        cell_row("card=1;ov=20;del=20;op=m4lsm;par=1;tiles=off",
                 p50=0.150, chunk_loads=180),
        cell_row("card=32;ov=0;del=0;op=m4lsm;par=1;tiles=off",
                 gate=False, p50=0.900),
    ]
    return new_artifact("matrix", rows, POINTS)


def scaled(doc, wall=1.0, io=1.0):
    """A deep copy with wall samples and/or counters multiplied."""
    out = copy.deepcopy(doc)
    for row in out["rows"]:
        row["wall"]["p50_seconds"] *= wall
        row["wall"]["p99_seconds"] *= wall
        row["wall"]["samples"] = [s * wall
                                  for s in row["wall"]["samples"]]
        row["io"] = {k: int(v * io) for k, v in row["io"].items()}
    return out


class TestCompare:
    def test_self_comparison_passes(self):
        doc = artifact()
        report = compare_artifacts(doc, doc)
        assert report.ok
        assert report.cells_checked == 2           # gated cells only
        assert "PASS" in report.render()

    def test_injected_2x_slowdown_fails(self):
        base = artifact()
        report = compare_artifacts(scaled(base, wall=2.0), base)
        assert not report.ok
        rendered = report.render()
        assert "FAIL" in rendered and "p50" in rendered

    def test_within_noise_drift_passes(self):
        base = artifact()
        report = compare_artifacts(scaled(base, wall=1.10), base)
        assert report.ok

    def test_noisy_samples_widen_the_allowance(self):
        base = artifact(rows=[cell_row("cell-a", p50=0.100, spread=0.40)])
        # +50% would fail the 20% threshold, but the baseline's own
        # repeats vary by 40%, so the allowance widens past it.
        current = artifact(rows=[cell_row("cell-a", p50=0.150,
                                          spread=0.40)])
        assert compare_artifacts(current, base).ok

    def test_sub_millisecond_cells_never_wall_gate(self):
        base = artifact(rows=[cell_row("cell-a", p50=0.0004)])
        current = artifact(rows=[cell_row("cell-a", p50=0.0008)])
        # 2x slower but within the absolute slack.
        assert 0.0008 < 0.0004 * 1.2 + ABS_WALL_SLACK_SECONDS
        assert compare_artifacts(current, base).ok

    def test_io_regression_fails_even_with_wall_off(self):
        base = artifact()
        report = compare_artifacts(scaled(base, io=2.0), base,
                                   wall_mode="off")
        assert not report.ok
        assert "chunk_loads" in report.render()

    def test_io_tolerance_absorbs_tiny_drift(self):
        base = artifact()
        current = copy.deepcopy(base)
        for row in current["rows"]:
            row["io"]["chunk_loads"] += 1          # one extra probe
        assert compare_artifacts(current, base).ok

    def test_identity_failure_fails(self):
        base = artifact()
        current = copy.deepcopy(base)
        current["rows"][0]["identity"]["equal"] = False
        report = compare_artifacts(current, base)
        assert not report.ok
        assert "identity" in report.render()

    def test_missing_gated_cell_fails(self):
        base = artifact()
        current = copy.deepcopy(base)
        del current["rows"][0]
        report = compare_artifacts(current, base)
        assert not report.ok
        assert "missing" in report.render()

    def test_missing_ungated_cell_ignored(self):
        base = artifact()
        current = copy.deepcopy(base)
        current["rows"] = [row for row in current["rows"] if row["gate"]]
        assert compare_artifacts(current, base).ok

    def test_ungated_cells_checked_with_all_cells(self):
        base = artifact()
        report = compare_artifacts(base, base, gated_only=False)
        assert report.cells_checked == 3

    def test_new_cell_is_informational(self):
        base = artifact()
        current = copy.deepcopy(base)
        current["rows"].append(cell_row("brand-new-cell"))
        report = compare_artifacts(current, base)
        assert report.ok
        assert "new cell" in report.render()

    def test_cross_machine_wall_is_advisory(self):
        base = artifact()
        current = scaled(base, wall=3.0)
        base["meta"]["machine_id"] = "other-arch/py3.9/64cpu"
        report = compare_artifacts(current, base)
        assert report.ok                   # warn, not fail
        rendered = report.render()
        assert "advisory" in rendered and "WARN" in rendered

    def test_strict_mode_overrides_machine_mismatch(self):
        base = artifact()
        current = scaled(base, wall=3.0)
        base["meta"]["machine_id"] = "other-arch/py3.9/64cpu"
        report = compare_artifacts(current, base, wall_mode="strict")
        assert not report.ok

    def test_mismatched_scales_are_not_comparable(self):
        base = artifact()
        current = copy.deepcopy(base)
        current["meta"]["points"] = POINTS * 2
        with pytest.raises(SchemaError) as exc:
            compare_artifacts(current, base)
        assert "not comparable" in str(exc.value)


class TestCheckCli:
    def write(self, path, doc):
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return str(path)

    def test_clean_check_exits_zero(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", artifact())
        cur = self.write(tmp_path / "cur.json", artifact())
        assert main(["bench", "--check", cur, "--baseline", base]) == 0
        assert "bench gate: PASS" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        doc = artifact()
        base = self.write(tmp_path / "base.json", doc)
        cur = self.write(tmp_path / "cur.json", scaled(doc, wall=2.0))
        assert main(["bench", "--check", cur, "--baseline", base]) == 1
        assert "bench gate: FAIL" in capsys.readouterr().out

    def test_schema_invalid_artifact_is_a_one_line_error(self, tmp_path,
                                                         capsys):
        doc = artifact()
        del doc["meta"]["machine_id"]
        base = self.write(tmp_path / "base.json", artifact())
        cur = self.write(tmp_path / "cur.json", doc)
        assert main(["bench", "--check", cur, "--baseline", base]) == 1
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:") and "\n" not in err

    def test_pre_schema_artifact_names_the_converter(self, tmp_path,
                                                     capsys):
        base = self.write(tmp_path / "base.json", artifact())
        cur = self.write(tmp_path / "cur.json", {"rows": [{}]})
        assert main(["bench", "--check", cur, "--baseline", base]) == 1
        assert "convert_bench_artifacts" in capsys.readouterr().err

    def test_threshold_flag_respected(self, tmp_path, capsys):
        doc = artifact()
        base = self.write(tmp_path / "base.json", doc)
        cur = self.write(tmp_path / "cur.json", scaled(doc, wall=1.5))
        assert main(["bench", "--check", cur, "--baseline", base,
                     "--threshold", "0.2"]) == 1
        capsys.readouterr()
        assert main(["bench", "--check", cur, "--baseline", base,
                     "--threshold", "0.8"]) == 0

    def test_list_prints_the_matrix(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "card=1;ov=0;del=0;op=m4udf;par=1;tiles=off" in out
        assert "[gated]" in out

    def test_nothing_to_do_is_an_error(self, capsys):
        assert main(["bench"]) == 1
        assert "nothing to do" in capsys.readouterr().err
