"""Unit tests for the scenario-matrix driver and its noise helpers."""

import pytest

from repro.bench import (
    Cell,
    CellConfig,
    default_matrix,
    grew_by,
    median,
    noise_allowance,
    rel_spread,
    run_matrix,
    select_cells,
    validate_artifact,
    wall_ratio,
    within_factor,
)
from repro.bench.driver import generate_cell_data, quantile

TINY = 2_000


class TestNoiseHelpers:
    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_quantile(self):
        values = list(range(100))
        assert quantile(values, 0.0) == 0
        assert quantile(values, 0.5) == 50
        assert quantile(values, 0.99) == 99
        assert quantile([7], 0.99) == 7

    def test_rel_spread(self):
        assert rel_spread([1.0, 1.0, 1.0]) == 0.0
        assert rel_spread([1.0, 1.5, 2.0]) == pytest.approx(2 / 3)
        assert rel_spread([0.0, 0.0]) == 0.0

    def test_noise_allowance_widens_with_spread(self):
        tight = [1.0, 1.01, 1.02]
        assert noise_allowance(tight, tight, 0.2) == 0.2
        noisy = [1.0, 1.2, 1.5]
        # rel_spread = (1.5 - 1.0) / median 1.2; allowance doubles it.
        assert noise_allowance(tight, noisy, 0.2) \
            == pytest.approx(2 * 0.5 / 1.2)

    def test_wall_ratio_clamps_to_floor(self):
        assert wall_ratio(1e-4, 1e-6) == 1.0
        assert wall_ratio(0.05, 0.001) == pytest.approx(10.0)
        assert wall_ratio(0.05, 0.025) == pytest.approx(2.0)

    def test_within_factor(self):
        assert within_factor(1e-4, 1e-6, 1.5)          # both sub-floor
        assert within_factor(0.012, 0.01, 1.5)
        assert not within_factor(0.02, 0.01, 1.5)
        # A raised floor encodes "small in absolute terms".
        assert within_factor(0.02, 0.01, 1.5, floor=0.02)

    def test_grew_by(self):
        # Sub-floor value: a tiny run cannot refute a growth claim.
        assert grew_by(1e-4, 1e-5, 100)
        assert grew_by(0.1, 0.01, 2)
        assert not grew_by(0.1, 0.09, 2)


class TestMatrixShape:
    def test_default_matrix_covers_the_required_cells(self):
        cells = default_matrix()
        assert len(cells) >= 24
        ids = [c.config.cell_id for c in cells]
        assert len(set(ids)) == len(ids)
        gated = [c for c in cells if c.gate]
        assert len(gated) >= 8
        # Every axis is represented somewhere in the matrix.
        assert any(c.config.cardinality > 1 for c in cells)
        assert any(c.config.overlap_pct > 0 for c in cells)
        assert any(c.config.delete_pct > 0 for c in cells)
        assert any(c.config.parallelism > 1 for c in cells)
        assert any(c.config.tiles for c in cells)
        assert {c.config.operator for c in cells} \
            == {"m4udf", "m4lsm", "m4lsm-tiles"}

    def test_cell_id_format(self):
        config = CellConfig(cardinality=8, overlap_pct=20, delete_pct=10,
                            operator="m4udf", parallelism=4, tiles=True)
        assert config.cell_id \
            == "card=8;ov=20;del=10;op=m4udf;par=4;tiles=on"

    def test_fingerprint_shared_across_operators(self):
        a = CellConfig(operator="m4udf", overlap_pct=20)
        b = CellConfig(operator="m4lsm", overlap_pct=20, w=256)
        c = CellConfig(operator="m4lsm", overlap_pct=30)
        assert a.store_fingerprint(TINY) == b.store_fingerprint(TINY)
        assert a.store_fingerprint(TINY) != c.store_fingerprint(TINY)
        assert a.store_fingerprint(TINY) != a.store_fingerprint(TINY * 2)

    def test_select_cells_by_substring(self):
        cells = default_matrix()
        tiles = select_cells(cells, pattern="tiles=on")
        assert tiles and all(c.config.tiles for c in tiles)
        both = select_cells(cells, pattern="par=4,card=32")
        assert all(c.config.parallelism == 4
                   or c.config.cardinality == 32 for c in both)

    def test_select_cells_gated_token(self):
        cells = default_matrix()
        gated = select_cells(cells, pattern="gated")
        assert gated == [c for c in cells if c.gate]
        gated_udf = select_cells(cells, pattern="gated,op=m4udf")
        assert gated_udf
        assert all(c.gate and c.config.operator == "m4udf"
                   for c in gated_udf)

    def test_select_cells_gated_only_flag(self):
        cells = default_matrix()
        assert select_cells(cells, gated_only=True) \
            == [c for c in cells if c.gate]


class TestGenerateCellData:
    def test_primary_plus_extras(self):
        config = CellConfig(dataset="KOB", cardinality=3, seed=5)
        series = generate_cell_data(config, 500)
        assert [name for name, _, _ in series] \
            == ["kob", "extra-000", "extra-001"]
        for _, t, v in series:
            assert len(t) == len(v) == 500
        # Extra series are genuinely distinct data, not copies.
        assert list(series[1][2][:20]) != list(series[2][2][:20])


class TestRunMatrixTiny:
    # Big enough that the working set outgrows the chunk cache (the
    # cold/warm I/O contrast the matrix documents); small enough to
    # stay in the fast suite.
    POINTS = 20_000

    @pytest.fixture(scope="class")
    def artifact(self):
        cells = [
            Cell(CellConfig(operator="m4udf", overlap_pct=20,
                            delete_pct=20), gate=True),
            Cell(CellConfig(operator="m4lsm", overlap_pct=20,
                            delete_pct=20), gate=True),
            Cell(CellConfig(operator="m4lsm", overlap_pct=20,
                            delete_pct=20, tiles=True), gate=False),
            Cell(CellConfig(operator="m4lsm-tiles", overlap_pct=20,
                            delete_pct=20, tiles=True), gate=False),
        ]
        return run_matrix(cells=cells, points=self.POINTS, repeats=2)

    def test_artifact_validates(self, artifact):
        assert validate_artifact(artifact) is artifact
        assert artifact["kind"] == "matrix"
        assert artifact["meta"]["points"] == self.POINTS
        assert artifact["meta"]["repeats"] == 2

    def test_every_cell_reported(self, artifact):
        rows = {row["id"]: row for row in artifact["rows"]}
        assert len(rows) == 4
        assert sum(1 for row in rows.values() if row["gate"]) == 2

    def test_identity_checks(self, artifact):
        for row in artifact["rows"]:
            op = row["config"]["operator"]
            if op == "m4udf":
                assert not row["identity"]["checked"]
            else:
                assert row["identity"]["checked"]
            assert row["identity"]["equal"], row["id"]

    def test_wall_and_io_populated(self, artifact):
        for row in artifact["rows"]:
            assert len(row["wall"]["samples"]) == 2
            assert row["wall"]["p50_seconds"] > 0
            assert row["io"]["points_decoded"] >= 0

    def test_gated_counters_always_recorded(self, artifact):
        from repro.bench.compare import GATED_IO_COUNTERS
        for row in artifact["rows"]:
            for counter in GATED_IO_COUNTERS:
                value = row["io"][counter]
                assert isinstance(value, int) and value >= 0, row["id"]

    def test_warmed_tiles_do_no_chunk_io(self, artifact):
        tiled = [row for row in artifact["rows"]
                 if row["config"]["operator"] == "m4lsm-tiles"]
        assert tiled and tiled[0]["io"]["chunk_loads"] == 0

    def test_empty_selection_raises(self):
        with pytest.raises(ValueError):
            run_matrix(pattern="no-such-cell", points=TINY)
