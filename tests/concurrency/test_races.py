"""Targeted race regressions, one test per historical hazard.

Each test pins down a specific interleaving the thread-safety layer
must survive: cache eviction racing gets, flush racing queries,
concurrent flush_all, racing series creation, and concurrent obs.json
persistence (which must never leave a torn file).  Interleavings are
explored with seeded jitter so a failing seed can be replayed.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.m4lsm import M4LSMOperator
from repro.storage import StorageConfig, StorageEngine
from repro.storage.cache import ChunkCache
from repro.storage.iostats import IoStats

from .harness import Interleaver, run_threads


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cache_eviction_vs_get(seed):
    """Concurrent get/put with constant eviction pressure.

    The capacity bound and the hit+miss accounting must hold exactly:
    a lost update would show up as hits+misses != total gets, a racy
    eviction as points > capacity.
    """
    stats = IoStats()
    cache = ChunkCache(capacity_points=500, stats=stats)
    interleave = Interleaver(seed)
    n_threads, n_ops = 8, 400
    arrays = {k: np.arange(k % 90 + 10) for k in range(60)}

    def worker(index):
        jitter = interleave.stream(index)
        rng = np.random.default_rng((seed, index))

        def work():
            gets = 0
            for _ in range(n_ops):
                key = int(rng.integers(0, len(arrays)))
                if rng.random() < 0.5:
                    got = cache.get(key)
                    gets += 1
                    if got is not None:
                        # Cached arrays are immutable and intact.
                        assert got.size == key % 90 + 10
                else:
                    cache.put(key, arrays[key])
                assert cache.points <= cache.capacity
                jitter()
            return gets
        return work

    total_gets = sum(run_threads([worker(i) for i in range(n_threads)]))
    counts = cache.stats()
    assert counts["hits"] + counts["misses"] == total_gets
    assert counts["points"] <= cache.capacity
    # The IoStats mirror saw every event too (atomic add, no loss).
    assert stats.cache_hits == counts["hits"]
    assert stats.cache_misses == counts["misses"]


@pytest.mark.parametrize("seed", [0, 1])
def test_flush_vs_query(tmp_path, seed):
    """One thread writes+flushes, another queries the same series.

    Queries must only ever see fully sealed chunks: every chunk list
    snapshot is a prefix of the next (append-only), and every M4 query
    over the committed range succeeds without torn reads.
    """
    config = StorageConfig(avg_series_point_number_threshold=40,
                           points_per_page=20, chunks_per_tsfile=4,
                           parallelism=2)
    engine = StorageEngine(tmp_path / "db", config)
    engine.create_series("s")
    interleave = Interleaver(seed)
    rounds = 100

    def writes():
        jitter = interleave.stream(0)
        for it in range(rounds):
            t = (it * 40 + np.arange(40, dtype=np.int64)) * 5
            engine.write_batch("s", t, t * 0.5)
            jitter()

    def queries():
        jitter = interleave.stream(1)
        seen = 0
        for _ in range(rounds):
            chunks = engine.chunks_for("s")
            assert len(chunks) >= seen, "chunk list went backwards"
            seen = len(chunks)
            if chunks:
                t_qe = max(c.end_time for c in chunks) + 1
                result = M4LSMOperator(engine).query("s", 0, t_qe, 8)
                for span in result.spans:
                    for p in (span.first, span.last, span.bottom,
                              span.top):
                        if p is not None:
                            assert p.v == p.t * 0.5
            jitter()

    try:
        run_threads([writes, queries])
    finally:
        engine.close()


def test_concurrent_flush_all(tmp_path):
    """flush_all racing flush_all (and itself racing writers) must not
    drop, duplicate, or double-seal points."""
    config = StorageConfig(avg_series_point_number_threshold=1_000,
                           points_per_page=100)
    engine = StorageEngine(tmp_path / "db", config)
    names = ["f%d" % i for i in range(4)]
    for name in names:
        engine.create_series(name)
        t = np.arange(150, dtype=np.int64) * 3
        engine.write_batch(name, t, t * 1.0)  # buffered: below threshold

    try:
        run_threads([engine.flush_all for _ in range(6)])
        for name in names:
            assert engine.total_points(name) == 150
    finally:
        engine.close()


def test_concurrent_create_series(tmp_path):
    """Racing create_series on same and distinct names: ids stay unique,
    re-creation is idempotent, the catalog holds each series once."""
    engine = StorageEngine(tmp_path / "db", StorageConfig())
    n_threads = 8

    def creator(index):
        def work():
            shared = engine.create_series("shared")
            own = engine.create_series("own-%d" % index)
            assert engine.create_series("own-%d" % index) == own
            return shared, own
        return work

    try:
        results = run_threads([creator(i) for i in range(n_threads)])
        shared_ids = {shared for shared, _own in results}
        own_ids = [own for _shared, own in results]
        assert len(shared_ids) == 1
        assert len(set(own_ids)) == n_threads
        assert shared_ids.isdisjoint(own_ids)
        assert sorted(engine.series_names()) \
            == sorted(["shared"] + ["own-%d" % i for i in range(n_threads)])
    finally:
        engine.close()
    # Reopen: the catalog replayed exactly one entry per series.
    with StorageEngine(engine.data_dir) as reopened:
        assert sorted(reopened.series_names()) \
            == sorted(["shared"] + ["own-%d" % i for i in range(n_threads)])


def test_persist_obs_is_atomic(tmp_path):
    """Concurrent obs.json writers + a hot JSON reader: every read must
    parse.  A torn write (truncated JSON) would poison the next engine
    startup; the unique-temp + rename protocol makes that impossible."""
    engine = StorageEngine(tmp_path / "db", StorageConfig())
    engine.create_series("s")
    t = np.arange(200, dtype=np.int64)
    engine.write_batch("s", t, t * 1.0)
    engine.flush_all()
    obs_path = engine._obs_path()
    stop = threading.Event()

    def persister():
        for _ in range(50):
            engine._persist_obs()

    def reader():
        parsed = 0
        while not stop.is_set() or parsed == 0:
            try:
                with open(obs_path, "r", encoding="utf-8") as f:
                    raw = f.read()
            except FileNotFoundError:
                continue
            data = json.loads(raw)  # a torn file raises here
            assert "metrics" in data and "iostats" in data
            parsed += 1
        return parsed

    def persist_then_stop():
        try:
            run_threads([persister for _ in range(4)], barrier=False)
        finally:
            stop.set()

    try:
        writers_done = threading.Thread(target=persist_then_stop)
        writers_done.start()
        assert reader() > 0
        writers_done.join(30)
        assert not writers_done.is_alive()
        # No temp litter left behind.
        leftovers = [p for p in (tmp_path / "db").iterdir()
                     if p.name.startswith("obs.json.")]
        assert leftovers == []
    finally:
        engine.close()
