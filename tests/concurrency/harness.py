"""Race-detection harness: exception-collecting threads and seeded
interleaving jitter.

``run_threads`` is the suite's workhorse: it starts every worker behind
a barrier (maximum contention at t=0), joins them with a deadlock
timeout, and re-raises collected exceptions with their thread names —
so a race that throws in a worker fails the test instead of vanishing
into a daemon thread.

``Interleaver`` injects tiny seeded sleeps at caller-chosen checkpoints.
Thread scheduling is the one input a test cannot fix, but seeding the
jitter makes each named schedule reproducible enough that a failure's
seed can be replayed while still exploring different interleavings
across seeds.
"""

from __future__ import annotations

import random
import threading
import traceback


class ThreadFailure(AssertionError):
    """One or more worker threads raised (or deadlocked)."""


def run_threads(workers, timeout=90.0, barrier=True):
    """Run callables concurrently; fail loudly on exception or hang.

    Args:
        workers: iterable of zero-argument callables, one thread each.
        timeout: seconds to wait for *all* threads; exceeding it is
            reported as a deadlock (the faulthandler watchdog in
            conftest.py will then dump stacks).
        barrier: start all workers simultaneously for max contention.
    Returns:
        list of worker return values, in worker order.
    """
    workers = list(workers)
    start = threading.Barrier(len(workers)) if barrier and workers \
        else None
    errors = []
    results = [None] * len(workers)
    errors_lock = threading.Lock()

    def runner(index, fn):
        try:
            if start is not None:
                start.wait()
            results[index] = fn()
        except BaseException as exc:  # noqa: BLE001 — reraised below
            with errors_lock:
                errors.append((threading.current_thread().name, exc,
                               traceback.format_exc()))

    threads = [threading.Thread(target=runner, args=(i, fn),
                                name="worker-%d" % i, daemon=True)
               for i, fn in enumerate(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    alive = [thread.name for thread in threads if thread.is_alive()]
    if alive:
        raise ThreadFailure("deadlock suspected: %s still running after "
                            "%.0fs" % (", ".join(alive), timeout))
    if errors:
        details = "\n".join("--- %s ---\n%s" % (name, tb)
                            for name, _exc, tb in errors)
        raise ThreadFailure("%d worker(s) raised:\n%s"
                            % (len(errors), details))
    return results


class Interleaver:
    """Seeded jitter source; one independent stream per thread.

    >>> interleaver = Interleaver(seed=7)
    >>> jitter = interleaver.stream(0)   # thread 0's checkpoint hook
    >>> jitter()                         # sleeps 0..scale seconds
    """

    def __init__(self, seed, scale=2e-4):
        self._seed = int(seed)
        self._scale = float(scale)

    def stream(self, thread_index):
        """A zero-argument jitter callable for one thread."""
        rng = random.Random(self._seed * 1_000_003 + thread_index)
        scale = self._scale

        def jitter():
            import time
            time.sleep(rng.random() * scale)

        return jitter
