"""Tile cache under concurrency: invalidation racing queries.

The linearizability claim: because write/delete invalidate tiles while
holding the series *write* lock, and the tiled operator stitches while
holding the series *read* lock, a cached query observes either all of a
mutation or none of it.  The checkers here take the read lock once and
run the tiled and plain operators back to back under it — the two must
agree byte-for-byte no matter how writers interleave, cold or warm.

A second test hammers the bare ``TileCache`` with concurrent inserts,
lookups and invalidations to pin its internal accounting invariants
(byte budget, index consistency, epoch fencing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M4LSMOperator, TiledM4Operator
from repro.core.tiles import TileCache, TileEntry
from repro.storage import StorageConfig, StorageEngine

from .harness import Interleaver, run_threads

DOMAIN = 4096
W = 64


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invalidation_vs_query(tmp_path, seed):
    # Batch size == flush threshold: every write_batch seals a chunk, so
    # checkers never hit the "unflushed points" guard (the same shape as
    # test_races.test_flush_vs_query).
    config = StorageConfig(avg_series_point_number_threshold=32,
                           points_per_page=16, parallelism=2,
                           tile_cache_bytes=4 * 1024 * 1024,
                           tile_cache_spans=8)
    interleave = Interleaver(seed)
    rounds = 40
    with StorageEngine(tmp_path / "db", config) as engine:
        engine.create_series("s")
        t = np.arange(DOMAIN, dtype=np.int64)
        engine.write_batch("s", t, np.sin(t / 13.0) * 5)
        engine.flush_all()

        def writer(index):
            jitter = interleave.stream(index)
            rng = np.random.default_rng((seed, index))

            def work():
                for _ in range(rounds):
                    lo = int(rng.integers(0, DOMAIN - 64))
                    if rng.random() < 0.25:
                        engine.delete("s", lo, lo + 32)
                    else:
                        ts = np.arange(lo, lo + 32, dtype=np.int64)
                        engine.write_batch("s", ts, ts * 0.01)
                    jitter()
            return work

        def checker(index):
            jitter = interleave.stream(index)
            rng = np.random.default_rng((seed, index, 7))
            tiled = TiledM4Operator(engine)
            plain = M4LSMOperator(engine)

            def work():
                for _ in range(rounds):
                    # Power-of-two aligned viewports at random phases.
                    z = int(rng.integers(0, 3))
                    s = 1 << z
                    start = int(rng.integers(0, DOMAIN // (2 * s))) * s
                    end = start + W * s
                    # One read-lock hold = one stable snapshot: the
                    # cached and uncached answers must coincide in it.
                    with engine.series_lock("s").read():
                        a = tiled.query("s", start, end, W)
                        b = plain.query("s", start, end, W)
                    assert a == b, (z, start)
                    jitter()
            return work

        workers = [writer(0), writer(1)] + [checker(i)
                                            for i in range(2, 6)]
        run_threads(workers)
        # Quiescent final check over the whole domain, warm and cold.
        tiled = TiledM4Operator(engine)
        plain = M4LSMOperator(engine)
        expected = plain.query("s", 0, DOMAIN, W)
        assert tiled.query("s", 0, DOMAIN, W) == expected
        assert tiled.query("s", 0, DOMAIN, W) == expected
        cache = engine.tile_cache
        assert cache.bytes <= cache.capacity_bytes


@pytest.mark.parametrize("seed", [0, 1])
def test_cache_accounting_under_contention(seed):
    cache = TileCache(20_000, spans_per_tile=8)
    interleave = Interleaver(seed)
    n_threads, n_ops = 8, 300

    def worker(index):
        jitter = interleave.stream(index)
        rng = np.random.default_rng((seed, index))

        def work():
            for _ in range(n_ops):
                series = "s%d" % rng.integers(0, 3)
                tile = int(rng.integers(0, 40))
                roll = rng.random()
                if roll < 0.45:
                    epoch = cache.epoch(series)
                    jitter()
                    entry = TileEntry(spans=(), skipped=(),
                                      nbytes=int(rng.integers(50, 400)))
                    cache.insert(series, 0, tile, entry, epoch)
                elif roll < 0.8:
                    cache.lookup(series, 0, tile)
                elif roll < 0.95:
                    lo = tile * 8
                    cache.invalidate(series, lo, lo + 12)
                else:
                    cache.invalidate_series(series)
                assert cache.bytes <= cache.capacity_bytes
                jitter()
        return work

    run_threads([worker(i) for i in range(n_threads)])
    # Final bookkeeping consistency: stats, snapshot and the byte sum
    # all agree after the dust settles.
    stats = cache.stats()
    snapshot = cache.snapshot()
    assert stats["tiles"] == len(snapshot) == len(cache)
    assert stats["bytes"] == sum(e.nbytes for _s, _z, _k, e in snapshot)
    assert stats["bytes"] <= cache.capacity_bytes
