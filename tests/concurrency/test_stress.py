"""Concurrency stress suite: N writers + M readers on one engine.

Two regimes, both at 8 threads x 100 iterations:

* **pixel-exact reads** — each writer appends monotonically to its own
  series in exact flush-threshold multiples, so every committed prefix
  is a sealed-chunk snapshot; readers re-derive the expected M4 result
  by replaying the deterministic value function over the committed
  prefix and demand *exact* equality.  This is the linearizability
  claim made executable: a concurrent M4 query equals a serial query
  over some committed prefix.
* **mixed operations** — writers, range-deleters and readers race on
  shared state (plus flush_all calls); afterwards the store must hold
  exactly the written points minus the deleted ranges, with both
  operators agreeing.

Every run uses ``parallelism=2`` and a shared ChunkCache, so the chunk
pipeline and cache eviction race against the engine locks too.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.m4 import M4UDFOperator, m4_aggregate_arrays
from repro.core.m4lsm import M4LSMOperator
from repro.storage import StorageConfig, StorageEngine

from .harness import Interleaver, run_threads

N_WRITERS = 4
N_READERS = 4
ITERATIONS = 100
THRESHOLD = 50           # flush threshold; writers commit exact multiples
STEP = 10                # regular time step, so prefixes are derivable
W = 16                   # spans per stress query


def _config():
    return StorageConfig(avg_series_point_number_threshold=THRESHOLD,
                         points_per_page=20, chunk_cache_points=2_000,
                         parallelism=2)


def _value_of(t):
    """The deterministic value function every thread can re-derive."""
    t = np.asarray(t, dtype=np.int64)
    return np.round(np.sin(t * 1e-3) * 100.0 + (t % 97) * 0.25, 6)


def test_writers_vs_readers_pixel_exact(tmp_path):
    engine = StorageEngine(tmp_path / "db", _config())
    series = ["w%d" % i for i in range(N_WRITERS)]
    for name in series:
        engine.create_series(name)
    interleave = Interleaver(seed=42)

    def writer(index):
        name = series[index]
        jitter = interleave.stream(index)

        def work():
            for it in range(ITERATIONS):
                base = it * THRESHOLD
                t = (base + np.arange(THRESHOLD, dtype=np.int64)) * STEP
                engine.write_batch(name, t, _value_of(t))
                jitter()
        return work

    def reader(index):
        jitter = interleave.stream(N_WRITERS + index)

        def work():
            for it in range(ITERATIONS):
                name = series[(index + it) % N_WRITERS]
                chunks = engine.chunks_for(name)
                if not chunks:
                    continue
                t_qs = min(c.start_time for c in chunks)
                t_qe = max(c.end_time for c in chunks) + 1
                use_udf = bool(it % 2)
                operator = M4UDFOperator(engine) if use_udf \
                    else M4LSMOperator(engine)
                result = operator.query(name, t_qs, t_qe, W)
                # Serial replay of the committed prefix: timestamps are
                # k*STEP for k in [0, n), values from the shared value
                # function.  Later writes land at t >= t_qe (monotone
                # append), so they cannot leak into this range.
                n = (t_qe - 1) // STEP + 1
                t_all = np.arange(n, dtype=np.int64) * STEP
                expected = m4_aggregate_arrays(t_all, _value_of(t_all),
                                               t_qs, t_qe, W)
                assert result.semantically_equal(expected), \
                    "query over committed prefix [%d, %d) of %r is not " \
                    "pixel-exact" % (t_qs, t_qe, name)
                if use_udf:
                    # The UDF path runs the very same scan as the
                    # replay, so it must match bit for bit.
                    assert result == expected
                jitter()
        return work

    try:
        run_threads([writer(i) for i in range(N_WRITERS)]
                    + [reader(j) for j in range(N_READERS)])
        # Quiescent check: every point of every writer arrived intact.
        engine.flush_all()
        for name in series:
            n = ITERATIONS * THRESHOLD
            assert engine.total_points(name) == n
    finally:
        engine.close()


def test_mixed_write_delete_query_stress(tmp_path):
    engine = StorageEngine(tmp_path / "db", _config())
    series = ["m%d" % i for i in range(3)]
    for name in series:
        engine.create_series(name)
    interleave = Interleaver(seed=7)

    # watermarks[name]: highest committed (flushed) exclusive time bound.
    watermarks = {name: 0 for name in series}
    deleted = {name: [] for name in series}  # closed [a, b] ranges
    book_lock = threading.Lock()

    def writer(index):
        name = series[index]
        jitter = interleave.stream(index)

        def work():
            for it in range(ITERATIONS):
                base = it * THRESHOLD
                t = (base + np.arange(THRESHOLD, dtype=np.int64)) * STEP
                engine.write_batch(name, t, _value_of(t))
                with book_lock:
                    watermarks[name] = int(t[-1]) + 1
                jitter()
        return work

    def deleter(index):
        import random
        rng = random.Random(99_000 + index)
        jitter = interleave.stream(3 + index)

        def work():
            for _ in range(ITERATIONS // 2):
                name = rng.choice(series)
                with book_lock:
                    high = watermarks[name]
                if high < 4 * STEP:
                    continue
                # Delete strictly below the committed watermark: those
                # points are sealed with versions older than this
                # delete's, and the writer never revisits old times —
                # so the range is deterministically gone forever.
                a = rng.randrange(0, high - 2 * STEP)
                b = min(a + rng.randrange(1, 3 * STEP), high - 1)
                engine.delete(name, a, b)
                with book_lock:
                    deleted[name].append((a, b))
                jitter()
        return work

    def reader(index):
        import random
        rng = random.Random(123_000 + index)
        jitter = interleave.stream(5 + index)

        def work():
            for it in range(ITERATIONS):
                name = rng.choice(series)
                with book_lock:
                    high = watermarks[name]
                if high <= 0:
                    continue
                operator = M4UDFOperator(engine) if it % 2 \
                    else M4LSMOperator(engine)
                result = operator.query(name, 0, high, W)
                # Every surviving representation point must carry the
                # value function's value — torn reads would not.
                for span in result.spans:
                    for point in (span.first, span.last, span.bottom,
                                  span.top):
                        if point is None:
                            continue
                        assert 0 <= point.t < high
                        assert point.v == float(_value_of([point.t])[0])
                jitter()
        return work

    def flusher():
        for _ in range(ITERATIONS // 4):
            engine.flush_all()

    try:
        run_threads([writer(i) for i in range(3)]
                    + [deleter(i) for i in range(2)]
                    + [reader(i) for i in range(2)]
                    + [flusher])
        engine.flush_all()
        # Quiescent replay: exactly the written points minus the
        # recorded deleted ranges, and both operators agree.
        for name in series:
            n = ITERATIONS * THRESHOLD
            t_all = np.arange(n, dtype=np.int64) * STEP
            keep = np.ones(n, dtype=bool)
            for a, b in deleted[name]:
                keep &= ~((t_all >= a) & (t_all <= b))
            expected_t = t_all[keep]
            udf = M4UDFOperator(engine)
            merged = udf.merged_series(name, 0, int(t_all[-1]) + 1)
            np.testing.assert_array_equal(merged.timestamps, expected_t)
            np.testing.assert_array_equal(merged.values,
                                          _value_of(expected_t))
            a = udf.query(name, 0, int(t_all[-1]) + 1, W)
            b = M4LSMOperator(engine).query(name, 0, int(t_all[-1]) + 1, W)
            assert a.semantically_equal(b)
    finally:
        engine.close()
