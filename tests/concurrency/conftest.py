"""Concurrency-suite safety net: a hard per-test timeout.

A deadlocked lock hierarchy hangs instead of failing, so every test in
this package arms :func:`faulthandler.dump_traceback_later` — if a test
exceeds the budget, all thread stacks are dumped to stderr and the
process exits hard.  That turns a silent CI hang into an actionable
traceback showing exactly which locks each thread is blocked on.

Budget via ``REPRO_CONCURRENCY_TIMEOUT`` (seconds, default 120).
"""

from __future__ import annotations

import faulthandler
import os

import pytest

HARD_TIMEOUT_SECONDS = float(os.environ.get("REPRO_CONCURRENCY_TIMEOUT",
                                            120))


@pytest.fixture(autouse=True)
def hard_timeout():
    """Arm a whole-process watchdog for the duration of each test."""
    faulthandler.dump_traceback_later(HARD_TIMEOUT_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()
