"""The tile cache's correctness contract: byte- and pixel-identical to
the uncached M4-LSM path on every dataset, under overlap, deletes,
degraded reads and strict mode."""

import random

import numpy as np
import pytest

from repro.bench import make_operator, prepare_engine
from repro.core import M4LSMOperator, TiledM4Operator
from repro.core.tiles import snap_viewport
from repro.errors import CorruptFileError
from repro.server.service import render_chart
from repro.server.workload import zoom_pan_session
from repro.storage import StorageConfig, StorageEngine

CACHE = {"tile_cache_bytes": 8 * 1024 * 1024, "tile_cache_spans": 16}


@pytest.mark.parametrize("dataset", ["BallSpeed", "MF03", "KOB", "RcvTime"])
def test_session_byte_identity(dataset):
    """A full snapped pan/zoom session answers byte-identically, both
    while the cache fills and once it is warm."""
    with prepare_engine(dataset, n_points=6000, overlap_pct=20,
                        delete_pct=10, **CACHE) as prepared:
        plain = make_operator(prepared, "m4lsm")
        tiled = make_operator(prepared, "m4lsm-tiles")
        rng = random.Random(11)
        for start, end in zoom_pan_session(prepared.t_qs, prepared.t_qe,
                                           rng):
            start, end = snap_viewport(start, end, 128)
            expected = plain.query(prepared.series, start, end, 128)
            assert tiled.query(prepared.series, start, end, 128) \
                == expected                      # cold/filling
            assert tiled.query(prepared.series, start, end, 128) \
                == expected                      # warm
        assert len(prepared.engine.tile_cache) > 0


def test_ineligible_viewports_bypass_but_match(loaded_engine):
    engine, t, _v = loaded_engine
    tiled = TiledM4Operator(engine)  # engine has no cache -> bypass
    plain = M4LSMOperator(engine)
    t_qs, t_qe = int(t[0]) + 1, int(t[-1])
    assert tiled.query("s", t_qs, t_qe, 7) == plain.query("s", t_qs,
                                                          t_qe, 7)


def test_pixel_identity_render(tmp_path):
    """`render_chart` with and without the cache produces the same
    pixel matrix (the ISSUE's pixel-identity criterion)."""
    matrices = []
    for i, cache_bytes in enumerate((0, 8 * 1024 * 1024)):
        config = StorageConfig(avg_series_point_number_threshold=100,
                               tile_cache_bytes=cache_bytes,
                               tile_cache_spans=16)
        with StorageEngine(tmp_path / ("db%d" % i), config) as engine:
            t = np.arange(3000, dtype=np.int64)
            engine.create_series("s")
            engine.write_batch("s", t, np.sin(t / 17.0) * 4)
            engine.flush_all()
            engine.delete("s", 500, 700)
            start, end = snap_viewport(0, 3000, 128)
            # Render twice so the cached run actually serves tiles.
            matrix, result = render_chart(engine, "s", 128, 48,
                                          t_qs=start, t_qe=end)
            matrix2, result2 = render_chart(engine, "s", 128, 48,
                                            t_qs=start, t_qe=end)
            assert np.array_equal(matrix, matrix2) and result == result2
            if cache_bytes:
                assert len(engine.tile_cache) > 0
            matrices.append(matrix)
    assert np.array_equal(matrices[0], matrices[1])


class TestDamagedData:
    @pytest.fixture
    def damaged_cached(self, tmp_path):
        """A store whose cache was warmed while healthy, then one chunk
        corrupted and the store reopened (fresh cache, same config)."""
        db = tmp_path / "db"
        config = StorageConfig(avg_series_point_number_threshold=100,
                               points_per_page=50,
                               tile_cache_bytes=8 * 1024 * 1024,
                               tile_cache_spans=16)
        engine = StorageEngine(db, config)
        engine.create_series("s")
        t = np.arange(1024, dtype=np.int64)
        engine.write_batch("s", t, np.sin(t / 7.0) * 5)
        engine.flush_all()
        start, end = snap_viewport(0, 1024, 128)
        TiledM4Operator(engine).query("s", start, end, 128)  # warm
        victim = engine.chunks_for("s")[3]
        engine.close()
        with open(victim.file_path, "r+b") as f:
            f.seek(victim.data_offset + 3)
            byte = f.read(1)
            f.seek(victim.data_offset + 3)
            f.write(bytes([byte[0] ^ 0x40]))
        engine = StorageEngine(db, config)
        yield engine, victim, (start, end)
        engine.close()

    def test_quarantined_chunk_in_cached_tile_not_stale(
            self, damaged_cached):
        """After a chunk inside a cached tile is quarantined, the cached
        path must serve the *degraded* answer — skipping the damaged
        range — not the stale clean tile."""
        engine, victim, (start, end) = damaged_cached
        tiled = TiledM4Operator(engine)
        first = tiled.query("s", start, end, 128)
        assert first.degraded
        assert any(lo <= victim.start_time and victim.end_time < hi
                   for lo, hi in first.skipped)
        # The quarantine event invalidated the overlapping tiles: the
        # warmed re-query still matches the uncached degraded answer.
        again = tiled.query("s", start, end, 128)
        plain = M4LSMOperator(engine).query("s", start, end, 128)
        assert again == plain == first

    def test_strict_mode_bypasses_cache_and_raises(self, damaged_cached):
        """A strict request against a degraded-default engine must not
        be answered from tiles computed under the lenient policy."""
        engine, _victim, (start, end) = damaged_cached
        TiledM4Operator(engine).query("s", start, end, 128)  # warm, degraded
        with pytest.raises(CorruptFileError):
            TiledM4Operator(engine, degraded=False).query(
                "s", start, end, 128)
