"""Dedicated tests for the M4-UDF baseline operator."""

import numpy as np
import pytest

from repro.core import M4UDFOperator, Point
from repro.core.m4 import m4_aggregate_arrays


class TestQuery:
    def test_equals_direct_aggregation_on_merged_data(self, loaded_engine):
        engine, t, v = loaded_engine
        udf = M4UDFOperator(engine)
        result = udf.query("s", int(t[0]), int(t[-1]) + 1, 8)
        direct = m4_aggregate_arrays(t, v, int(t[0]), int(t[-1]) + 1, 8)
        assert result.semantically_equal(direct)

    def test_loads_every_overlapping_chunk(self, loaded_engine):
        engine, t, _v = loaded_engine
        before = engine.stats.snapshot()
        M4UDFOperator(engine).query("s", int(t[0]), int(t[49]) + 1, 2)
        diff = engine.stats.diff(before)
        assert diff.chunk_loads == 1  # only the first chunk overlaps
        before = engine.stats.snapshot()
        M4UDFOperator(engine).query("s", int(t[0]), int(t[-1]) + 1, 2)
        assert engine.stats.diff(before).chunk_loads == 10

    def test_skips_fully_deleted_chunks(self, loaded_engine):
        """The behaviour behind Figure 14: a chunk whose whole interval
        is deleted is pruned before loading."""
        engine, t, _v = loaded_engine
        # Chunk 0 covers t[0]..t[49]; delete it completely.
        engine.delete("s", int(t[0]), int(t[49]))
        engine.flush_all()
        before = engine.stats.snapshot()
        result = M4UDFOperator(engine).query("s", int(t[0]),
                                             int(t[-1]) + 1, 2)
        diff = engine.stats.diff(before)
        assert diff.chunk_loads == 9
        assert result[0].first.t == int(t[50])

    def test_empty_range(self, loaded_engine):
        engine, t, _v = loaded_engine
        result = M4UDFOperator(engine).query("s", int(t[-1]) + 100,
                                             int(t[-1]) + 200, 3)
        assert all(span.is_empty() for span in result)


class TestMergedSeries:
    def test_returns_latest_points_in_range(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.arange(100, dtype=np.int64),
                           np.zeros(100))
        engine.flush("s")
        engine.write_batch("s", np.array([10], dtype=np.int64),
                           np.array([5.0]))
        engine.delete("s", 20, 29)
        engine.flush_all()
        series = M4UDFOperator(engine).merged_series("s", 5, 50)
        assert series.first() == Point(5, 0.0)
        assert series.contains_time(10)
        assert float(series.slice_time(10, 11).values[0]) == 5.0
        assert not series.contains_time(25)
        assert series.last().t == 49

    def test_range_clipping_half_open(self, loaded_engine):
        engine, t, _v = loaded_engine
        series = M4UDFOperator(engine).merged_series("s", int(t[3]),
                                                     int(t[7]))
        assert series.first().t == int(t[3])
        assert series.last().t == int(t[6])

    def test_empty_result(self, loaded_engine):
        engine, t, _v = loaded_engine
        series = M4UDFOperator(engine).merged_series(
            "s", int(t[-1]) + 10, int(t[-1]) + 20)
        assert len(series) == 0


class TestStreamingVariant:
    def test_streaming_counts_merged_points(self, loaded_engine):
        engine, t, _v = loaded_engine
        before = engine.stats.snapshot()
        M4UDFOperator(engine, streaming=True).query(
            "s", int(t[0]), int(t[-1]) + 1, 4)
        assert engine.stats.diff(before).points_merged == t.size

    @pytest.mark.parametrize("w", [1, 5, 50])
    def test_streaming_equals_vectorized(self, loaded_engine, w):
        engine, t, _v = loaded_engine
        fast = M4UDFOperator(engine)
        slow = M4UDFOperator(engine, streaming=True)
        t_qs, t_qe = int(t[0]), int(t[-1]) + 1
        assert fast.query("s", t_qs, t_qe, w).semantically_equal(
            slow.query("s", t_qs, t_qe, w))
