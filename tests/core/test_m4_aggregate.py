"""Unit tests for the relational M4 aggregation (Definition 2.3)."""

import numpy as np
import pytest

from repro.core import Point, TimeSeries, m4_aggregate_arrays, m4_aggregate_series
from repro.core.spans import span_bounds
from repro.errors import InvalidQueryRangeError


def brute_force(t, v, t_qs, t_qe, w):
    """Literal per-span reference: filter, then min/max scans."""
    spans = []
    for i in range(w):
        start, end = span_bounds(i, t_qs, t_qe, w)
        rows = [j for j in range(len(t)) if start <= t[j] < end]
        if not rows:
            spans.append(None)
            continue
        bottom = min(rows, key=lambda j: (v[j], t[j]))
        top = max(rows, key=lambda j: (v[j], -t[j]))
        spans.append((Point(int(t[rows[0]]), float(v[rows[0]])),
                      Point(int(t[rows[-1]]), float(v[rows[-1]])),
                      Point(int(t[bottom]), float(v[bottom])),
                      Point(int(t[top]), float(v[top]))))
    return spans


class TestAggregateArrays:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        t = np.sort(rng.choice(500, size=120, replace=False)).astype(np.int64)
        v = rng.integers(-50, 50, 120).astype(np.float64)
        result = m4_aggregate_arrays(t, v, 0, 500, 13)
        expected = brute_force(t, v, 0, 500, 13)
        for got, want in zip(result.spans, expected):
            if want is None:
                assert got.is_empty()
            else:
                assert (got.first, got.last) == want[:2]
                assert got.bottom.v == want[2].v
                assert got.top.v == want[3].v

    def test_single_span_is_whole_range(self):
        t = np.array([1, 5, 9], dtype=np.int64)
        v = np.array([3.0, -1.0, 2.0])
        result = m4_aggregate_arrays(t, v, 0, 10, 1)
        agg = result[0]
        assert agg.first == Point(1, 3.0)
        assert agg.last == Point(9, 2.0)
        assert agg.bottom == Point(5, -1.0)
        assert agg.top == Point(1, 3.0)

    def test_points_outside_range_ignored(self):
        t = np.array([0, 5, 100], dtype=np.int64)
        v = np.array([1.0, 2.0, 3.0])
        result = m4_aggregate_arrays(t, v, 1, 50, 2)
        assert result[0].first == Point(5, 2.0)
        assert result[1].is_empty()

    def test_range_boundaries_half_open(self):
        t = np.array([10, 19], dtype=np.int64)
        v = np.array([1.0, 2.0])
        result = m4_aggregate_arrays(t, v, 10, 19, 1)
        assert result[0].first == result[0].last == Point(10, 1.0)

    def test_empty_data(self):
        result = m4_aggregate_arrays(np.empty(0, dtype=np.int64),
                                     np.empty(0), 0, 10, 3)
        assert all(span.is_empty() for span in result)

    def test_w_larger_than_points(self):
        t = np.array([2, 7], dtype=np.int64)
        v = np.array([1.0, 2.0])
        result = m4_aggregate_arrays(t, v, 0, 10, 10)
        non_empty = result.non_empty_spans()
        assert non_empty == [2, 7]

    def test_invalid_query_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            m4_aggregate_arrays([1], [1.0], 5, 5, 1)
        with pytest.raises(InvalidQueryRangeError):
            m4_aggregate_arrays([1], [1.0], 0, 5, 0)

    def test_single_point_per_span_all_four_equal(self):
        t = np.array([5], dtype=np.int64)
        v = np.array([2.5])
        agg = m4_aggregate_arrays(t, v, 0, 10, 1)[0]
        assert agg.first == agg.last == agg.bottom == agg.top \
            == Point(5, 2.5)

    def test_tie_break_bottom_top_earliest(self):
        t = np.array([1, 2, 3], dtype=np.int64)
        v = np.array([5.0, 5.0, 5.0])
        agg = m4_aggregate_arrays(t, v, 0, 4, 1)[0]
        assert agg.bottom.t == 1 and agg.top.t == 1


class TestAggregateSeries:
    def test_defaults_cover_whole_series(self):
        series = TimeSeries([1, 2, 3], [1.0, 2.0, 3.0])
        result = m4_aggregate_series(series, w=1)
        assert result.t_qs == 1 and result.t_qe == 4
        assert result[0].last == Point(3, 3.0)

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            m4_aggregate_series(TimeSeries.empty(), w=1)

    def test_reduction_bound(self):
        rng = np.random.default_rng(1)
        t = np.arange(10_000, dtype=np.int64)
        v = rng.normal(size=10_000)
        result = m4_aggregate_series(TimeSeries(t, v), w=25)
        assert result.total_points() <= 4 * 25
