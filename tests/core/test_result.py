"""Unit tests for M4Result and SpanAggregate."""

import pytest

from repro.core import M4Result, Point, SpanAggregate


def span(first, last, bottom, top):
    return SpanAggregate(first=Point(*first), last=Point(*last),
                         bottom=Point(*bottom), top=Point(*top))


@pytest.fixture
def result():
    spans = (
        span((0, 1.0), (9, 2.0), (5, -3.0), (7, 8.0)),
        SpanAggregate(),
        span((20, 4.0), (29, 5.0), (20, 4.0), (29, 5.0)),
    )
    return M4Result(0, 30, 3, spans)


class TestSpanAggregate:
    def test_empty(self):
        empty = SpanAggregate()
        assert empty.is_empty()
        assert empty.points() == []

    def test_points_dedupe_and_sort(self):
        s = span((1, 1.0), (1, 1.0), (1, 1.0), (1, 1.0))
        assert s.points() == [Point(1, 1.0)]
        s = span((1, 5.0), (9, 2.0), (5, -3.0), (3, 8.0))
        assert [p.t for p in s.points()] == [1, 3, 5, 9]

    def test_semantic_equality_allows_bp_tp_time_latitude(self):
        a = span((0, 1.0), (9, 2.0), (3, -1.0), (4, 5.0))
        b = span((0, 1.0), (9, 2.0), (7, -1.0), (8, 5.0))
        assert a.semantically_equal(b)

    def test_semantic_equality_requires_fp_lp_exact(self):
        a = span((0, 1.0), (9, 2.0), (3, -1.0), (4, 5.0))
        b = span((1, 1.0), (9, 2.0), (3, -1.0), (4, 5.0))
        assert not a.semantically_equal(b)

    def test_semantic_equality_empty_cases(self):
        a = SpanAggregate()
        b = span((0, 1.0), (9, 2.0), (3, -1.0), (4, 5.0))
        assert a.semantically_equal(SpanAggregate())
        assert not a.semantically_equal(b)
        assert not b.semantically_equal(a)

    def test_value_bounds(self):
        s = span((0, 1.0), (9, 2.0), (5, -3.0), (7, 8.0))
        assert s.value_bounds() == (-3.0, 8.0)


class TestM4Result:
    def test_span_count_enforced(self):
        with pytest.raises(ValueError):
            M4Result(0, 10, 3, (SpanAggregate(),))

    def test_access(self, result):
        assert len(result) == 3
        assert result[1].is_empty()
        assert result.non_empty_spans() == [0, 2]

    def test_rows_skip_empty_spans(self, result):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0][0] == 0 and rows[1][0] == 2
        assert rows[0][1:] == (0, 1.0, 9, 2.0, 5, -3.0, 7, 8.0)

    def test_to_series_dedupes(self, result):
        series = result.to_series()
        assert series.timestamps.tolist() == [0, 5, 7, 9, 20, 29]
        assert result.total_points() == 6

    def test_to_series_empty(self):
        empty = M4Result(0, 10, 1, (SpanAggregate(),))
        assert len(empty.to_series()) == 0

    def test_semantic_equality_checks_geometry(self, result):
        other = M4Result(0, 30, 3, result.spans)
        assert result.semantically_equal(other)
        shifted = M4Result(0, 31, 3, result.spans)
        assert not result.semantically_equal(shifted)
