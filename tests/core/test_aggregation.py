"""Tests for metadata-accelerated span aggregation."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AGGREGATE_NAMES,
    aggregate_lsm,
    aggregate_udf,
)
from repro.errors import QueryError


def brute_force(t, v, t_qs, t_qe, w, function):
    """Per-span reference for one aggregate."""
    from repro.core.spans import span_bounds
    out = []
    for i in range(w):
        start, end = span_bounds(i, t_qs, t_qe, w)
        rows = [j for j in range(len(t)) if start <= t[j] < end]
        if not rows:
            out.append(None)
            continue
        seg = [v[j] for j in rows]
        value = {
            "count": len(rows),
            "sum": sum(seg),
            "avg": sum(seg) / len(rows),
            "min_value": min(seg),
            "max_value": max(seg),
            "min_time": int(t[rows[0]]),
            "max_time": int(t[rows[-1]]),
            "first_value": float(v[rows[0]]),
            "last_value": float(v[rows[-1]]),
        }[function]
        out.append(value)
    return out


class TestAgainstBruteForce:
    @pytest.mark.parametrize("function", AGGREGATE_NAMES)
    def test_sequential_data(self, loaded_engine, function):
        engine, t, v = loaded_engine
        t_qs, t_qe = int(t[0]), int(t[-1]) + 1
        result = aggregate_lsm(engine, "s", t_qs, t_qe, 7, (function,))
        expected = brute_force(t, v, t_qs, t_qe, 7, function)
        for got, want in zip(result.column(function), expected):
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want)

    def test_multiple_functions_at_once(self, loaded_engine):
        engine, t, _v = loaded_engine
        t_qs, t_qe = int(t[0]), int(t[-1]) + 1
        result = aggregate_lsm(engine, "s", t_qs, t_qe, 4,
                               ("count", "avg", "max_value"))
        assert sum(result.column("count")) == t.size
        assert len(result.rows[0]) == 3


class TestLsmEqualsUdf:
    @pytest.mark.parametrize("seed", range(6))
    def test_adversarial_workloads(self, engine, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(100, 600))
        t = np.sort(rng.choice(n * 7, size=n, replace=False))
        v = np.round(rng.normal(0, 10, n), 2)
        engine.create_series("x")
        for part in np.array_split(rng.permutation(n), rng.integers(1, 5)):
            part = np.sort(part)
            engine.write_batch("x", t[part], v[part])
            engine.flush("x")
        if rng.random() < 0.8:
            lo = int(rng.integers(0, n * 6))
            engine.delete("x", lo, lo + int(rng.integers(1, n)))
        engine.write_batch("x", t[:n // 5], v[:n // 5] + 1)
        engine.flush_all()
        t_qs, t_qe = int(t[0]), int(t[-1]) + 1
        for w in (1, 9, 53):
            a = aggregate_udf(engine, "x", t_qs, t_qe, w, AGGREGATE_NAMES)
            b = aggregate_lsm(engine, "x", t_qs, t_qe, w, AGGREGATE_NAMES)
            for function in AGGREGATE_NAMES:
                got = b.column(function)
                want = a.column(function)
                for g, x in zip(got, want):
                    if x is None:
                        assert g is None, (seed, w, function)
                    else:
                        assert g == pytest.approx(x), (seed, w, function)

    def test_metadata_path_avoids_reads(self, loaded_engine):
        engine, t, _v = loaded_engine
        before = engine.stats.snapshot()
        aggregate_lsm(engine, "s", int(t[0]), int(t[-1]) + 1, 2,
                      ("count", "avg"))
        assert engine.stats.diff(before).chunk_loads == 0

    def test_udf_always_reads(self, loaded_engine):
        engine, t, _v = loaded_engine
        before = engine.stats.snapshot()
        aggregate_udf(engine, "s", int(t[0]), int(t[-1]) + 1, 2,
                      ("count",))
        assert engine.stats.diff(before).chunk_loads == 10


class TestValidation:
    def test_unknown_function_rejected(self, loaded_engine):
        engine, t, _v = loaded_engine
        with pytest.raises(QueryError):
            aggregate_lsm(engine, "s", int(t[0]), int(t[-1]) + 1, 2,
                          ("median",))

    def test_column_of_uncomputed_function(self, loaded_engine):
        engine, t, _v = loaded_engine
        result = aggregate_lsm(engine, "s", int(t[0]), int(t[-1]) + 1, 2,
                               ("count",))
        with pytest.raises(QueryError):
            result.column("avg")

    def test_case_insensitive_names(self, loaded_engine):
        engine, t, _v = loaded_engine
        result = aggregate_lsm(engine, "s", int(t[0]), int(t[-1]) + 1, 2,
                               ("COUNT", "Avg"))
        assert result.functions == ("count", "avg")


class TestSqlIntegration:
    def test_span_aggregates_via_sql(self, loaded_engine):
        from repro.query import Executor, parse
        engine, t, _v = loaded_engine
        executor = Executor(engine)
        table = executor.execute(parse(
            "SELECT COUNT(s), AVG(s), MIN_VALUE(s) FROM s "
            "WHERE time >= %d AND time < %d GROUP BY SPANS(5)"
            % (t[0], int(t[-1]) + 1)))
        assert table.columns == ("span", "COUNT", "AVG", "MIN_VALUE")
        assert sum(table.column("COUNT")) == t.size

    def test_lsm_and_udf_sql_agree(self, loaded_engine):
        from repro.query import Executor, parse
        engine, t, _v = loaded_engine
        executor = Executor(engine)
        base = ("SELECT SUM(s), LAST_VALUE(s) FROM s WHERE time >= %d "
                "AND time < %d GROUP BY SPANS(3)" % (t[0], int(t[-1]) + 1))
        a = executor.execute(parse(base + " USING M4LSM"))
        b = executor.execute(parse(base + " USING M4UDF"))
        assert a.columns == b.columns
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a == pytest.approx(row_b)

    def test_mixed_aggregates_rejected(self):
        from repro.errors import SqlSyntaxError
        from repro.query import parse
        with pytest.raises(SqlSyntaxError):
            parse("SELECT COUNT(s), TopValue(s) FROM x GROUP BY SPANS(2)")
