"""Unit tests for Point and TimeSeries."""

import numpy as np
import pytest

from repro.core import Point, TimeSeries, concat_series
from repro.errors import ReproError


class TestPoint:
    def test_ordering_by_time_then_value(self):
        assert Point(1, 5.0) < Point(2, 0.0)
        assert Point(1, 1.0) < Point(1, 2.0)

    def test_iteration(self):
        t, v = Point(3, 4.0)
        assert (t, v) == (3, 4.0)

    def test_hashable_and_equal(self):
        assert Point(1, 2.0) == Point(1, 2.0)
        assert len({Point(1, 2.0), Point(1, 2.0), Point(2, 2.0)}) == 2


class TestConstruction:
    def test_basic(self):
        series = TimeSeries([1, 2, 5], [10.0, 20.0, 50.0])
        assert len(series) == 3 and bool(series)

    def test_empty(self):
        series = TimeSeries.empty()
        assert len(series) == 0 and not series
        assert repr(series) == "TimeSeries(empty)"

    def test_non_increasing_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries([1, 1], [0.0, 0.0])
        with pytest.raises(ReproError):
            TimeSeries([2, 1], [0.0, 0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries([1], [1.0, 2.0])

    def test_2d_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_from_points_sorts(self):
        series = TimeSeries.from_points([Point(3, 3.0), (1, 1.0),
                                         Point(2, 2.0)])
        assert series.timestamps.tolist() == [1, 2, 3]

    def test_from_points_duplicate_times_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries.from_points([(1, 1.0), (1, 2.0)])

    def test_arrays_read_only(self):
        series = TimeSeries([1, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            series.timestamps[0] = 99


class TestAccess:
    @pytest.fixture
    def series(self):
        return TimeSeries([10, 20, 30, 40], [5.0, -1.0, 7.0, 2.0])

    def test_indexing_and_slicing(self, series):
        assert series[0] == Point(10, 5.0)
        assert series[-1] == Point(40, 2.0)
        sliced = series[1:3]
        assert isinstance(sliced, TimeSeries)
        assert sliced.timestamps.tolist() == [20, 30]

    def test_iteration_yields_points(self, series):
        assert list(series)[2] == Point(30, 7.0)

    def test_equality(self, series):
        assert series == TimeSeries([10, 20, 30, 40], [5.0, -1.0, 7.0, 2.0])
        assert series != TimeSeries([10], [5.0])
        assert (series == 42) is False or True  # NotImplemented tolerated

    def test_nan_equality(self):
        a = TimeSeries([1], [np.nan])
        b = TimeSeries([1], [np.nan])
        assert a == b


class TestRepresentationPoints:
    @pytest.fixture
    def series(self):
        return TimeSeries([10, 20, 30, 40], [5.0, -1.0, 7.0, 2.0])

    def test_four_functions(self, series):
        assert series.first() == Point(10, 5.0)
        assert series.last() == Point(40, 2.0)
        assert series.bottom() == Point(20, -1.0)
        assert series.top() == Point(30, 7.0)

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            TimeSeries.empty().first()

    def test_tied_extreme_returns_earliest(self):
        series = TimeSeries([1, 2], [7.0, 7.0])
        assert series.top() == Point(1, 7.0)


class TestSlicing:
    @pytest.fixture
    def series(self):
        return TimeSeries([10, 20, 30, 40], [1.0, 2.0, 3.0, 4.0])

    def test_slice_time_half_open(self, series):
        assert series.slice_time(20, 40).timestamps.tolist() == [20, 30]
        assert series.slice_time(15, 45).timestamps.tolist() == [20, 30, 40]
        assert len(series.slice_time(41, 50)) == 0

    def test_slice_time_closed(self, series):
        assert series.slice_time_closed(20, 40).timestamps.tolist() \
            == [20, 30, 40]

    def test_time_range(self, series):
        assert series.time_range() == (10, 40)

    def test_contains_time(self, series):
        assert series.contains_time(30)
        assert not series.contains_time(31)
        assert not TimeSeries.empty().contains_time(0)


class TestConcat:
    def test_concatenates_in_order(self):
        a = TimeSeries([1, 2], [1.0, 2.0])
        b = TimeSeries([3], [3.0])
        out = concat_series([a, b])
        assert out.timestamps.tolist() == [1, 2, 3]

    def test_empty_parts_skipped(self):
        out = concat_series([TimeSeries.empty(), TimeSeries([1], [1.0])])
        assert len(out) == 1

    def test_all_empty(self):
        assert len(concat_series([])) == 0

    def test_overlap_rejected(self):
        a = TimeSeries([1, 5], [1.0, 5.0])
        b = TimeSeries([3], [3.0])
        with pytest.raises(ReproError):
            concat_series([a, b])
