"""Unit tests for M4 time span arithmetic (Definition 2.3)."""

import numpy as np
import pytest

from repro.core.spans import (
    all_span_bounds,
    iter_spans,
    span_bounds,
    span_index,
    span_indices,
    validate_query,
)
from repro.errors import InvalidQueryRangeError


class TestValidation:
    def test_empty_range_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            validate_query(10, 10, 5)
        with pytest.raises(InvalidQueryRangeError):
            validate_query(10, 5, 5)

    def test_non_positive_w_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            validate_query(0, 10, 0)


class TestSpanIndex:
    def test_matches_sql_floor_formula(self):
        # floor(w * (t - tqs) / (tqe - tqs)) from Appendix A.1
        for t in range(0, 10):
            assert span_index(t, 0, 10, 3) == (3 * t) // 10

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            span_index(10, 0, 10, 3)
        with pytest.raises(InvalidQueryRangeError):
            span_index(-1, 0, 10, 3)

    def test_vectorized_matches_scalar(self):
        t = np.arange(0, 100, dtype=np.int64)
        vec = span_indices(t, 0, 100, 7)
        assert vec.tolist() == [span_index(x, 0, 100, 7) for x in range(100)]

    def test_negative_timestamps(self):
        assert span_index(-100, -100, 0, 4) == 0
        assert span_index(-1, -100, 0, 4) == 3


class TestSpanBounds:
    def test_partition_is_exact(self):
        # Every timestamp lands in exactly the span whose bounds admit it.
        t_qs, t_qe, w = 3, 50, 7
        for t in range(t_qs, t_qe):
            i = span_index(t, t_qs, t_qe, w)
            start, end = span_bounds(i, t_qs, t_qe, w)
            assert start <= t < end

    def test_bounds_tile_the_range(self):
        t_qs, t_qe, w = 0, 100, 9
        previous_end = t_qs
        for i in range(w):
            start, end = span_bounds(i, t_qs, t_qe, w)
            assert start == previous_end
            previous_end = end
        assert previous_end == t_qe

    def test_w_exceeding_range_gives_empty_spans(self):
        bounds = [span_bounds(i, 0, 3, 6) for i in range(6)]
        lengths = [e - s for s, e in bounds]
        assert sum(lengths) == 3
        assert 0 in lengths

    def test_bad_index_rejected(self):
        with pytest.raises(InvalidQueryRangeError):
            span_bounds(5, 0, 10, 5)

    def test_all_span_bounds_matches_pairwise(self):
        bounds = all_span_bounds(7, 61, 5)
        for i in range(5):
            assert (int(bounds[i]), int(bounds[i + 1])) \
                == span_bounds(i, 7, 61, 5)

    def test_example_from_docstring(self):
        assert span_bounds(0, 0, 10, 3) == (0, 4)
        assert span_bounds(1, 0, 10, 3) == (4, 7)
        assert span_bounds(2, 0, 10, 3) == (7, 10)


class TestIterSpans:
    def test_yields_all_spans_in_order(self):
        spans = list(iter_spans(0, 10, 3))
        assert spans == [(0, 0, 4), (1, 4, 7), (2, 7, 10)]

    def test_single_span(self):
        assert list(iter_spans(5, 6, 1)) == [(0, 5, 6)]
