"""Unit tests for the tile cache: key scheme, LRU budget, epoch-checked
inserts and invalidation accounting — no engine involved."""

import pytest

from repro.core.tiles import (
    TileCache,
    TileEntry,
    snap_viewport,
    tile_eligible,
)
from repro.errors import InvalidQueryRangeError
from repro.obs import MetricsRegistry


def entry(nbytes=100):
    return TileEntry(spans=(), skipped=(), nbytes=nbytes)


def fresh_insert(cache, series, level, tile, e=None):
    """Insert with an epoch taken now (the no-race fast path)."""
    return cache.insert(series, level, tile, e or entry(),
                        cache.epoch(series))


class TestEligibility:
    def test_power_of_two_grid(self):
        # 1024 units / 256 spans = width 4 = 2**2.
        assert tile_eligible(0, 1024, 256) == 2
        assert tile_eligible(4096, 4096 + 1024, 256) == 2

    def test_level_zero(self):
        assert tile_eligible(0, 256, 256) == 0

    def test_duration_not_multiple_of_w(self):
        assert tile_eligible(0, 1025, 256) is None

    def test_span_width_not_power_of_two(self):
        assert tile_eligible(0, 256 * 3, 256) is None

    def test_start_off_grid(self):
        assert tile_eligible(2, 2 + 1024, 256) is None

    def test_degenerate_inputs(self):
        assert tile_eligible(0, 0, 256) is None
        assert tile_eligible(10, 5, 256) is None
        assert tile_eligible(0, 1024, 0) is None


class TestSnapViewport:
    def test_snapped_contains_and_is_eligible(self):
        for t_qs, t_qe, w in [(3, 1000, 256), (0, 1, 128),
                              (12345, 99999, 512), (7, 8, 4)]:
            start, end = snap_viewport(t_qs, t_qe, w)
            assert start <= t_qs and end >= t_qe
            assert tile_eligible(start, end, w) is not None

    def test_minimal_level(self):
        # [0, 1024) at w=256 is already eligible: snapping is identity.
        assert snap_viewport(0, 1024, 256) == (0, 1024)

    def test_tile_grid_alignment(self):
        start, end = snap_viewport(37, 9000, 256, tile_spans=64)
        s = (end - start) // 256
        assert start % (s * 64) == 0
        assert tile_eligible(start, end, 256) is not None

    def test_rejects_bad_ranges(self):
        with pytest.raises(InvalidQueryRangeError):
            snap_viewport(10, 10, 256)
        with pytest.raises(InvalidQueryRangeError):
            snap_viewport(0, 100, 0)


class TestTileRange:
    def test_key_to_time_range(self):
        cache = TileCache(10_000, spans_per_tile=8)
        assert cache.tile_range(0, 0) == (0, 8)
        assert cache.tile_range(3, 2) == (2 * 8 * 8, 3 * 8 * 8)
        lo, hi = cache.tile_range(5, -1)
        assert (lo, hi) == (-8 * 32, 0)


class TestLruBudget:
    def test_eviction_is_lru_ordered(self):
        cache = TileCache(250, spans_per_tile=4)
        for tile in range(2):
            assert fresh_insert(cache, "s", 0, tile)
        cache.lookup("s", 0, 0)  # refresh tile 0
        assert fresh_insert(cache, "s", 0, 2)  # evicts tile 1, the LRU
        assert cache.lookup("s", 0, 1) is None
        assert cache.lookup("s", 0, 0) is not None
        assert cache.lookup("s", 0, 2) is not None
        assert cache.bytes <= cache.capacity_bytes

    def test_oversized_entry_is_skipped(self):
        cache = TileCache(100, spans_per_tile=4)
        assert fresh_insert(cache, "s", 0, 0)
        assert not fresh_insert(cache, "s", 0, 1, entry(nbytes=101))
        # The resident tile survived the rejected insert.
        assert len(cache) == 1 and cache.lookup("s", 0, 0) is not None

    def test_reinsert_replaces_charge(self):
        cache = TileCache(1000, spans_per_tile=4)
        fresh_insert(cache, "s", 0, 0, entry(nbytes=400))
        fresh_insert(cache, "s", 0, 0, entry(nbytes=150))
        assert len(cache) == 1 and cache.bytes == 150

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TileCache(0)
        with pytest.raises(ValueError):
            TileCache(100, spans_per_tile=0)


class TestInvalidation:
    def test_overlap_only(self):
        cache = TileCache(10_000, spans_per_tile=8)
        for tile in range(4):           # level 0: [0,8) [8,16) [16,24) [24,32)
            fresh_insert(cache, "s", 0, tile)
        assert cache.invalidate("s", 8, 17) == 2
        assert cache.lookup("s", 0, 0) is not None
        assert cache.lookup("s", 0, 3) is not None
        assert cache.lookup("s", 0, 1) is None

    def test_cross_level(self):
        cache = TileCache(10_000, spans_per_tile=8)
        fresh_insert(cache, "s", 0, 0)   # [0, 8)
        fresh_insert(cache, "s", 4, 0)   # [0, 128)
        assert cache.invalidate("s", 100, 101) == 1
        assert cache.lookup("s", 0, 0) is not None
        assert cache.lookup("s", 4, 0) is None

    def test_other_series_untouched(self):
        cache = TileCache(10_000, spans_per_tile=8)
        fresh_insert(cache, "a", 0, 0)
        fresh_insert(cache, "b", 0, 0)
        assert cache.invalidate("a", 0, 8) == 1
        assert cache.lookup("b", 0, 0) is not None

    def test_empty_range_is_noop(self):
        cache = TileCache(10_000, spans_per_tile=8)
        fresh_insert(cache, "s", 0, 0)
        assert cache.invalidate("s", 5, 5) == 0
        assert len(cache) == 1

    def test_invalidate_series_and_all(self):
        cache = TileCache(10_000, spans_per_tile=8)
        fresh_insert(cache, "a", 0, 0)
        fresh_insert(cache, "a", 1, 0)
        fresh_insert(cache, "b", 0, 0)
        assert cache.invalidate_series("a") == 2
        assert len(cache) == 1
        assert cache.invalidate_all() == 1
        assert len(cache) == 0 and cache.bytes == 0


class TestEpochGuard:
    """A tile computed before an overlapping invalidation must never be
    inserted afterwards — the quarantine-thread race."""

    def test_racing_overlapping_invalidation_rejects(self):
        cache = TileCache(10_000, spans_per_tile=8)
        epoch = cache.epoch("s")
        cache.invalidate("s", 0, 8)      # overlaps level-0 tile 0
        assert not cache.insert("s", 0, 0, entry(), epoch)
        assert cache.lookup("s", 0, 0) is None

    def test_racing_disjoint_invalidation_accepts(self):
        cache = TileCache(10_000, spans_per_tile=8)
        epoch = cache.epoch("s")
        cache.invalidate("s", 800, 900)  # far from tile 0
        assert cache.insert("s", 0, 0, entry(), epoch)

    def test_series_wide_invalidation_fences_everything(self):
        cache = TileCache(10_000, spans_per_tile=8)
        epoch = cache.epoch("s")
        cache.invalidate_series("s")
        assert not cache.insert("s", 3, 99, entry(), epoch)

    def test_generation_bump_fences_every_series(self):
        cache = TileCache(10_000, spans_per_tile=8)
        epoch = cache.epoch("other")
        cache.invalidate_all()
        assert not cache.insert("other", 0, 0, entry(), epoch)

    def test_log_overflow_is_conservative(self):
        """Once the bounded log loses the epoch's vantage point, the
        insert is rejected even though no logged event overlaps."""
        cache = TileCache(10_000, spans_per_tile=8)
        epoch = cache.epoch("s")
        for _ in range(300):             # > _INVALIDATION_LOG entries
            cache.invalidate("s", 10_000, 10_001)
        assert not cache.insert("s", 0, 0, entry(), epoch)

    def test_fresh_epoch_after_invalidations_accepts(self):
        cache = TileCache(10_000, spans_per_tile=8)
        for _ in range(300):
            cache.invalidate("s", 10_000, 10_001)
        assert fresh_insert(cache, "s", 0, 0)


class TestObservability:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        cache = TileCache(250, spans_per_tile=4, metrics=metrics)

        def value(name):
            return metrics.counter(name).value

        fresh_insert(cache, "s", 0, 0)
        cache.lookup("s", 0, 0)
        cache.lookup("s", 0, 1)
        fresh_insert(cache, "s", 0, 1)
        fresh_insert(cache, "s", 0, 2)   # evicts the LRU (budget 250)
        cache.invalidate("s", 0, 1 << 20)
        epoch = cache.epoch("s")
        cache.invalidate("s", 0, 8)
        cache.insert("s", 0, 0, entry(), epoch)
        cache.count_bypass()
        assert value("tile_cache_hits_total") == 1
        assert value("tile_cache_misses_total") == 1
        assert value("tile_cache_evictions_total") == 1
        assert value("tile_cache_invalidations_total") == 2
        assert value("tile_cache_rejected_inserts_total") == 1
        assert value("tile_cache_bypass_total") == 1
        assert metrics.gauge("tile_cache_tiles").value == len(cache)
        assert metrics.gauge("tile_cache_bytes").value == cache.bytes

    def test_stats_and_snapshot(self):
        cache = TileCache(10_000, spans_per_tile=8)
        fresh_insert(cache, "s", 0, 1)
        fresh_insert(cache, "s", 0, 0)
        cache.lookup("s", 0, 1)          # now the most recent
        stats = cache.stats()
        assert stats["tiles"] == 2 and stats["spans_per_tile"] == 8
        assert stats["bytes"] == cache.bytes
        keys = [(s, z, k) for s, z, k, _ in cache.snapshot()]
        assert keys == [("s", 0, 0), ("s", 0, 1)]  # LRU order, old first
