"""Tests for M4-LSM query tracing (the EXPLAIN surface)."""

import numpy as np
import pytest

from repro.core import M4LSMOperator
from repro.core.m4lsm import EMPTY, FUSED, SOLVER


@pytest.fixture
def traced(engine):
    """A workload with fused, solver and empty spans, plus its trace."""
    engine.create_series("s")
    # Chunks of 50: aligned spans over [0, 500) then a gap to 1000.
    t = np.arange(500, dtype=np.int64)
    engine.write_batch("s", t, t.astype(float))
    engine.write_batch("s", np.array([100], dtype=np.int64),
                       np.array([999.0]))  # an overwrite: contested chunk
    engine.flush_all()
    lsm = M4LSMOperator(engine)
    result, trace = lsm.query_traced("s", 0, 1000, 10)
    return engine, result, trace


class TestQueryTrace:
    def test_modes_assigned(self, traced):
        _engine, _result, trace = traced
        modes = trace.counts_by_mode()
        assert modes[EMPTY] == 5      # spans over the data gap
        assert modes[SOLVER] >= 1     # the contested chunk's span
        assert modes[FUSED] >= 3      # untouched chunk spans
        assert sum(modes.values()) == 10

    def test_result_matches_plain_query(self, traced):
        engine, result, _trace = traced
        plain = M4LSMOperator(engine).query("s", 0, 1000, 10)
        assert plain.semantically_equal(result)

    def test_fused_spans_cost_nothing(self, traced):
        _engine, _result, trace = traced
        for span in trace.spans:
            if span.mode == FUSED:
                assert span.was_metadata_only()
                assert span.iterations == 0

    def test_totals_and_fraction(self, traced):
        _engine, _result, trace = traced
        assert trace.total("iterations") > 0
        assert 0.0 <= trace.metadata_only_fraction() <= 1.0

    def test_render_is_readable(self, traced):
        _engine, _result, trace = traced
        text = trace.render()
        assert "M4-LSM trace" in text
        assert "fused" in text and "solver" in text
        assert "metadata-only spans" in text

    def test_hottest_spans_sorted(self, traced):
        _engine, _result, trace = traced
        hottest = trace.hottest_spans()
        decoded = [s.pages_decoded for s in hottest]
        assert decoded == sorted(decoded, reverse=True)

    def test_all_fused_when_uncontested(self, engine):
        engine.create_series("clean")
        t = np.arange(500, dtype=np.int64)
        engine.write_batch("clean", t, t.astype(float))
        engine.flush_all()
        _result, trace = M4LSMOperator(engine).query_traced(
            "clean", 0, 500, 10)
        assert trace.counts_by_mode()[FUSED] == 10
        assert trace.metadata_only_fraction() == 1.0
        assert trace.hottest_spans() == []
