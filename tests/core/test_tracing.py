"""Tests for M4-LSM query tracing (the EXPLAIN surface)."""

import numpy as np
import pytest

from repro.core import M4LSMOperator
from repro.core.m4lsm import EMPTY, FUSED, SOLVER
from repro.core.m4lsm.tracing import QueryTrace, SpanTrace


@pytest.fixture
def traced(engine):
    """A workload with fused, solver and empty spans, plus its trace."""
    engine.create_series("s")
    # Chunks of 50: aligned spans over [0, 500) then a gap to 1000.
    t = np.arange(500, dtype=np.int64)
    engine.write_batch("s", t, t.astype(float))
    engine.write_batch("s", np.array([100], dtype=np.int64),
                       np.array([999.0]))  # an overwrite: contested chunk
    engine.flush_all()
    lsm = M4LSMOperator(engine)
    result, trace = lsm.query_traced("s", 0, 1000, 10)
    return engine, result, trace


class TestQueryTrace:
    def test_modes_assigned(self, traced):
        _engine, _result, trace = traced
        modes = trace.counts_by_mode()
        assert modes[EMPTY] == 5      # spans over the data gap
        assert modes[SOLVER] >= 1     # the contested chunk's span
        assert modes[FUSED] >= 3      # untouched chunk spans
        assert sum(modes.values()) == 10

    def test_result_matches_plain_query(self, traced):
        engine, result, _trace = traced
        plain = M4LSMOperator(engine).query("s", 0, 1000, 10)
        assert plain.semantically_equal(result)

    def test_fused_spans_cost_nothing(self, traced):
        _engine, _result, trace = traced
        for span in trace.spans:
            if span.mode == FUSED:
                assert span.was_metadata_only()
                assert span.iterations == 0

    def test_totals_and_fraction(self, traced):
        _engine, _result, trace = traced
        assert trace.total("iterations") > 0
        assert 0.0 <= trace.metadata_only_fraction() <= 1.0

    def test_render_is_readable(self, traced):
        _engine, _result, trace = traced
        text = trace.render()
        assert "M4-LSM trace" in text
        assert "fused" in text and "solver" in text
        assert "metadata-only spans" in text

    def test_hottest_spans_sorted(self, traced):
        _engine, _result, trace = traced
        hottest = trace.hottest_spans()
        decoded = [s.pages_decoded for s in hottest]
        assert decoded == sorted(decoded, reverse=True)

    def test_hottest_spans_respects_limit(self):
        spans = tuple(SpanTrace(span_index=i, start=i, end=i + 1,
                                mode=SOLVER, pages_decoded=i)
                      for i in range(8))
        trace = QueryTrace("s", 0, 8, 8, spans)
        hottest = trace.hottest_spans(limit=3)
        assert [s.pages_decoded for s in hottest] == [7, 6, 5]
        # Spans that decoded nothing never appear, however large the
        # limit — only index 0 is excluded here.
        assert len(trace.hottest_spans(limit=100)) == 7

    def test_metadata_only_fraction_of_all_empty_trace(self):
        spans = tuple(SpanTrace(span_index=i, start=i, end=i + 1,
                                mode=EMPTY) for i in range(4))
        trace = QueryTrace("s", 0, 4, 4, spans)
        # No non-empty spans: vacuously metadata-only (nothing was read).
        assert trace.metadata_only_fraction() == 1.0
        assert trace.counts_by_mode() == {EMPTY: 4, FUSED: 0, SOLVER: 0}
        assert trace.hottest_spans() == []

    def test_render_of_empty_trace_is_readable(self):
        trace = QueryTrace("s", 0, 0, 0, ())
        text = trace.render()
        assert "M4-LSM trace" in text
        assert "metadata-only spans: 100.0%" in text

    def test_all_fused_when_uncontested(self, engine):
        engine.create_series("clean")
        t = np.arange(500, dtype=np.int64)
        engine.write_batch("clean", t, t.astype(float))
        engine.flush_all()
        _result, trace = M4LSMOperator(engine).query_traced(
            "clean", 0, 500, 10)
        assert trace.counts_by_mode()[FUSED] == 10
        assert trace.metadata_only_fraction() == 1.0
        assert trace.hottest_spans() == []
