"""Unit tests for the M4-LSM building blocks: virtual deletes, chunk
views, candidate generation and verification rules."""

import numpy as np
import pytest

from repro.core.m4lsm import (
    BP,
    FP,
    LP,
    TP,
    ChunkView,
    candidate_pool,
    deletes_with_span,
    span_virtual_deletes,
    verify_bp_tp,
    verify_fp_lp,
)
from repro.core.m4lsm.candidates import known_candidates, pending_views
from repro.core.m4lsm.lazyload import (
    tighten_first_bound,
    tighten_last_bound,
)
from repro.core.series import Point
from repro.storage import Delete, DeleteList, StorageConfig, write_chunk
from repro.storage.versions import VERSION_INFINITY


def make_meta(times, values, version, series_id=1):
    _block, meta = write_chunk(series_id, version,
                               np.array(times, dtype=np.int64),
                               np.array(values, dtype=np.float64))
    return meta


class TestVirtualDeletes:
    def test_complement_of_span(self):
        d1, d2 = span_virtual_deletes(100, 200)
        for t in (99, -1000):
            assert d1.covers(t) and not d2.covers(t)
        for t in (200, 10 ** 12):
            assert d2.covers(t) and not d1.covers(t)
        for t in (100, 150, 199):
            assert not d1.covers(t) and not d2.covers(t)

    def test_infinite_version(self):
        d1, d2 = span_virtual_deletes(0, 1)
        assert d1.version == VERSION_INFINITY == d2.version

    def test_deletes_with_span_appends_two(self):
        base = DeleteList([Delete(0, 1, 1)])
        extended = deletes_with_span(base, 10, 20)
        assert len(extended) == 3
        assert len(base) == 1


class TestChunkView:
    def test_initial_state_is_whole_chunk_metadata(self):
        meta = make_meta([10, 20, 30], [5.0, -1.0, 7.0], version=3)
        view = ChunkView(meta, 0, 100)
        assert view.get_point(FP) == Point(10, 5.0)
        assert view.get_point(LP) == Point(30, 7.0)
        assert view.get_point(BP) == Point(20, -1.0)
        assert view.get_point(TP) == Point(30, 7.0)
        assert not view.loaded and view.version == 3

    def test_invalidate_and_dead_lifecycle(self):
        meta = make_meta([10], [1.0], version=1)
        view = ChunkView(meta, 0, 100)
        view.invalidate(TP)
        assert view.is_pending(TP)
        view.mark_dead(TP)
        assert view.is_dead(TP) and not view.is_pending(TP)
        assert view.get_point(TP) is None

    def test_interval_covers_uses_whole_chunk(self):
        meta = make_meta([10, 30], [1.0, 2.0], version=1)
        view = ChunkView(meta, 0, 100)
        assert view.interval_covers(20)  # no point there, interval covers
        assert not view.interval_covers(31)

    def test_surviving_data_applies_exclusions(self):
        meta = make_meta([1, 2, 3], [1.0, 2.0, 3.0], version=1)
        view = ChunkView(meta, 0, 10)
        view.data_t = np.array([1, 2, 3], dtype=np.int64)
        view.data_v = np.array([1.0, 2.0, 3.0])
        view.loaded = True
        view.excluded.add(2)
        t, v = view.surviving_data()
        assert t.tolist() == [1, 3] and v.tolist() == [1.0, 3.0]


class TestCandidateGeneration:
    def make_views(self):
        a = ChunkView(make_meta([10, 20], [1.0, 9.0], version=1), 0, 100)
        b = ChunkView(make_meta([15, 25], [0.0, 9.0], version=2), 0, 100)
        return [a, b]

    def test_fp_picks_min_time(self):
        pool = candidate_pool(self.make_views(), FP)
        assert pool[0][1] == Point(10, 1.0)

    def test_lp_picks_max_time(self):
        pool = candidate_pool(self.make_views(), LP)
        assert pool[0][1] == Point(25, 9.0)

    def test_bp_picks_min_value(self):
        pool = candidate_pool(self.make_views(), BP)
        assert pool[0][1] == Point(15, 0.0)

    def test_tp_value_tie_broken_by_earliest_time(self):
        # 9.0 appears at t=20 (v1) and t=25 (v2): first occurrence wins,
        # matching the UDF's argmax over the merged series.
        pool = candidate_pool(self.make_views(), TP)
        assert [p.t for _view, p in pool] == [20, 25]
        assert pool[0][1] == Point(20, 9.0)

    def test_timestamp_tie_broken_by_version(self):
        # Same value at the same timestamp in two chunk generations:
        # the newer version is tried first (argmax P.kappa).
        a = ChunkView(make_meta([10, 20], [1.0, 9.0], version=1), 0, 100)
        b = ChunkView(make_meta([20, 25], [9.0, 2.0], version=2), 0, 100)
        pool = candidate_pool([a, b], TP)
        assert [view.version for view, _p in pool] == [2, 1]
        assert pool[0][1] == Point(20, 9.0)

    def test_pending_views_excluded_from_pool(self):
        views = self.make_views()
        views[0].invalidate(FP)
        pool = candidate_pool(views, FP)
        assert len(pool) == 1 and pool[0][0] is views[1]
        assert pending_views(views, FP) == [views[0]]
        assert len(known_candidates(views, FP)) == 1

    def test_empty_pool_when_all_dead(self):
        views = self.make_views()
        for view in views:
            view.mark_dead(FP)
        assert candidate_pool(views, FP) == []


class TestVerifyFpLp:
    """Proposition 3.1: only deletes can kill an FP/LP candidate."""

    def test_latest_when_no_newer_delete_covers(self):
        view = ChunkView(make_meta([10, 20], [1.0, 2.0], 5), 0, 100)
        deletes = DeleteList([Delete(10, 10, 3)])  # older than the chunk
        verdict = verify_fp_lp(Point(10, 1.0), view, deletes)
        assert verdict.is_latest()

    def test_deleted_by_newer_delete(self):
        view = ChunkView(make_meta([10, 20], [1.0, 2.0], 5), 0, 100)
        deletes = DeleteList([Delete(10, 10, 7)])
        verdict = verify_fp_lp(Point(10, 1.0), view, deletes)
        assert verdict.status == "deleted"
        assert verdict.delete.version == 7

    def test_virtual_delete_kills_out_of_span_candidate(self):
        view = ChunkView(make_meta([10, 200], [1.0, 2.0], 5), 50, 100)
        deletes = deletes_with_span(DeleteList(), 50, 100)
        verdict = verify_fp_lp(Point(10, 1.0), view, deletes)
        assert verdict.status == "deleted"
        assert verdict.delete.is_virtual()


class TestVerifyBpTp:
    """Proposition 3.3: deletes or overwrites kill a BP/TP candidate."""

    def make_reader(self, engine):
        return engine.data_reader()

    def test_overwrite_detected_via_index(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([10, 20, 30], dtype=np.int64),
                           np.array([1.0, 9.0, 2.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([0.0]))
        engine.flush_all()
        old, new = engine.chunks_for("s")
        views = [ChunkView(old, 0, 100), ChunkView(new, 0, 100)]
        reader = engine.data_reader()
        verdict = verify_bp_tp(Point(20, 9.0), views[0], views,
                               DeleteList(), reader)
        assert verdict.status == "overwritten"
        assert verdict.by_view is views[1]

    def test_interval_overlap_without_point_is_latest(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([10, 20, 30], dtype=np.int64),
                           np.array([1.0, 9.0, 2.0]))
        engine.flush("s")
        # Newer chunk covers t=20 by interval but has no point there.
        engine.write_batch("s", np.array([15, 25], dtype=np.int64),
                           np.array([0.0, 0.0]))
        engine.flush_all()
        old, new = engine.chunks_for("s")
        views = [ChunkView(old, 0, 100), ChunkView(new, 0, 100)]
        reader = engine.data_reader()
        verdict = verify_bp_tp(Point(20, 9.0), views[0], views,
                               DeleteList(), reader)
        assert verdict.is_latest()

    def test_older_chunks_never_checked(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([5.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([9.0]))
        engine.flush_all()
        old, new = engine.chunks_for("s")
        views = [ChunkView(old, 0, 100), ChunkView(new, 0, 100)]
        reader = engine.data_reader()
        # The *newer* chunk's point is latest even though the older chunk
        # contains the same timestamp.
        verdict = verify_bp_tp(Point(20, 9.0), views[1], views,
                               DeleteList(), reader)
        assert verdict.is_latest()

    def test_delete_checked_before_overwrite(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([5.0]))
        engine.flush_all()
        meta = engine.chunks_for("s")[0]
        views = [ChunkView(meta, 0, 100)]
        deletes = DeleteList([Delete(20, 20, meta.version + 1)])
        verdict = verify_bp_tp(Point(20, 5.0), views[0], views, deletes,
                               engine.data_reader())
        assert verdict.status == "deleted"


class TestTightening:
    def test_first_bound_moves_past_delete(self):
        view = ChunkView(make_meta([10, 50], [1.0, 2.0], 1), 0, 100)
        tighten_first_bound(view, Delete(5, 20, 9))
        assert view.first_bound == 21
        assert view.is_pending(FP)

    def test_last_bound_moves_before_delete(self):
        view = ChunkView(make_meta([10, 50], [1.0, 2.0], 1), 0, 100)
        tighten_last_bound(view, Delete(40, 60, 9))
        assert view.last_bound == 39
        assert view.is_pending(LP)

    def test_bounds_only_tighten(self):
        view = ChunkView(make_meta([10, 50], [1.0, 2.0], 1), 0, 100)
        tighten_first_bound(view, Delete(5, 30, 9))
        tighten_first_bound(view, Delete(5, 20, 10))
        assert view.first_bound == 31
