"""Edge-run stitching: exhaustive off-by-one sweep over tile phases.

With tiny tiles (4 spans each) every combination of head run, interior
tiles and tail run occurs within a small sweep; each viewport's stitched
answer must equal the uncached operator byte-for-byte, and the cache
must never hold a partial (edge) tile.
"""

import numpy as np
import pytest

from repro.core import M4LSMOperator, TiledM4Operator
from repro.storage import StorageConfig, StorageEngine

S = 4          # span width 2**2: level-2 grid
PER_TILE = 4   # spans per tile -> tile width 16 time units


@pytest.fixture(scope="module")
def tiled_engine(tmp_path_factory):
    config = StorageConfig(avg_series_point_number_threshold=64,
                           points_per_page=32,
                           tile_cache_bytes=4 * 1024 * 1024,
                           tile_cache_spans=PER_TILE)
    db = tmp_path_factory.mktemp("tiles-edges") / "db"
    with StorageEngine(db, config) as engine:
        engine.create_series("s")
        t = np.arange(0, 600, 3, dtype=np.int64)  # stride 3: off-grid
        engine.write_batch("s", t, np.cos(t / 5.0) * 7)
        engine.flush_all()
        engine.delete("s", 120, 150)
        yield engine


def test_boundary_sweep(tiled_engine):
    """Every (start cell, span count) alignment against the tile grid."""
    plain = M4LSMOperator(tiled_engine)
    tiled = TiledM4Operator(tiled_engine)
    checked = 0
    for start_cell in range(0, 2 * PER_TILE + 1):
        for n_spans in range(1, 3 * PER_TILE + 2):
            t_qs = start_cell * S
            t_qe = t_qs + n_spans * S
            expected = plain.query("s", t_qs, t_qe, n_spans)
            got = tiled.query("s", t_qs, t_qe, n_spans)
            assert got == expected, (start_cell, n_spans)
            checked += 1
    assert checked == (2 * PER_TILE + 1) * (3 * PER_TILE + 1)


def test_only_whole_tiles_are_cached(tiled_engine):
    """Edge runs are computed per query, never inserted: every cached
    key covers exactly one whole tile and holds PER_TILE spans."""
    cache = tiled_engine.tile_cache
    assert len(cache) > 0
    for _series, level, _tile, entry in cache.snapshot():
        assert level == 2                 # only the level-2 sweep ran
        assert len(entry.spans) == PER_TILE


def test_single_span_viewports(tiled_engine):
    """w=1 at every grid offset: head and tail run collapse into one."""
    plain = M4LSMOperator(tiled_engine)
    tiled = TiledM4Operator(tiled_engine)
    for cell in range(0, 3 * PER_TILE):
        t_qs = cell * S
        assert tiled.query("s", t_qs, t_qs + S, 1) \
            == plain.query("s", t_qs, t_qs + S, 1), cell


def test_viewport_past_data_end(tiled_engine):
    """Tiles beyond the last point are empty but still stitch cleanly."""
    plain = M4LSMOperator(tiled_engine)
    tiled = TiledM4Operator(tiled_engine)
    t_qe = 4096  # far past the 600-unit series
    assert tiled.query("s", 0, t_qe, t_qe // S) \
        == plain.query("s", 0, t_qe, t_qe // S)
