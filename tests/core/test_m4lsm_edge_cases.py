"""Edge-case tests for the M4-LSM operator: boundary geometry, heavy
overwrites, ties, and interactions between deletes and virtual deletes."""

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator, Point
from repro.errors import InvalidQueryRangeError


def equal_queries(engine, series, t_qs, t_qe, w):
    a = M4UDFOperator(engine).query(series, t_qs, t_qe, w)
    b = M4LSMOperator(engine).query(series, t_qs, t_qe, w)
    assert a.semantically_equal(b), "w=%d [%d, %d)" % (w, t_qs, t_qe)
    return b


class TestQueryGeometry:
    def test_invalid_queries_rejected(self, loaded_engine):
        engine, _t, _v = loaded_engine
        lsm = M4LSMOperator(engine)
        with pytest.raises(InvalidQueryRangeError):
            lsm.query("s", 10, 10, 5)
        with pytest.raises(InvalidQueryRangeError):
            lsm.query("s", 0, 10, 0)

    def test_single_unit_range(self, loaded_engine):
        engine, t, v = loaded_engine
        result = equal_queries(engine, "s", int(t[3]), int(t[3]) + 1, 1)
        assert result[0].first == Point(int(t[3]), float(v[3]))

    def test_w_much_larger_than_range(self, loaded_engine):
        engine, t, _v = loaded_engine
        # 50 integer timestamps spread over 500 spans: most spans empty.
        equal_queries(engine, "s", int(t[0]), int(t[0]) + 50, 500)

    def test_range_starting_mid_chunk(self, loaded_engine):
        engine, t, _v = loaded_engine
        equal_queries(engine, "s", int(t[25]), int(t[470]) + 1, 7)

    def test_range_beyond_data_on_both_sides(self, loaded_engine):
        engine, t, _v = loaded_engine
        equal_queries(engine, "s", int(t[0]) - 10_000,
                      int(t[-1]) + 10_000, 9)

    def test_span_boundary_exactly_on_point(self, engine):
        engine.create_series("s")
        t = np.arange(0, 100, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.flush_all()
        # w=10 over [0, 100): boundaries land exactly on points 10,20,...
        result = equal_queries(engine, "s", 0, 100, 10)
        for i, span in enumerate(result.spans):
            assert span.first == Point(i * 10, float(i * 10))
            assert span.last == Point(i * 10 + 9, float(i * 10 + 9))


class TestHeavyOverwrites:
    def test_every_point_overwritten(self, engine):
        engine.create_series("s")
        t = np.arange(200, dtype=np.int64)
        engine.write_batch("s", t, np.zeros(200))
        engine.flush("s")
        engine.write_batch("s", t, np.ones(200))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 200, 4)
        for span in result.spans:
            assert span.top.v == 1.0 and span.bottom.v == 1.0

    def test_interleaved_overwrites_across_five_generations(self, engine):
        engine.create_series("s")
        t = np.arange(300, dtype=np.int64)
        rng = np.random.default_rng(3)
        engine.write_batch("s", t, rng.normal(size=300))
        engine.flush("s")
        for generation in range(1, 6):
            rows = np.sort(rng.choice(300, size=60, replace=False))
            engine.write_batch("s", t[rows],
                               np.full(60, float(generation)))
            engine.flush("s")
        engine.flush_all()
        equal_queries(engine, "s", 0, 300, 11)

    def test_overwrite_creates_new_top(self, engine):
        """An overwrite can RAISE the span maximum — the stale chunk
        metadata underestimates, which the optimistic-bound invariant
        must still handle via the newer chunk's own metadata."""
        engine.create_series("s")
        engine.write_batch("s", np.array([10, 20, 30], dtype=np.int64),
                           np.array([1.0, 2.0, 3.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([100.0]))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 100, 1)
        assert result[0].top == Point(20, 100.0)


class TestValueTies:
    def test_identical_values_everywhere(self, engine):
        engine.create_series("s")
        t = np.arange(120, dtype=np.int64)
        engine.write_batch("s", t, np.full(120, 7.0))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 120, 3)
        for span in result.spans:
            assert span.top.v == 7.0 == span.bottom.v

    def test_tied_extremes_across_overlapping_chunks(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([0, 10], dtype=np.int64),
                           np.array([5.0, 5.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([5, 15], dtype=np.int64),
                           np.array([5.0, 5.0]))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 20, 1)
        assert result[0].top.v == 5.0

    def test_tied_extremes_are_layout_independent(self, engine):
        # All values equal, split across chunks so the later-time point
        # lives in the newer chunk: the BP/TP value tie must resolve to
        # the earliest timestamp (the UDF's argmin/argmax answer), not
        # to whichever chunk has the larger version — byte-identical
        # `==`, not just semantically_equal.
        engine.create_series("s")
        engine.write_batch("s", np.array([0, 16], dtype=np.int64),
                           np.array([0.0, 0.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([1], dtype=np.int64),
                           np.array([0.0]))
        engine.flush_all()
        lsm = M4LSMOperator(engine).query("s", 0, 17, 16)
        udf = M4UDFOperator(engine).query("s", 0, 17, 16)
        assert lsm == udf
        assert lsm[0].bottom == Point(0, 0.0)
        assert lsm[0].top == Point(0, 0.0)

    def test_tied_extremes_in_fused_spans(self, engine):
        # Disjoint whole chunks inside one span take the metadata-only
        # fused path; its value ties must also break on earliest time.
        engine.create_series("s")
        engine.write_batch("s", np.array([10, 11, 12], dtype=np.int64),
                           np.array([0.0, 9.0, 5.0]))
        engine.flush("s")
        engine.write_batch("s", np.array([0, 1, 2], dtype=np.int64),
                           np.array([9.0, 0.0, 5.0]))
        engine.flush_all()
        lsm = M4LSMOperator(engine).query("s", 0, 20, 1)
        udf = M4UDFOperator(engine).query("s", 0, 20, 1)
        assert lsm == udf
        assert lsm[0].bottom == Point(1, 0.0)
        assert lsm[0].top == Point(0, 9.0)

    def test_negative_and_positive_zero(self, engine):
        engine.create_series("s")
        engine.write_batch("s", np.array([1, 2], dtype=np.int64),
                           np.array([-0.0, 0.0]))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 10, 1)
        assert result[0].top.v == 0.0


class TestDeleteVirtualInterplay:
    def test_delete_range_exactly_spanning_a_span(self, engine):
        engine.create_series("s")
        t = np.arange(100, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.delete("s", 25, 49)  # exactly span 1 of w=4
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 100, 4)
        assert result[1].is_empty()
        assert not result[0].is_empty() and not result[2].is_empty()

    def test_delete_crossing_span_boundary(self, engine):
        engine.create_series("s")
        t = np.arange(100, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.delete("s", 20, 30)
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 100, 4)
        assert result[0].last == Point(19, 19.0)
        assert result[1].first == Point(31, 31.0)

    def test_many_small_deletes_in_one_span(self, engine):
        engine.create_series("s")
        t = np.arange(200, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        for start in range(0, 40, 4):
            engine.delete("s", start, start + 1)
        engine.flush_all()
        equal_queries(engine, "s", 0, 200, 5)

    def test_delete_everything_but_one_point_per_span(self, engine):
        engine.create_series("s")
        t = np.arange(100, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.delete("s", 1, 49)
        engine.delete("s", 51, 99)
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 100, 2)
        assert result[0].first == result[0].last == Point(0, 0.0)
        assert result[1].first == result[1].last == Point(50, 50.0)

    def test_stacked_deletes_and_reinserts(self, engine):
        engine.create_series("s")
        t = np.arange(60, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.delete("s", 10, 20)
        engine.write_batch("s", np.array([15], dtype=np.int64),
                           np.array([-5.0]))
        engine.delete("s", 15, 15)
        engine.write_batch("s", np.array([15], dtype=np.int64),
                           np.array([99.0]))
        engine.flush_all()
        result = equal_queries(engine, "s", 0, 60, 1)
        assert result[0].top == Point(15, 99.0)


class TestMultiplePagesPerChunk:
    def test_partial_page_loads_stay_correct(self, tmp_path):
        from repro.storage import StorageConfig, StorageEngine
        config = StorageConfig(avg_series_point_number_threshold=300,
                               points_per_page=17)  # ragged page tails
        with StorageEngine(tmp_path / "db", config) as engine:
            engine.create_series("s")
            rng = np.random.default_rng(8)
            t = np.cumsum(rng.integers(1, 4, 900)).astype(np.int64)
            engine.write_batch("s", t, rng.normal(size=900))
            engine.delete("s", int(t[100]), int(t[130]))
            engine.flush_all()
            for w in (1, 13, 200):
                equal_queries(engine, "s", int(t[0]), int(t[-1]) + 1, w)
