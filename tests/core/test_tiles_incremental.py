"""Incremental tile maintenance under streaming appends: tail appends
dirty cells instead of dropping tiles, repairs are byte- and
pixel-identical to a full recompute, and interior/out-of-order writes
fall back to overlap invalidation."""

import numpy as np
import pytest

from repro.bench import make_operator, prepare_engine
from repro.core import M4LSMOperator, TiledM4Operator
from repro.core.tiles import snap_viewport
from repro.datasets import generate_torture
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine

CACHE = {"tile_cache_bytes": 8 * 1024 * 1024, "tile_cache_spans": 16}


def _counter(engine, name):
    doc = engine.metrics.snapshot()["counters"].get(name)
    return doc["value"] if doc else 0


def _make_engine(tmp_path, name="db", **config_kwargs):
    config_kwargs.setdefault("tile_cache_bytes", 8 * 1024 * 1024)
    config_kwargs.setdefault("tile_cache_spans", 16)
    config = StorageConfig(avg_series_point_number_threshold=200,
                           **config_kwargs)
    return StorageEngine(tmp_path / name, config)


def _load(engine, lo, hi, fn=np.sin):
    t = np.arange(lo, hi, dtype=np.int64)
    engine.write_batch("s", t, fn(t / 13.0))
    engine.flush_all()


class TestTailAppendRepair:
    def test_tail_append_dirties_then_repairs_byte_identical(
            self, tmp_path):
        """The streaming common case: an append past the series max
        marks cells dirty (no tile is dropped) and the next lookup
        repairs exactly those cells, matching the uncached answer."""
        with _make_engine(tmp_path) as engine:
            engine.create_series("s")
            _load(engine, 0, 1500)
            start, end = snap_viewport(0, 2048, 128)  # 8 tiles of 256
            tiled = TiledM4Operator(engine)
            tiled.query("s", start, end, 128)  # warm all 8 tiles
            _load(engine, 1500, 1900)          # tail: [1500, 1900)
            # Tiles 5, 6, 7 overlap the appended range -> dirty, kept.
            assert _counter(engine, "tile_cache_dirty_marks_total") == 3
            assert _counter(engine, "tile_cache_invalidations_total") == 0
            expected = M4LSMOperator(engine).query("s", start, end, 128)
            assert tiled.query("s", start, end, 128) == expected
            assert _counter(engine, "tile_cache_cell_repairs_total") > 0
            # Repaired tiles are clean: the warm re-query repairs nothing.
            repairs = _counter(engine, "tile_cache_cell_repairs_total")
            assert tiled.query("s", start, end, 128) == expected
            assert _counter(engine,
                            "tile_cache_cell_repairs_total") == repairs

    def test_interior_write_falls_back_to_invalidation(self, tmp_path):
        """An overwrite inside the existing range cannot use cell
        repair (clean cells' aggregates may change) — it must drop the
        overlapping tiles, and the re-query still matches."""
        with _make_engine(tmp_path) as engine:
            engine.create_series("s")
            _load(engine, 0, 2048)
            start, end = snap_viewport(0, 2048, 128)
            tiled = TiledM4Operator(engine)
            tiled.query("s", start, end, 128)
            _load(engine, 100, 150, fn=np.cos)  # interior overwrite
            assert _counter(engine,
                            "tile_cache_invalidations_total") > 0
            assert _counter(engine, "tile_cache_dirty_marks_total") == 0
            expected = M4LSMOperator(engine).query("s", start, end, 128)
            assert tiled.query("s", start, end, 128) == expected

    def test_incremental_disabled_invalidates_but_stays_correct(
            self, tmp_path):
        """``tile_incremental=False`` routes tail appends through the
        plain overlap-drop; answers are unchanged either way."""
        with _make_engine(tmp_path, tile_incremental=False) as engine:
            engine.create_series("s")
            _load(engine, 0, 1500)
            start, end = snap_viewport(0, 2048, 128)
            tiled = TiledM4Operator(engine)
            tiled.query("s", start, end, 128)
            _load(engine, 1500, 1900)
            assert _counter(engine, "tile_cache_dirty_marks_total") == 0
            assert _counter(engine,
                            "tile_cache_invalidations_total") > 0
            expected = M4LSMOperator(engine).query("s", start, end, 128)
            assert tiled.query("s", start, end, 128) == expected


@pytest.mark.parametrize("dataset", ["BallSpeed", "MF03", "KOB", "RcvTime"])
def test_growth_byte_identity(dataset):
    """Repeated tail batches on every dataset profile: after each
    round the tiled operator answers byte-identically, cold and warm,
    and only the dirty-repair path (never invalidation) ran."""
    with prepare_engine(dataset, n_points=3000, **CACHE) as prepared:
        engine, series = prepared.engine, prepared.series
        plain = make_operator(prepared, "m4lsm")
        tiled = make_operator(prepared, "m4lsm-tiles")
        hi = max(c.end_time for c in engine.chunks_for(series)) + 1
        start, end = snap_viewport(prepared.t_qs, hi + 6 * 400, 128,
                                   tile_spans=16)
        rng = np.random.default_rng(5)
        for _ in range(6):
            t = np.arange(hi, hi + 400, dtype=np.int64)
            engine.write_batch(series, t, rng.normal(0, 1, 400))
            engine.flush_all()
            hi += 400
            expected = plain.query(series, start, end, 128)
            assert tiled.query(series, start, end, 128) == expected
            assert tiled.query(series, start, end, 128) == expected
        assert _counter(engine, "tile_cache_dirty_marks_total") > 0
        assert _counter(engine, "tile_cache_invalidations_total") == 0


def test_torture_replay_identity_mid_stream(tmp_path):
    """Replaying a torture stream (out-of-order, late, duplicate
    batches) with tiled queries interleaved mid-stream: every answer
    matches the uncached operator on the same store state."""
    stream = generate_torture(n_points=4000, batch_size=250,
                              out_of_order_fraction=0.25,
                              duplicate_fraction=0.05, seed=23)
    with _make_engine(tmp_path) as engine:
        engine.create_series("s")
        tiled = TiledM4Operator(engine)
        plain = M4LSMOperator(engine)
        start, end = snap_viewport(0, 4000, 128, tile_spans=16)
        for i, (t, v) in enumerate(stream.batches):
            engine.write_batch("s", t, v)
            if i % 3 == 2:
                engine.flush_all()
                expected = plain.query("s", start, end, 128)
                assert tiled.query("s", start, end, 128) == expected
                assert tiled.query("s", start, end, 128) == expected
        engine.flush_all()
        assert tiled.query("s", start, end, 128) \
            == plain.query("s", start, end, 128)
        # Nearly every torture batch carries lagged points, so the
        # store must have taken the invalidation fallback (the pure
        # tail path is covered by TestTailAppendRepair above).
        assert _counter(engine, "tile_cache_invalidations_total") > 0


def test_pixel_identity_after_appends(tmp_path):
    """`render_chart` with a warm (then repaired) cache draws the same
    pixels as a cacheless engine holding the same points."""
    matrices = []
    for i, cache_bytes in enumerate((0, 8 * 1024 * 1024)):
        config = StorageConfig(avg_series_point_number_threshold=100,
                               tile_cache_bytes=cache_bytes,
                               tile_cache_spans=16)
        with StorageEngine(tmp_path / ("db%d" % i), config) as engine:
            engine.create_series("s")
            _load(engine, 0, 1500)
            start, end = snap_viewport(0, 2048, 128)
            render_chart(engine, "s", 128, 48, t_qs=start, t_qe=end)
            _load(engine, 1500, 2000, fn=np.cos)   # tail append
            matrix, result = render_chart(engine, "s", 128, 48,
                                          t_qs=start, t_qe=end)
            matrix2, result2 = render_chart(engine, "s", 128, 48,
                                            t_qs=start, t_qe=end)
            assert np.array_equal(matrix, matrix2) and result == result2
            if cache_bytes:
                assert len(engine.tile_cache) > 0
            matrices.append(matrix)
    assert np.array_equal(matrices[0], matrices[1])


def test_persistence_drops_dirty_tiles(tmp_path):
    """The tile snapshot has no dirty column: a dirty tile must not be
    revived (it would serve pre-append spans); clean tiles are."""
    db = tmp_path / "db"
    config = StorageConfig(avg_series_point_number_threshold=200,
                           tile_cache_bytes=8 * 1024 * 1024,
                           tile_cache_spans=16, tile_cache_persist=True)
    engine = StorageEngine(db, config)
    engine.create_series("s")
    _load(engine, 0, 1500)
    start, end = snap_viewport(0, 2048, 128)
    TiledM4Operator(engine).query("s", start, end, 128)
    assert len(engine.tile_cache) == 8
    _load(engine, 1500, 1600)  # dirties tiles 5 and 6
    engine.close()             # persists the 6 clean tiles only

    engine = StorageEngine(db, config)
    try:
        assert len(engine.tile_cache) == 6
        expected = M4LSMOperator(engine).query("s", start, end, 128)
        assert TiledM4Operator(engine).query("s", start, end, 128) \
            == expected
    finally:
        engine.close()
