"""Unit tests for step regression (Section 3.5)."""

import numpy as np
import pytest

from repro.core.index import StepRegression
from repro.errors import StepRegressionError


def stepped_timestamps(period=9000, runs=((0, 242), (242, 1000)),
                       gap=3_855_000, start=1_639_966_606_000):
    """Timestamps with a level gap between runs (Example 3.8's shape)."""
    t = [start]
    for run_index, (lo, hi) in enumerate(runs):
        if run_index:
            t.append(t[-1] + gap)
        for _ in range(lo + 1, hi):
            t.append(t[-1] + period)
    return np.array(t, dtype=np.int64)


class TestLearningSlope:
    def test_slope_is_inverse_median_delta(self):
        t = stepped_timestamps()
        regression = StepRegression.fit(t)
        assert regression.slope == pytest.approx(1 / 9000)

    def test_regular_data_single_tilt_segment(self):
        t = np.arange(1000, dtype=np.int64) * 500
        regression = StepRegression.fit(t)
        assert regression.n_segments == 1
        assert regression.max_error == 0.0

    def test_too_few_points_rejected(self):
        with pytest.raises(StepRegressionError):
            StepRegression.fit(np.array([5], dtype=np.int64))

    def test_non_increasing_rejected(self):
        with pytest.raises(StepRegressionError):
            StepRegression.fit(np.array([1, 1, 1], dtype=np.int64))


class TestProposition37:
    """f(FP.t) = 1 and f(LP.t) = |C| (Proposition 3.7)."""

    @pytest.mark.parametrize("timestamps", [
        np.arange(100, dtype=np.int64) * 7,
        stepped_timestamps(),
        stepped_timestamps(runs=((0, 100), (100, 200), (200, 300)),
                           gap=1_000_000),
    ])
    def test_endpoints(self, timestamps):
        regression = StepRegression.fit(timestamps)
        assert regression.predict(int(timestamps[0])) == pytest.approx(1.0)
        assert regression.predict(int(timestamps[-1])) \
            == pytest.approx(len(timestamps))


class TestStepShape:
    def test_example_38_structure(self):
        """Example 3.8: one gap -> three segments (tilt, level, tilt)."""
        t = stepped_timestamps()
        regression = StepRegression.fit(t)
        assert regression.n_segments == 3
        assert len(regression.split_timestamps) == 4
        # The level segment predicts the changing point's position (242).
        level_value = float(regression.intercepts[1])
        assert level_value == pytest.approx(242, abs=1)

    def test_prediction_error_bounded(self):
        t = stepped_timestamps()
        regression = StepRegression.fit(t)
        predicted = regression.predict_array(t)
        errors = np.abs(predicted - np.arange(1, t.size + 1))
        assert float(errors.max()) <= regression.max_error + 1e-9

    def test_monotone_non_decreasing(self):
        t = stepped_timestamps()
        regression = StepRegression.fit(t)
        probes = np.linspace(t[0], t[-1], 500).astype(np.int64)
        predictions = regression.predict_array(probes)
        assert np.all(np.diff(predictions) >= -1e-9)

    def test_prediction_clamped_to_position_range(self):
        t = stepped_timestamps()
        regression = StepRegression.fit(t)
        assert regression.predict(int(t[0]) - 10_000) == 1.0
        assert regression.predict(int(t[-1]) + 10_000) == float(t.size)

    def test_multiple_gaps(self):
        t = stepped_timestamps(runs=((0, 50), (50, 120), (120, 400)),
                               gap=900_000)
        regression = StepRegression.fit(t)
        assert regression.n_segments == 5  # tilt level tilt level tilt
        predicted = regression.predict_array(t)
        errors = np.abs(predicted - np.arange(1, t.size + 1))
        assert float(errors.max()) < 5.0

    def test_noisy_deltas_still_bounded_by_max_error(self):
        rng = np.random.default_rng(5)
        deltas = rng.integers(900, 1100, 999)
        deltas[rng.choice(999, 5, replace=False)] = 500_000
        t = np.concatenate(([0], np.cumsum(deltas))).astype(np.int64)
        regression = StepRegression.fit(t)
        predicted = regression.predict_array(t)
        errors = np.abs(predicted - np.arange(1, t.size + 1))
        assert float(errors.max()) <= regression.max_error + 1e-9


class TestSerialization:
    def test_roundtrip(self):
        regression = StepRegression.fit(stepped_timestamps())
        data = regression.to_bytes()
        out, offset = StepRegression.from_bytes(data)
        assert offset == len(data)
        assert out.slope == regression.slope
        assert out.n_points == regression.n_points
        assert out.max_error == regression.max_error
        np.testing.assert_array_equal(out.split_timestamps,
                                      regression.split_timestamps)
        np.testing.assert_array_equal(out.intercepts, regression.intercepts)

    def test_roundtrip_predictions_identical(self):
        regression = StepRegression.fit(stepped_timestamps())
        out, _ = StepRegression.from_bytes(regression.to_bytes())
        probes = np.linspace(regression.split_timestamps[0],
                             regression.split_timestamps[-1],
                             100).astype(np.int64)
        np.testing.assert_array_equal(out.predict_array(probes),
                                      regression.predict_array(probes))

    def test_truncated_rejected(self):
        regression = StepRegression.fit(stepped_timestamps())
        with pytest.raises(StepRegressionError):
            StepRegression.from_bytes(regression.to_bytes()[:8])
