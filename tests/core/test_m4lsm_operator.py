"""Integration-grade tests for the M4-LSM operator: equivalence with the
M4-UDF baseline on targeted scenarios, lazy-load behaviour and the I/O
savings the paper claims."""

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator, Point


def write_sorted(engine, name, t, v):
    engine.create_series(name)
    engine.write_batch(name, np.asarray(t, dtype=np.int64),
                       np.asarray(v, dtype=np.float64))
    engine.flush_all()


class TestBasicEquivalence:
    def test_sequential_data(self, loaded_engine):
        engine, t, _v = loaded_engine
        udf = M4UDFOperator(engine)
        lsm = M4LSMOperator(engine)
        for w in (1, 3, 10, 100):
            a = udf.query("s", int(t[0]), int(t[-1]) + 1, w)
            b = lsm.query("s", int(t[0]), int(t[-1]) + 1, w)
            assert a.semantically_equal(b)

    def test_query_subrange(self, loaded_engine):
        engine, t, _v = loaded_engine
        udf = M4UDFOperator(engine)
        lsm = M4LSMOperator(engine)
        t_qs = int(t[100])
        t_qe = int(t[400])
        assert udf.query("s", t_qs, t_qe, 7).semantically_equal(
            lsm.query("s", t_qs, t_qe, 7))

    def test_empty_range(self, loaded_engine):
        engine, t, _v = loaded_engine
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", int(t[-1]) + 100, int(t[-1]) + 200, 5)
        assert all(span.is_empty() for span in result)

    def test_span_boundaries_partition_points(self, loaded_engine):
        """Each point is assigned to exactly one span: span FP/LP chains
        must cover the series without overlap."""
        engine, t, _v = loaded_engine
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", int(t[0]), int(t[-1]) + 1, 9)
        covered = 0
        for span in result.spans:
            if span.is_empty():
                continue
            assert span.first.t <= span.last.t
            covered += 1
        assert covered == 9


class TestOverwriteScenarios:
    def test_top_candidate_overwritten_by_lower_value(self, engine):
        """The paper's Example 3.4 shape: the metadata TP is stale because
        a newer chunk overwrote that timestamp with a smaller value."""
        write_sorted(engine, "s", [10, 20, 30], [1.0, 99.0, 2.0])
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([0.0]))
        engine.flush_all()
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", 0, 100, 1)
        assert result[0].top.v == 2.0
        assert result[0].bottom == Point(20, 0.0)
        udf = M4UDFOperator(engine)
        assert udf.query("s", 0, 100, 1).semantically_equal(result)

    def test_first_point_overwritten_value(self, engine):
        """FP time survives an overwrite but its value must come from the
        newest chunk (the version tie-break of Section 3.2)."""
        write_sorted(engine, "s", [10, 20], [1.0, 2.0])
        engine.write_batch("s", np.array([10], dtype=np.int64),
                           np.array([42.0]))
        engine.flush_all()
        lsm = M4LSMOperator(engine)
        assert lsm.query("s", 0, 100, 1)[0].first == Point(10, 42.0)

    def test_chain_of_overwrites(self, engine):
        write_sorted(engine, "s", [10, 20, 30], [5.0, 50.0, 5.0])
        for value in (40.0, 30.0, 20.0):
            engine.write_batch("s", np.array([20], dtype=np.int64),
                               np.array([value]))
            engine.flush_all()
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", 0, 100, 1)
        assert result[0].top == Point(20, 20.0)


class TestDeleteScenarios:
    def test_first_point_deleted(self, engine):
        write_sorted(engine, "s", [10, 20, 30], [1.0, 2.0, 3.0])
        engine.delete("s", 5, 15)
        engine.flush_all()
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", 0, 100, 1)
        assert result[0].first == Point(20, 2.0)

    def test_delete_then_reinsert(self, engine):
        write_sorted(engine, "s", [10, 20, 30], [1.0, 2.0, 3.0])
        engine.delete("s", 10, 10)
        engine.write_batch("s", np.array([10], dtype=np.int64),
                           np.array([7.0]))
        engine.flush_all()
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", 0, 100, 1)
        assert result[0].first == Point(10, 7.0)
        assert result[0].top == Point(10, 7.0)

    def test_whole_span_deleted(self, engine):
        write_sorted(engine, "s", list(range(0, 100, 10)),
                     [float(x) for x in range(10)])
        engine.delete("s", 0, 45)
        engine.flush_all()
        lsm = M4LSMOperator(engine)
        result = lsm.query("s", 0, 100, 2)
        assert result[0].is_empty()
        assert result[1].first == Point(50, 5.0)

    def test_everything_deleted(self, engine):
        write_sorted(engine, "s", [10, 20], [1.0, 2.0])
        engine.delete("s", 0, 100)
        engine.flush_all()
        result = M4LSMOperator(engine).query("s", 0, 100, 3)
        assert all(span.is_empty() for span in result)

    def test_delete_everything_then_reinsert_one(self, engine):
        write_sorted(engine, "s", [10, 20, 30], [1.0, 2.0, 3.0])
        engine.delete("s", 0, 100)
        engine.write_batch("s", np.array([20], dtype=np.int64),
                           np.array([9.0]))
        engine.flush_all()
        result = M4LSMOperator(engine).query("s", 0, 100, 1)
        assert result[0].first == result[0].last == Point(20, 9.0)


class TestMergeFreeClaim:
    def test_no_chunk_loads_for_aligned_sequential_data(self, engine):
        """Chunks fully inside spans, no overlap, no deletes: M4-LSM must
        answer from metadata alone (Figure 2(c))."""
        engine.create_series("s")
        # 10 chunks of 50 points; spans exactly cover 5 chunks each.
        t = np.arange(500, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.flush_all()
        before = engine.stats.snapshot()
        result = M4LSMOperator(engine).query("s", 0, 500, 2)
        diff = engine.stats.diff(before)
        assert diff.chunk_loads == 0
        assert diff.pages_decoded == 0
        assert not result[0].is_empty() and not result[1].is_empty()

    def test_split_chunks_loaded_but_not_others(self, engine):
        engine.create_series("s")
        t = np.arange(500, dtype=np.int64)  # 10 chunks of 50
        engine.write_batch("s", t, t.astype(float))
        engine.flush_all()
        before = engine.stats.snapshot()
        M4LSMOperator(engine).query("s", 0, 500, 4)  # spans of 125 points
        diff = engine.stats.diff(before)
        # Only the chunks straddling span boundaries 125 and 375 are read,
        # once per adjoining span (a partial, in-span load each time).
        assert 0 < diff.chunk_loads <= 4
        assert diff.points_decoded < t.size

    def test_udf_loads_everything(self, engine):
        engine.create_series("s")
        t = np.arange(500, dtype=np.int64)
        engine.write_batch("s", t, t.astype(float))
        engine.flush_all()
        before = engine.stats.snapshot()
        M4UDFOperator(engine).query("s", 0, 500, 2)
        diff = engine.stats.diff(before)
        assert diff.chunk_loads == 10
        assert diff.points_merged == 500


class TestOperatorVariants:
    @pytest.fixture
    def adversarial_engine(self, engine):
        rng = np.random.default_rng(77)
        n = 800
        t = np.sort(rng.choice(8000, size=n, replace=False))
        v = np.round(rng.normal(0, 5, n), 2)
        engine.create_series("s")
        for part in np.array_split(rng.permutation(n), 5):
            part = np.sort(part)
            engine.write_batch("s", t[part], v[part])
            engine.flush("s")
        engine.delete("s", 1000, 1500)
        engine.delete("s", 4000, 4100)
        engine.write_batch("s", t[200:300], v[200:300] + 1)
        engine.flush_all()
        return engine

    @pytest.mark.parametrize("kwargs", [
        {"lazy": False},
        {"use_regression": False},
        {"fused_fast_path": False},
        {"lazy": False, "use_regression": False, "fused_fast_path": False},
    ])
    def test_variants_agree_with_udf(self, adversarial_engine, kwargs):
        udf = M4UDFOperator(adversarial_engine)
        lsm = M4LSMOperator(adversarial_engine, **kwargs)
        for w in (1, 17, 111):
            a = udf.query("s", 0, 8000, w)
            b = lsm.query("s", 0, 8000, w)
            assert a.semantically_equal(b), "w=%d kwargs=%r" % (w, kwargs)

    def test_streaming_udf_agrees_with_vectorized(self, adversarial_engine):
        fast = M4UDFOperator(adversarial_engine)
        slow = M4UDFOperator(adversarial_engine, streaming=True)
        a = fast.query("s", 0, 8000, 23)
        b = slow.query("s", 0, 8000, 23)
        assert a.semantically_equal(b)

    def test_eager_loads_more_than_lazy(self, adversarial_engine):
        engine = adversarial_engine
        before = engine.stats.snapshot()
        M4LSMOperator(engine, lazy=True).query("s", 0, 8000, 40)
        lazy_loads = engine.stats.diff(before).points_decoded
        before = engine.stats.snapshot()
        M4LSMOperator(engine, lazy=False).query("s", 0, 8000, 40)
        eager_loads = engine.stats.diff(before).points_decoded
        assert eager_loads >= lazy_loads
