"""Unit tests for the chunk index operations (Definition 3.5)."""

import numpy as np
import pytest

from repro.core.index import BinarySearchIndex, ChunkIndex, StepRegression


class PageSource:
    """In-memory page source that counts decodes."""

    def __init__(self, timestamps, points_per_page):
        self.t = np.asarray(timestamps, dtype=np.int64)
        self.page_size = points_per_page
        self.row_starts = np.arange(0, self.t.size, points_per_page,
                                    dtype=np.int64)
        self.decodes = 0
        self.lookups = 0

    def read_page(self, page_index):
        self.decodes += 1
        start = int(self.row_starts[page_index])
        return self.t[start:start + self.page_size]

    def on_lookup(self):
        self.lookups += 1

    def step_index(self):
        regression = StepRegression.fit(self.t)
        return ChunkIndex(regression, self.row_starts, self.t.size,
                          self.read_page, self.on_lookup)

    def binary_index(self):
        starts = self.t[self.row_starts]
        return BinarySearchIndex(self.row_starts, starts, self.t.size,
                                 int(self.t[0]), int(self.t[-1]),
                                 self.read_page, self.on_lookup)


def reference_after(t_arr, t):
    rows = np.flatnonzero(t_arr > t)
    return int(rows[0]) if rows.size else None


def reference_before(t_arr, t):
    rows = np.flatnonzero(t_arr < t)
    return int(rows[-1]) if rows.size else None


@pytest.fixture(params=["step", "binary"])
def make_index(request):
    def build(timestamps, points_per_page=32):
        source = PageSource(timestamps, points_per_page)
        index = source.step_index() if request.param == "step" \
            else source.binary_index()
        return index, source
    return build


class TestExactness:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_operations_match_reference(self, make_index, seed):
        rng = np.random.default_rng(seed)
        deltas = rng.integers(5, 15, 499)
        deltas[rng.choice(499, 3, replace=False)] = 10_000
        t = np.concatenate(([0], np.cumsum(deltas))).astype(np.int64)
        index, _source = make_index(t)
        probes = set(t.tolist())
        probes.update(int(x) for x in rng.integers(-50, int(t[-1]) + 50, 300))
        for probe in sorted(probes):
            assert index.exists(probe) == (probe in set(t.tolist())), probe
            assert index.position_after(probe) \
                == reference_after(t, probe), probe
            assert index.position_before(probe) \
                == reference_before(t, probe), probe

    def test_boundaries(self, make_index):
        t = np.arange(100, dtype=np.int64) * 10
        index, _ = make_index(t)
        assert index.exists(0) and index.exists(990)
        assert not index.exists(-1) and not index.exists(991)
        assert index.position_after(-5) == 0
        assert index.position_after(990) is None
        assert index.position_before(0) is None
        assert index.position_before(10_000) == 99

    def test_single_page_chunk(self, make_index):
        t = np.array([5, 10, 20], dtype=np.int64)
        index, _ = make_index(t, points_per_page=10)
        assert index.exists(10) and not index.exists(11)
        assert index.position_after(5) == 1
        assert index.position_before(20) == 1


class TestPartialReads:
    def test_step_index_decodes_one_page_for_regular_data(self):
        t = np.arange(1000, dtype=np.int64) * 9000
        source = PageSource(t, 100)
        index = source.step_index()
        # Probe mid-page: the prediction window stays inside one page.
        assert index.exists(9000 * 550)
        assert source.decodes == 1

    def test_lookup_counter_fires_per_operation(self):
        t = np.arange(100, dtype=np.int64)
        source = PageSource(t, 10)
        index = source.step_index()
        index.exists(5)
        index.position_after(5)
        index.position_before(5)
        assert source.lookups == 3

    def test_binary_index_touches_single_page(self):
        t = np.arange(1000, dtype=np.int64) * 7
        source = PageSource(t, 100)
        index = source.binary_index()
        assert index.exists(7 * 450)
        assert source.decodes == 1


class TestWindowExpansion:
    def test_bad_regression_still_exact(self):
        """A regression with a wrong (too small) error bound must still
        produce exact answers via window expansion."""
        t = np.arange(200, dtype=np.int64) * 3
        regression = StepRegression.fit(t)
        # Sabotage: pretend the fit is perfect but shift the slope.
        import dataclasses
        bad = dataclasses.replace(regression, slope=regression.slope * 3,
                                  max_error=0.0)
        source = PageSource(t, 16)
        index = ChunkIndex(bad, source.row_starts, t.size, source.read_page)
        for probe in (0, 3, 100 * 3, 199 * 3, 50, 1):
            assert index.exists(probe) == (probe % 3 == 0
                                           and probe <= 199 * 3)

    def test_row_count_mismatch_rejected(self):
        from repro.errors import IndexError_
        t = np.arange(10, dtype=np.int64)
        regression = StepRegression.fit(t)
        with pytest.raises(IndexError_):
            ChunkIndex(regression, np.array([0]), 99, lambda i: t)
