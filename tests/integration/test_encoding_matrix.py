"""Full-pipeline integration across the encoding/compression matrix.

The benches default to TS_2DIFF + PLAIN uncompressed; this module drives
the whole write -> flush -> M4-LSM-query -> recovery path under every
other codec combination to confirm the operator stack is agnostic to the
on-disk format.
"""

import numpy as np
import pytest

from repro.core import M4LSMOperator, M4UDFOperator
from repro.storage import Compression, Encoding, StorageConfig, StorageEngine

VALUE_ENCODINGS = (Encoding.PLAIN, Encoding.GORILLA, Encoding.RLE)
TIME_ENCODINGS = (Encoding.TS_2DIFF, Encoding.PLAIN)
COMPRESSIONS = (Compression.NONE, Compression.ZLIB)


def workload():
    rng = np.random.default_rng(21)
    t = np.cumsum(rng.integers(1, 5, 3000)).astype(np.int64)
    v = np.round(np.cumsum(rng.normal(0, 0.5, 3000)), 3)
    return t, v


@pytest.mark.parametrize("compression", COMPRESSIONS)
@pytest.mark.parametrize("time_encoding", TIME_ENCODINGS)
@pytest.mark.parametrize("value_encoding", VALUE_ENCODINGS)
def test_full_pipeline(tmp_path, time_encoding, value_encoding,
                       compression):
    t, v = workload()
    config = StorageConfig(avg_series_point_number_threshold=250,
                           points_per_page=125,
                           time_encoding=time_encoding,
                           value_encoding=value_encoding,
                           compression=compression)
    db = tmp_path / "db"
    with StorageEngine(db, config) as engine:
        engine.create_series("s")
        engine.write_batch("s", t, v)
        engine.write_batch("s", t[500:700], v[500:700] + 1)  # overwrite
        engine.delete("s", int(t[1000]), int(t[1100]))
        engine.flush_all()
        udf = M4UDFOperator(engine).query("s", int(t[0]),
                                          int(t[-1]) + 1, 17)
        lsm = M4LSMOperator(engine).query("s", int(t[0]),
                                          int(t[-1]) + 1, 17)
        assert udf.semantically_equal(lsm)
    # Reopen: the sealed files must decode identically after recovery.
    with StorageEngine(db, config) as reopened:
        again = M4LSMOperator(reopened).query("s", int(t[0]),
                                              int(t[-1]) + 1, 17)
        assert udf.semantically_equal(again)


def test_zlib_actually_shrinks_files(tmp_path):
    t, v = workload()
    sizes = {}
    for name, compression in (("raw", Compression.NONE),
                              ("zlib", Compression.ZLIB)):
        config = StorageConfig(avg_series_point_number_threshold=500,
                               time_encoding=Encoding.PLAIN,
                               value_encoding=Encoding.PLAIN,
                               compression=compression)
        with StorageEngine(tmp_path / name, config) as engine:
            engine.create_series("s")
            engine.write_batch("s", t, np.round(v, 1))
            engine.flush_all()
            sizes[name] = sum(
                meta.data_length for meta in engine.chunks_for("s"))
    assert sizes["zlib"] < sizes["raw"]


def test_gorilla_beats_plain_on_slow_signals(tmp_path):
    t = np.arange(5000, dtype=np.int64)
    v = np.full(5000, 42.125)
    sizes = {}
    for name, encoding in (("plain", Encoding.PLAIN),
                           ("gorilla", Encoding.GORILLA)):
        config = StorageConfig(avg_series_point_number_threshold=1000,
                               value_encoding=encoding)
        with StorageEngine(tmp_path / name, config) as engine:
            engine.create_series("s")
            engine.write_batch("s", t, v)
            engine.flush_all()
            sizes[name] = sum(
                meta.data_length for meta in engine.chunks_for("s"))
    assert sizes["gorilla"] < sizes["plain"] / 5
