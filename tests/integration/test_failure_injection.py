"""Failure injection: the engine must fail loudly (never silently wrong)
under corrupted files, and recover what is recoverable."""

import os

import numpy as np
import pytest

from repro.errors import CorruptFileError, EncodingError, ReproError
from repro.storage import StorageConfig, StorageEngine
from repro.storage.tsfile import TsFileReader


def build_store(db):
    config = StorageConfig(avg_series_point_number_threshold=100,
                           points_per_page=50)
    engine = StorageEngine(db, config)
    engine.create_series("s")
    t = np.arange(1000, dtype=np.int64)
    engine.write_batch("s", t, np.sin(t / 10.0))
    engine.flush_all()
    return engine, config


class TestTsFileCorruption:
    def test_flipped_payload_byte_detected_or_decoded_differently(
            self, tmp_path):
        """A flipped byte inside a page payload must either raise an
        EncodingError or change decoded bytes — it can never be silently
        absorbed into a 'valid' result identical to the original."""
        engine, _config = build_store(tmp_path / "db")
        meta = engine.chunks_for("s")[0]
        original_t, original_v = engine.data_reader().load_chunk(meta)
        engine.close()

        path = meta.file_path
        with open(path, "r+b") as f:
            f.seek(meta.data_offset + 12)
            byte = f.read(1)
            f.seek(meta.data_offset + 12)
            f.write(bytes([byte[0] ^ 0xFF]))

        with TsFileReader(path) as reader:
            recovered_meta = [m for m in reader.read_metadata()
                              if m.data_offset == meta.data_offset][0]
            try:
                t, v = reader.read_chunk_arrays(recovered_meta)
            except (EncodingError, CorruptFileError):
                return  # loud failure: acceptable
            changed = (not np.array_equal(t, original_t)
                       or not np.array_equal(v, original_v))
            assert changed

    def test_truncated_data_section_raises(self, tmp_path):
        engine, _config = build_store(tmp_path / "db")
        meta = engine.chunks_for("s")[-1]
        engine.close()
        path = meta.file_path
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 30)
        with pytest.raises((CorruptFileError, ReproError)):
            with TsFileReader(path) as reader:
                for m in reader.read_metadata():
                    reader.read_chunk_arrays(m)

    def test_zeroed_footer_raises(self, tmp_path):
        engine, _config = build_store(tmp_path / "db")
        path = engine.chunks_for("s")[0].file_path
        engine.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 8)
            f.write(b"\x00" * 8)
        with TsFileReader(path) as reader:
            with pytest.raises(CorruptFileError):
                reader.read_metadata()


class TestRecoveryCorruption:
    def test_corrupt_catalog_raises(self, tmp_path):
        db = tmp_path / "db"
        engine, config = build_store(db)
        engine.close()
        catalog = db / "catalog.meta"
        catalog.write_bytes(b"NOTACATALOG")
        with pytest.raises(CorruptFileError):
            StorageEngine(db, config)

    def test_mods_for_unknown_series_raises(self, tmp_path):
        db = tmp_path / "db"
        engine, config = build_store(db)
        engine.close()
        # Forge a mods record for a series id that does not exist.
        from repro.storage import Delete
        from repro.storage.mods import ModsFile
        ModsFile(db / "deletes.mods").append(999, Delete(0, 1, 10_000))
        with pytest.raises(CorruptFileError):
            StorageEngine(db, config)

    def test_torn_wal_recovers_prefix(self, tmp_path):
        db = tmp_path / "db"
        config = StorageConfig(avg_series_point_number_threshold=100)
        engine = StorageEngine(db, config)
        series_id = engine.create_series("s")
        engine.write("s", 1, 1.0)
        engine.write("s", 2, 2.0)
        engine.close()
        wal_path = db / ("wal-%06d.log" % series_id)
        wal_path.write_bytes(wal_path.read_bytes()[:-5])
        reopened = StorageEngine(db, config)
        assert reopened.recovery_summary["wal_points"] == 1
        reopened.flush_all()
        assert reopened.total_points("s") == 1
        reopened.close()

    def test_deleted_tsfile_missing_from_recovery(self, tmp_path):
        """Removing a sealed TsFile loses its chunks but the directory
        still opens; remaining data stays queryable."""
        db = tmp_path / "db"
        engine, config = build_store(db)
        files = sorted({c.file_path for c in engine.chunks_for("s")})
        engine.close()
        assert len(files) == 1  # 10 chunks fit one file at this config
        # Build a second file, then delete the first.
        engine = StorageEngine(db, config)
        engine.write_batch("s", np.arange(5000, 5100, dtype=np.int64),
                           np.zeros(100))
        engine.flush_all()
        engine.close()
        os.remove(files[0])
        reopened = StorageEngine(db, config)
        assert reopened.recovery_summary["chunks"] == 1
        reopened.flush_all()
        assert reopened.total_points("s") == 100
        reopened.close()


class TestQueryRobustness:
    def _lose_first_file(self, engine):
        """Delete the file behind the store's chunks, under the engine."""
        path = engine.chunks_for("s")[0].file_path
        # Close pooled readers, then delete the file under the engine.
        for reader in list(engine._readers.values()):
            reader.close()
        engine._readers.clear()
        os.remove(path)

    def test_missing_chunk_file_raises_cleanly(self, tmp_path):
        """Strict mode: a vanished file fails the query loudly."""
        from repro.core import M4UDFOperator
        from repro.errors import StorageError
        engine, _config = build_store(tmp_path / "db")
        self._lose_first_file(engine)
        with pytest.raises(StorageError):
            M4UDFOperator(engine, degraded=False).query("s", 0, 1000, 4)
        engine.close()

    def test_missing_chunk_file_degrades(self, tmp_path):
        """Degraded mode (the default): the query answers from what is
        left, flags itself, and reports the skipped time ranges."""
        from repro.core import M4UDFOperator
        engine, _config = build_store(tmp_path / "db")
        self._lose_first_file(engine)
        result = M4UDFOperator(engine).query("s", 0, 1000, 4)
        assert result.degraded
        assert result.skipped  # every chunk lived in the deleted file
        assert len(engine.quarantine) > 0
        engine.close()
