"""End-to-end integration: ingest -> flush -> SQL -> visualize, and
cross-layer equivalences at realistic (small) scale."""

import numpy as np
import pytest

from repro import Session, StorageConfig
from repro.core import M4LSMOperator, M4UDFOperator, TimeSeries
from repro.datasets import PROFILES, build_engine, load_with_overlap
from repro.viz import PixelGrid, compare_pixels, rasterize


class TestFullPipeline:
    def test_ingest_query_visualize(self, tmp_path):
        """The quickstart path: write a dataset, reduce with M4-LSM, and
        confirm the reduced rendering is pixel-identical."""
        t, v = PROFILES["KOB"].generate(20_000)
        config = StorageConfig(avg_series_point_number_threshold=500,
                               points_per_page=250)
        with Session(tmp_path / "db", config) as session:
            session.create_series("root.kob.sensor")
            session.insert_batch("root.kob.sensor", t, v)
            width, height = 150, 80
            result = session.query_m4("root.kob.sensor", int(t[0]),
                                      int(t[-1]) + 1, width)
            reduced = result.to_series()
            assert len(reduced) <= 4 * width

            full = TimeSeries(t, v, validate=False)
            grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(v.min()),
                             float(v.max()), width, height)
            comparison = compare_pixels(rasterize(full, grid),
                                        rasterize(reduced, grid))
            assert comparison.is_exact()

    def test_sql_agrees_with_api(self, tmp_path):
        t, v = PROFILES["MF03"].generate(5000)
        with Session(tmp_path / "db") as session:
            session.create_series("m")
            session.insert_batch("m", t, v)
            api = session.query_m4("m", int(t[0]), int(t[-1]) + 1, 6)
            sql = session.execute(
                "SELECT M4(x) FROM m WHERE time >= %d AND time < %d "
                "GROUP BY SPANS(6)" % (t[0], int(t[-1]) + 1))
            assert len(sql) == len(api.non_empty_spans())
            for row, span_index in zip(sql.rows, api.non_empty_spans()):
                span = api[span_index]
                assert row[1] == span.first.t
                assert row[2] == pytest.approx(span.first.v)

    @pytest.mark.parametrize("dataset", ["BallSpeed", "MF03", "KOB",
                                         "RcvTime"])
    def test_operators_agree_on_every_dataset_profile(self, tmp_path,
                                                      dataset):
        t, v = PROFILES[dataset].generate(20_000)
        with build_engine(tmp_path / "db", chunk_points=500) as engine:
            load_with_overlap(engine, "s", t, v, overlap_pct=20)
            engine.delete("s", int(t[100]), int(t[300]))
            engine.flush_all()
            for w in (13, 97):
                a = M4UDFOperator(engine).query("s", int(t[0]),
                                                int(t[-1]) + 1, w)
                b = M4LSMOperator(engine).query("s", int(t[0]),
                                                int(t[-1]) + 1, w)
                assert a.semantically_equal(b), (dataset, w)

    def test_multi_series_isolation(self, tmp_path):
        with Session(tmp_path / "db") as session:
            for name, scale in (("a", 1.0), ("b", -1.0)):
                session.create_series(name)
                t = np.arange(3000, dtype=np.int64)
                session.insert_batch(name, t, t.astype(float) * scale)
            res_a = session.query_m4("a", 0, 3000, 3)
            res_b = session.query_m4("b", 0, 3000, 3)
            assert res_a[0].top.v >= 0 and res_b[0].top.v <= 0
            session.delete("a", 0, 2999)
            assert all(s.is_empty()
                       for s in session.query_m4("a", 0, 3000, 3))
            assert not res_b.semantically_equal(
                session.query_m4("a", 0, 3000, 3))

    def test_io_savings_shape(self, tmp_path):
        """The substrate-independent headline: M4-LSM touches a small
        fraction of the points M4-UDF decodes."""
        t, v = PROFILES["MF03"].generate(50_000)
        with build_engine(tmp_path / "db", chunk_points=1000,
                          points_per_page=200) as engine:
            load_with_overlap(engine, "s", t, v, 10)
            before = engine.stats.snapshot()
            M4UDFOperator(engine).query("s", int(t[0]), int(t[-1]) + 1, 10)
            udf_points = engine.stats.diff(before).points_decoded
            before = engine.stats.snapshot()
            M4LSMOperator(engine).query("s", int(t[0]), int(t[-1]) + 1, 10)
            lsm_points = engine.stats.diff(before).points_decoded
            assert lsm_points < udf_points / 5
