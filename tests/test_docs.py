"""The docs stay healthy: links resolve, public modules render help.

Thin wrapper over scripts/check_docs.py so the same checks gate both
CI's docs job and a plain local pytest run.
"""

import os
import sys

SCRIPTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts")
sys.path.insert(0, SCRIPTS)

import check_docs  # noqa: E402


def test_markdown_links_resolve():
    assert check_docs.check_links() == []


def test_public_modules_render_pydoc():
    assert check_docs.check_pydoc() == []
