"""Crash-torture child: run the workload, dying at a scripted I/O op.

Usage: ``python child.py DB_DIR CRASH_AT ACK_PATH``

``CRASH_AT`` is the 1-based faultfs operation count at which to die via
``os._exit(173)`` (0 = run to completion and print the total op count,
which the parent uses to place its kill points).  Durable-op acks are
fsynced to ``ACK_PATH`` through plain ``os`` calls so they neither
count as injector ops nor vanish with the process.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import workload  # noqa: E402


def main(argv):
    db, crash_at, ack_path = argv[0], int(argv[1]), argv[2]

    from repro.storage import StorageEngine, faultfs

    rules = []
    if crash_at > 0:
        rules.append(faultfs.FaultRule("any", "crash", at=crash_at))
    injector = faultfs.install(faultfs.FaultInjector(rules, seed=0))

    fd = os.open(ack_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def ack(name):
        os.write(fd, (name + "\n").encode("ascii"))
        os.fsync(fd)

    engine = StorageEngine(db, workload.config())
    workload.run(engine, ack)
    engine.close()
    os.close(fd)
    print(injector.total_ops)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
