"""Crash torture: kill a child engine at seeded file-I/O points spread
across the whole workload, reopen each store, and prove the recovered
state is a committed prefix — both as raw merged arrays and as rendered
pixel matrices against a clean store loaded with exactly that data.

``REPRO_TORTURE_KILLS`` (default 55) sets how many kill points are
spread over the child's total operation count.
"""

import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np

import repro
from repro.core import M4UDFOperator
from repro.server.service import render_chart
from repro.storage import StorageEngine
from repro.storage.faultfs import CRASH_EXIT_CODE

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import workload  # noqa: E402

CHILD = os.path.join(HERE, "child.py")
SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
WIDTH, HEIGHT = 64, 24


def _run_child(db, ack, crash_at):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, CHILD, str(db), str(crash_at), str(ack)],
        capture_output=True, text=True, env=env, timeout=120)


def _read_acks(ack_path):
    if not os.path.exists(ack_path):
        return []
    with open(ack_path) as f:
        return f.read().split()


def _recovered_state(engine):
    """``(created, timestamps, values)`` of a reopened store."""
    if workload.SERIES not in engine.series_names():
        return False, [], []
    engine.flush_all()
    series = M4UDFOperator(engine, degraded=False).merged_series(
        workload.SERIES, workload.T_LO, workload.T_HI)
    return (True, [int(t) for t in series.timestamps],
            [float(v) for v in series.values])


def _render(engine):
    return render_chart(engine, workload.SERIES, WIDTH, HEIGHT,
                        t_qs=workload.T_LO, t_qe=workload.T_HI)


def _verify_recovered(db, acked, ref_dir):
    """Reopen ``db`` and assert its state is a committed prefix.

    Returns the index of the matched prefix (in atomic events).
    """
    evs = workload.events()
    lower = max([workload.checkpoint(op) for op in acked], default=0)
    engine = StorageEngine(db, workload.config())
    try:
        state = _recovered_state(engine)
        matches = [k for k in range(len(evs) + 1)
                   if workload.simulate(evs[:k]) == state]
        assert matches, \
            "recovered state is no prefix of the workload: %r" % (state,)
        assert max(matches) >= lower, \
            ("durability violation: acked %r guarantees %d events, but "
             "the recovered state only matches prefixes %r"
             % (acked, lower, matches))
        # Pixel identity: a clean store loaded with exactly the matched
        # prefix must render the same chart as the recovered store.
        created, timestamps, values = state
        if timestamps:
            reference = StorageEngine(ref_dir, workload.config())
            try:
                reference.create_series(workload.SERIES)
                reference.write_batch(
                    workload.SERIES,
                    np.array(timestamps, dtype=np.int64),
                    np.array(values, dtype=np.float64))
                reference.flush_all()
                matrix, result = _render(engine)
                ref_matrix, ref_result = _render(reference)
                assert not result.degraded
                assert np.array_equal(matrix, ref_matrix)
                assert result.semantically_equal(ref_result)
            finally:
                reference.close()
        return max(matches)
    finally:
        engine.close()


def test_clean_run_matches_full_simulation(tmp_path):
    """No crash: the store holds exactly the fully-simulated state."""
    proc = _run_child(tmp_path / "db", tmp_path / "ack", 0)
    assert proc.returncode == 0, proc.stderr
    acked = _read_acks(tmp_path / "ack")
    assert acked[-1] == workload.OPS[-1][0]
    matched = _verify_recovered(tmp_path / "db", acked, tmp_path / "ref")
    assert matched == len(workload.events())


def test_committed_prefix_survives_every_kill_point(tmp_path):
    """>= 50 seeded kills across the op stream, each store recovers to
    a committed prefix with byte- and pixel-identical reads."""
    baseline = _run_child(tmp_path / "base", tmp_path / "base.ack", 0)
    assert baseline.returncode == 0, baseline.stderr
    total_ops = int(baseline.stdout.split()[-1])
    kills = int(os.environ.get("REPRO_TORTURE_KILLS", "55"))
    assert total_ops > 50, \
        "workload too small for a meaningful torture run"
    points = sorted({max(1, round(i * total_ops / kills))
                     for i in range(1, kills + 1)})

    def run_one(n):
        return n, _run_child(tmp_path / ("db-%04d" % n),
                             tmp_path / ("ack-%04d" % n), n)

    workers = min(8, os.cpu_count() or 2)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = dict(pool.map(run_one, points))

    for n in points:
        proc = results[n]
        assert proc.returncode == CRASH_EXIT_CODE, \
            "kill point %d: exit %d, stderr:\n%s" % (n, proc.returncode,
                                                     proc.stderr)
        _verify_recovered(tmp_path / ("db-%04d" % n),
                          _read_acks(tmp_path / ("ack-%04d" % n)),
                          tmp_path / ("ref-%04d" % n))
    assert len(points) >= min(kills, total_ops)
