"""The deterministic single-series workload shared by the crash-torture
child process and the parent verifier.

The workload is expressed twice from one table (:data:`OPS`):

* :func:`run` drives a real :class:`~repro.storage.engine.StorageEngine`
  through it (the child process does this, dying at a scripted I/O op);
* :func:`simulate` replays a prefix of the flattened *atomic events*
  (series creation, individual points, deletes) in pure Python, giving
  the oracle states a crashed-and-recovered store is allowed to be in.

Why point-granularity prefixes are the right oracle: WAL records are
appended in op order through one buffered file handle, so the bytes the
OS saw at the moment of death are always a prefix of the logical record
stream — possibly torn mid-record, which recovery truncates back to the
last whole record.  Chunk seals flush before the WAL checkpoints, and
deletes flush the memtable before the (flushed) mods append, so no
reachable crash state has a later event without all earlier ones.

Durability labels: ``durable`` ops guarantee their events survive once
the op returns (``write_batch`` syncs its WAL segment; ``delete`` and
``create`` flush before returning; flush/compact rewrite flushed files).
``buffered`` ops (single :meth:`write` calls) only become durable at the
next sync/checkpoint, so the child does not ack them.
"""

import math

SERIES = "s"
THRESHOLD = 60
PAGE = 25

#: Query range covering every timestamp the workload ever writes.
T_LO, T_HI = 0, 400


def config():
    from repro.storage import StorageConfig
    return StorageConfig(avg_series_point_number_threshold=THRESHOLD,
                         points_per_page=PAGE)


def value(t):
    """The (deterministic) value written at timestamp ``t``."""
    return math.sin(t / 7.0) * 3.0


def _points(lo, hi):
    return [("point", t) for t in range(lo, hi)]


#: ``(op name, durability, atomic events)``.  Batch sizes are chosen to
#: straddle the flush threshold so kills land inside chunk seals, WAL
#: rewrites and rotations, not just plain appends.
OPS = [
    ("create", "durable", [("create",)]),
    ("batch-0", "durable", _points(0, 80)),       # flush 60, rewrite 20
    ("batch-1", "durable", _points(80, 140)),     # flush 60, rewrite 20
    ("delete-0", "durable", [("delete", 30, 45)]),
    ("singles", "buffered", _points(200, 210)),   # unsynced appends
    ("batch-2", "durable", _points(210, 270)),    # syncs the singles too
    ("delete-1", "durable", [("delete", 100, 120)]),
    ("flush-0", "durable", []),
    ("compact", "durable", []),
    ("batch-3", "durable", _points(300, 350)),
    ("flush-1", "durable", []),
]


def events():
    """The flattened atomic event sequence of the whole workload."""
    out = []
    for _name, _durability, evs in OPS:
        out.extend(evs)
    return out


def checkpoint(op_name):
    """Events guaranteed durable once ``op_name`` has been acked."""
    count = 0
    for name, durability, evs in OPS:
        count += len(evs)
        if name == op_name:
            return count
    raise KeyError(op_name)


def simulate(event_prefix):
    """The logical series after a prefix of the atomic events.

    Returns ``(created, timestamps, values)`` with exact float values —
    the storage format is lossless, so recovered data must match these
    doubles bit-for-bit.
    """
    created = False
    data = {}
    for ev in event_prefix:
        if ev[0] == "create":
            created = True
        elif ev[0] == "point":
            data[ev[1]] = value(ev[1])
        else:  # ("delete", lo, hi): closed range, removes earlier points
            _kind, lo, hi = ev
            for t in [t for t in data if lo <= t <= hi]:
                del data[t]
    timestamps = sorted(data)
    return created, timestamps, [data[t] for t in timestamps]


def run(engine, ack=None):
    """Drive ``engine`` through the workload.

    ``ack(op_name)`` is called after each *durable* op returns; the
    child fsyncs these to a side file the injector never touches, so
    the parent knows a hard lower bound on what must have survived.
    """
    import numpy as np

    from repro.storage.compaction import compact_series

    for name, durability, evs in OPS:
        if name == "create":
            engine.create_series(SERIES)
        elif name == "singles":
            for _kind, t in evs:
                engine.write(SERIES, t, value(t))
        elif name.startswith("batch"):
            t = np.array([ev[1] for ev in evs], dtype=np.int64)
            v = np.array([value(int(x)) for x in t], dtype=np.float64)
            engine.write_batch(SERIES, t, v)
        elif name.startswith("delete"):
            _kind, lo, hi = evs[0]
            engine.delete(SERIES, lo, hi)
        elif name == "compact":
            compact_series(engine, SERIES)
        else:
            engine.flush_all()
        if ack is not None and durability == "durable":
            ack(name)
