"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import StorageConfig, StorageEngine


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config():
    """Tiny chunks/pages so tests exercise many boundaries cheaply."""
    return StorageConfig(avg_series_point_number_threshold=50,
                         points_per_page=20)


@pytest.fixture
def engine(tmp_path, small_config):
    """An empty engine in a temp directory."""
    with StorageEngine(tmp_path / "db", small_config) as eng:
        yield eng


def make_series_arrays(n=500, start=0, step=10, seed=0):
    """Regular timestamps with pseudo-random values."""
    generator = np.random.default_rng(seed)
    t = start + np.arange(n, dtype=np.int64) * step
    v = np.round(generator.normal(0.0, 10.0, n), 3)
    return t, v


@pytest.fixture
def loaded_engine(engine):
    """An engine with one flushed series 's' of 500 regular points."""
    t, v = make_series_arrays()
    engine.create_series("s")
    engine.write_batch("s", t, v)
    engine.flush_all()
    return engine, t, v
