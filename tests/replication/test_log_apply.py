"""Log + applier unit tests: sequencing, idempotence, resync rules.

These run two engines in-process — a "primary" with a replication log
attached and a "standby" fed through :class:`ReplicaApplier` — without
any HTTP, so the state machine is tested in isolation from transport.
"""

import time

import numpy as np
import pytest

from repro.replication import ReplicaApplier, ReplicationLog, frames
from repro.replication.antientropy import content_fingerprint
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine


@pytest.fixture
def engines(tmp_path):
    config = StorageConfig(avg_series_point_number_threshold=100)
    primary = StorageEngine(tmp_path / "primary", config)
    standby = StorageEngine(tmp_path / "standby", config)
    yield primary, standby
    primary.close()
    standby.close()


def batch_body(log, entries, resync=False, epoch=None, base_seq=None):
    """A ``POST /replicate`` body the way the shipper frames one."""
    header = {
        "node_id": "test-primary",
        "epoch": log.epoch if epoch is None else epoch,
        "base_seq": (entries[0].seq - 1 if entries else log.head_seq)
        if base_seq is None else base_seq,
        "head_seq": log.head_seq,
        "stamp": time.time(),
        "advertise": "http://primary.example",
    }
    if resync:
        header["resync"] = True
    return frames.encode_batch(header,
                               [entry.encode() for entry in entries])


def write_some(engine, n=500, series="s"):
    engine.create_series(series)
    t = np.arange(n, dtype=np.int64)
    v = np.sin(t / 17.0)
    engine.write_batch(series, t, v)
    engine.flush(series)
    return t, v


# -- log ---------------------------------------------------------------------------------


def test_log_sequences_and_serves_since():
    log = ReplicationLog()
    for k in range(5):
        log.append(frames.T_FLUSH, frames.flush_payload(k))
    assert log.head_seq == 5
    assert [e.seq for e in log.since(0)] == [1, 2, 3, 4, 5]
    assert [e.seq for e in log.since(3)] == [4, 5]
    assert log.since(5) == []


def test_log_ring_overflow_forces_resync():
    log = ReplicationLog(capacity=4)
    for k in range(10):
        log.append(frames.T_FLUSH, frames.flush_payload(k))
    assert log.since(2) is None          # fell off the ring
    assert [e.seq for e in log.since(6)] == [7, 8, 9, 10]


def test_log_wait_wakes_on_append_and_close():
    log = ReplicationLog()
    assert log.wait(0, timeout=0.01) is False
    log.append(frames.T_HEARTBEAT, b"")
    assert log.wait(0, timeout=0.01) is True
    log.close()
    assert log.wait(99, timeout=0.01) is False


def test_engine_hooks_emit_frames(engines):
    primary, _standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    primary.delete("s", 10, 20)
    kinds = [entry.ftype for entry in log.since(0)]
    assert frames.T_CREATE in kinds
    assert frames.T_POINTS in kinds
    assert frames.T_DELETE in kinds
    assert frames.T_FLUSH in kinds


# -- applier -----------------------------------------------------------------------------


def replicate_all(primary, standby, applier, log):
    body = batch_body(log, log.since(applier.applied_seq))
    reply = applier.apply_batch(body)
    assert reply["state"] == "ok"
    return body


def test_stream_apply_reaches_identical_content(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    primary.delete("s", 100, 200)
    applier = ReplicaApplier(standby)
    replicate_all(primary, standby, applier, log)
    assert applier.applied_seq == log.head_seq
    assert content_fingerprint(primary) == content_fingerprint(standby)


def test_reapplying_a_shipped_segment_is_a_byte_identical_noop(engines):
    """Idempotence: duplicate delivery changes nothing observable."""
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    t, _v = write_some(primary, n=800)
    applier = ReplicaApplier(standby)
    body = replicate_all(primary, standby, applier, log)
    seq_before = applier.applied_seq
    fp_before = content_fingerprint(standby)
    standby.flush_all()
    matrix_before, result_before = render_chart(
        standby, "s", 128, 48, t_qs=0, t_qe=int(t[-1]) + 1)

    # Re-ship the exact same segment (a reconnecting shipper does
    # this): every frame is <= applied_seq and must be skipped.
    reply = applier.apply_batch(body)
    assert reply["state"] == "ok"
    assert applier.applied_seq == seq_before
    assert content_fingerprint(standby) == fp_before
    standby.flush_all()
    matrix_after, result_after = render_chart(
        standby, "s", 128, 48, t_qs=0, t_qe=int(t[-1]) + 1)
    assert np.array_equal(matrix_before, matrix_after)
    assert result_before.semantically_equal(result_after)


def test_gap_answers_resync(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    applier = ReplicaApplier(standby)
    entries = log.since(0)
    # Skip the first two frames: the applier must refuse the gap.
    reply = applier.apply_batch(batch_body(log, entries[2:], base_seq=0))
    assert reply["state"] == "resync"
    assert applier.applied_seq == 0


def test_unknown_epoch_answers_resync(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    applier = ReplicaApplier(standby)
    replicate_all(primary, standby, applier, log)
    # A different-epoch primary (restart/promotion) must not stream
    # past state the replica can't anchor.
    reply = applier.apply_batch(
        batch_body(log, log.since(3), epoch=log.epoch ^ 0xDEAD))
    assert reply["state"] == "resync"


def test_advanced_base_seq_answers_resync(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    applier = ReplicaApplier(standby)
    reply = applier.apply_batch(batch_body(log, log.since(3)))
    assert reply["state"] == "resync"


def test_resync_snapshot_establishes_state(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    t, v = write_some(primary, n=600)
    applier = ReplicaApplier(standby)
    sync = frames.sync_payload(primary.series_id("s"), "s", t, v)
    entry_bytes = frames.encode_frame(frames.T_SYNC, 0, sync)

    class FakeEntry:
        seq = 0

        def encode(self):
            return entry_bytes

    reply = applier.apply_batch(batch_body(
        log, [FakeEntry()], resync=True, base_seq=log.head_seq))
    assert reply["state"] == "ok"
    assert applier.applied_seq == log.head_seq
    assert content_fingerprint(primary) == content_fingerprint(standby)
    # The stream continues from the snapshot cursor without resync.
    primary.write_batch("s", np.array([10_000], dtype=np.int64),
                        np.array([1.0], dtype=np.float64))
    primary.flush("s")
    replicate_all(primary, standby, applier, log)
    assert content_fingerprint(primary) == content_fingerprint(standby)


def test_frozen_applier_refuses_everything(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    write_some(primary)
    applier = ReplicaApplier(standby)
    applier.freeze()
    reply = applier.apply_batch(batch_body(log, log.since(0)))
    assert reply["state"] == "frozen"
    assert applier.applied_seq == 0
    assert "s" not in standby.series_names()


def test_heartbeat_resets_contact_clock(engines):
    primary, standby = engines
    log = ReplicationLog()
    primary.attach_replication(log)
    applier = ReplicaApplier(standby)
    time.sleep(0.05)
    age_before = applier.contact_age()
    heartbeat = frames.encode_frame(frames.T_HEARTBEAT, 0, b"")

    class Beat:
        def encode(self):
            return heartbeat

    reply = applier.apply_batch(batch_body(log, [Beat()], base_seq=0))
    assert reply["state"] == "ok"
    assert applier.contact_age() < age_before
