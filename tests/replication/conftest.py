"""Fixtures for the replication suite: primary/standby server pairs."""

from __future__ import annotations

import dataclasses
import socket

import pytest

from repro.server import ReproClient, ServerConfig, start_server
from repro.storage import StorageConfig, StorageEngine


def free_port():
    """An OS-assigned free TCP port (raceable in theory, fine in CI)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@dataclasses.dataclass
class Pair:
    """A replicating primary/standby pair of live servers."""

    primary: object
    standby: object
    primary_engine: object
    standby_engine: object
    client: object          # points at the primary
    standby_client: object


@pytest.fixture
def make_pair(tmp_path):
    """Factory: boot a primary shipping to one hot standby.

    Both serve on ephemeral-but-preassigned ports so each can
    advertise a real URL before the other boots.  Everything is
    stopped and closed at teardown.
    """
    alive = []

    def build(ingest_ack="replicated", auto_promote=False,
              lease_seconds=5.0, storage_kwargs=None, **primary_kwargs):
        k = len(alive)
        standby_port, primary_port = free_port(), free_port()
        standby_url = "http://127.0.0.1:%d" % standby_port
        primary_url = "http://127.0.0.1:%d" % primary_port

        def config():
            return StorageConfig(avg_series_point_number_threshold=200,
                                 **(storage_kwargs or {}))

        standby_engine = StorageEngine(tmp_path / ("standby%d" % k),
                                       config())
        standby = start_server(standby_engine, ServerConfig(
            port=standby_port, quiet=True, standby=True,
            advertise_url=standby_url, auto_promote=auto_promote,
            lease_seconds=lease_seconds, node_id="standby%d" % k))
        primary_engine = StorageEngine(tmp_path / ("primary%d" % k),
                                      config())
        primary = start_server(primary_engine, ServerConfig(
            port=primary_port, quiet=True, replicate_to=(standby_url,),
            advertise_url=primary_url, ingest_ack=ingest_ack,
            lease_seconds=lease_seconds, node_id="primary%d" % k,
            **primary_kwargs))
        pair = Pair(primary=primary, standby=standby,
                    primary_engine=primary_engine,
                    standby_engine=standby_engine,
                    client=ReproClient(primary_url),
                    standby_client=ReproClient(standby_url))
        alive.append(pair)
        return pair

    yield build
    for pair in alive:
        for handle in (pair.primary, pair.standby):
            try:
                handle.stop()
            except Exception:
                pass
        for engine in (pair.primary_engine, pair.standby_engine):
            try:
                engine.close()
            except Exception:
                pass
