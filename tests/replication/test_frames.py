"""Wire-format unit tests: framing, CRCs, payload codecs."""

import struct

import numpy as np
import pytest

from repro.errors import ReplicationError
from repro.replication import frames
from repro.storage.wal import RECORD_SIZE


def test_frame_roundtrip():
    frame = frames.encode_frame(frames.T_CREATE, 7, b"payload")
    [(ftype, seq, payload)] = list(frames.iter_frames(frame))
    assert (ftype, seq, bytes(payload)) == (frames.T_CREATE, 7, b"payload")


def test_multiple_frames_in_sequence():
    blob = b"".join(frames.encode_frame(frames.T_FLUSH, seq,
                                        frames.flush_payload(3))
                    for seq in (1, 2, 3))
    seqs = [seq for _ftype, seq, _p in frames.iter_frames(blob)]
    assert seqs == [1, 2, 3]


def test_crc_tamper_detected():
    frame = bytearray(frames.encode_frame(frames.T_CREATE, 1, b"abcdef"))
    frame[-6] ^= 0x40  # flip a payload bit
    with pytest.raises(ReplicationError):
        list(frames.iter_frames(bytes(frame)))


def test_truncated_frame_rejected():
    frame = frames.encode_frame(frames.T_CREATE, 1, b"abcdef")
    for cut in (3, len(frame) - 2):
        with pytest.raises(ReplicationError):
            list(frames.iter_frames(frame[:cut]))


def test_unknown_frame_type_rejected():
    frame = frames.encode_frame(99, 1, b"")
    with pytest.raises(ReplicationError):
        list(frames.iter_frames(frame))


def test_create_payload_roundtrip():
    payload = frames.create_payload(12, "cpu.load")
    assert frames.parse_create(payload) == (12, "cpu.load")


def test_points_payload_is_verbatim_wal_records():
    """The payload after the sid is exactly N on-disk WAL v2 records."""
    t = np.array([10, 20, 30], dtype=np.int64)
    v = np.array([1.5, -2.0, 0.0], dtype=np.float64)
    payload = frames.points_payload(5, t, v)
    assert len(payload) == 4 + 3 * RECORD_SIZE
    sid, t2, v2 = frames.parse_points(payload)
    assert sid == 5
    assert np.array_equal(t2, t) and np.array_equal(v2, v)


def test_points_payload_reverifies_record_crcs():
    t = np.array([10], dtype=np.int64)
    v = np.array([1.5], dtype=np.float64)
    payload = bytearray(frames.points_payload(5, t, v))
    payload[6] ^= 0x01  # corrupt one WAL record byte
    with pytest.raises(ReplicationError):
        frames.parse_points(bytes(payload))


def test_points_payload_rejects_foreign_sid():
    t = np.array([10], dtype=np.int64)
    v = np.array([1.5], dtype=np.float64)
    good = frames.points_payload(5, t, v)
    # Re-label the envelope sid without rewriting the records: the
    # per-record sid check must catch the mismatch.
    forged = struct.pack("<I", 6) + good[4:]
    with pytest.raises(ReplicationError):
        frames.parse_points(forged)


def test_delete_and_flush_payloads():
    assert frames.parse_delete(frames.delete_payload(9, -5, 77)) \
        == (9, -5, 77)
    assert frames.parse_flush(frames.flush_payload(9)) == 9


def test_sync_payload_roundtrip():
    t = np.arange(100, dtype=np.int64)
    v = np.sqrt(np.arange(100, dtype=np.float64))
    sid, name, t2, v2 = frames.parse_sync(
        frames.sync_payload(3, "disk.io", t, v))
    assert (sid, name) == (3, "disk.io")
    assert np.array_equal(t2, t) and np.array_equal(v2, v)


def test_sync_payload_empty_series():
    sid, name, t, v = frames.parse_sync(
        frames.sync_payload(1, "empty", np.array([], dtype=np.int64),
                            np.array([], dtype=np.float64)))
    assert (sid, name, t.size, v.size) == (1, "empty", 0, 0)


def test_batch_roundtrip():
    header = {"node_id": "p", "epoch": 42, "base_seq": 0, "head_seq": 2}
    blob = [frames.encode_frame(frames.T_FLUSH, seq,
                                frames.flush_payload(1))
            for seq in (1, 2)]
    header2, frame_list = frames.decode_batch(
        frames.encode_batch(header, blob))
    assert header2 == header
    assert [seq for _f, seq, _p in frame_list] == [1, 2]


def test_batch_bad_magic_rejected():
    with pytest.raises(ReplicationError):
        frames.decode_batch(b"NOPE\n{}\n")
