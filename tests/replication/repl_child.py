"""Replication-torture child: a primary that dies mid-ship.

Usage: ``python repl_child.py DB_DIR PORT STANDBY_URL CRASH_AT``

Boots a primary server over an empty store, shipping to ``STANDBY_URL``
with ``ingest_ack="replicated"``.  ``CRASH_AT`` is the 1-based count of
replication POSTs at which to die via ``os._exit(173)`` — the shipper
passes a ``faultfs.inject("net", ...)`` checkpoint before every send,
so the whole process vanishes exactly like a ``kill -9`` between two
shipped batches.  With ``CRASH_AT=0`` no rule is installed and the
child serves until the parent kills it.
"""

import sys
import threading


def main(argv):
    db_dir, port, standby_url, crash_at = (
        argv[0], int(argv[1]), argv[2], int(argv[3]))

    from repro.server import ServerConfig, start_server
    from repro.storage import StorageConfig, StorageEngine, faultfs

    if crash_at > 0:
        faultfs.install(faultfs.FaultInjector(
            [faultfs.FaultRule("net", "crash", at=crash_at)], seed=0))

    engine = StorageEngine(db_dir, StorageConfig(
        avg_series_point_number_threshold=200))
    start_server(engine, ServerConfig(
        port=port, quiet=True, replicate_to=(standby_url,),
        ingest_ack="replicated",
        advertise_url="http://127.0.0.1:%d" % port,
        node_id="torture-primary"))
    print("READY", flush=True)
    threading.Event().wait()   # serve until crashed or killed


if __name__ == "__main__":
    main(sys.argv[1:])
