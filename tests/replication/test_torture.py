"""Replication crash torture: kill -9 the primary between shipped
batches, promote the hot standby, and prove the promoted replica holds
exactly a committed batch prefix containing every replicated-acked
write — as raw merged arrays and as rendered pixel matrices against a
clean store loaded with that prefix.

The primary runs as a subprocess (``repl_child.py``) with a scripted
``net``-op crash rule, so kill point ``n`` means ``os._exit(173)``
right before the child's ``n``-th replication POST — no flush, no
drain, exactly a SIGKILL mid-stream.  ``REPRO_REPL_KILLS`` (default
25) sets how many kill points are exercised.
"""

import http.client
import os
import socket
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import numpy as np

import repro
from repro.core import M4UDFOperator
from repro.errors import ReproError
from repro.replication.antientropy import content_fingerprint
from repro.server import ReproClient, ServerConfig, start_server
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine
from repro.storage.faultfs import CRASH_EXIT_CODE

HERE = os.path.dirname(os.path.abspath(__file__))
CHILD = os.path.join(HERE, "repl_child.py")
SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SERIES = "s"
N_BATCHES = 40
BATCH = 25
WIDTH, HEIGHT = 64, 24


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _config():
    return StorageConfig(avg_series_point_number_threshold=200)


def batch_points(k):
    t = np.arange(k * BATCH, (k + 1) * BATCH, dtype=np.int64)
    return t, np.sin(t / 7.0)


def prefix_arrays(m):
    """The exact content of the first ``m`` committed batches."""
    t = np.arange(0, m * BATCH, dtype=np.int64)
    return t, np.sin(t / 7.0)


def spawn_primary(db, port, standby_url, crash_at):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, CHILD, str(db), str(port), standby_url,
         str(crash_at)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)


def stream_until_death(client):
    """Ship batches serially; return the indices acked replicated."""
    acked = []
    for k in range(N_BATCHES):
        t, v = batch_points(k)
        try:
            ack = client.ingest(SERIES, [int(x) for x in t],
                                [float(x) for x in v])
        except (ReproError, OSError, http.client.HTTPException):
            break   # the primary died mid-request: not acked
        if ack.get("durability") == "replicated":
            acked.append(k)
    return acked


def verify_promoted(standby_engine, acked, ref_dir):
    """The replica's content must be batches ``[0, m)`` with ``m`` at
    least covering every replicated-acked batch.  Returns ``m``."""
    if SERIES in standby_engine.series_names():
        standby_engine.flush_all()
        series = M4UDFOperator(standby_engine, degraded=False) \
            .merged_series(SERIES, 0, N_BATCHES * BATCH)
        state_t = np.asarray(series.timestamps, dtype=np.int64)
        state_v = np.asarray(series.values, dtype=np.float64)
    else:
        state_t = np.array([], dtype=np.int64)
        state_v = np.array([], dtype=np.float64)

    assert state_t.size % BATCH == 0, \
        "replica holds a torn batch: %d points" % state_t.size
    m = state_t.size // BATCH
    want_t, want_v = prefix_arrays(m)
    assert np.array_equal(state_t, want_t), "timestamps diverge"
    assert np.array_equal(state_v, want_v), "values diverge"
    lower = (max(acked) + 1) if acked else 0
    assert m >= lower, \
        ("durability violation: %d batches acked replicated but the "
         "promoted replica only holds %d" % (lower, m))

    # Pixel identity: a clean store loaded with exactly that prefix
    # renders the same chart as the promoted replica.
    if m:
        reference = StorageEngine(ref_dir, _config())
        try:
            reference.create_series(SERIES)
            reference.write_batch(SERIES, want_t, want_v)
            reference.flush_all()
            matrix, result = render_chart(
                standby_engine, SERIES, WIDTH, HEIGHT,
                t_qs=0, t_qe=N_BATCHES * BATCH)
            ref_matrix, ref_result = render_chart(
                reference, SERIES, WIDTH, HEIGHT,
                t_qs=0, t_qe=N_BATCHES * BATCH)
            assert not result.degraded
            assert np.array_equal(matrix, ref_matrix)
            assert result.semantically_equal(ref_result)
        finally:
            reference.close()
    return m


def run_kill_point(tmp_path, n):
    """One torture round: boot standby + child primary, stream until
    the scripted crash, promote, verify.  Returns ``(m, acked)``."""
    standby_port, primary_port = _free_port(), _free_port()
    standby_url = "http://127.0.0.1:%d" % standby_port
    standby_engine = StorageEngine(tmp_path / ("standby-%04d" % n),
                                   _config())
    standby = start_server(standby_engine, ServerConfig(
        port=standby_port, quiet=True, standby=True,
        advertise_url=standby_url, node_id="torture-standby-%d" % n))
    proc = spawn_primary(tmp_path / ("db-%04d" % n), primary_port,
                         standby_url, n)
    try:
        # An early kill point can fire before READY is printed; the
        # child is then already dead and the stream is empty.
        ready = proc.stdout.readline().strip() == "READY"
        acked = []
        if ready:
            acked = stream_until_death(
                ReproClient("http://127.0.0.1:%d" % primary_port,
                            timeout=30.0))
        proc.wait(timeout=120)
        assert proc.returncode == CRASH_EXIT_CODE, \
            ("kill point %d: exit %s, stderr:\n%s"
             % (n, proc.returncode, proc.stderr.read()))

        client = ReproClient(standby_url)
        status = client.promote()
        assert status["role"] == "primary"
        m = verify_promoted(standby_engine, acked,
                            tmp_path / ("ref-%04d" % n))
        # The promoted replica is live: it accepts new writes.
        ack = client.ingest(SERIES, [N_BATCHES * BATCH + 10], [1.0])
        assert ack["accepted"] == 1
        return m, acked
    finally:
        proc.kill()
        try:
            standby.stop()
        finally:
            standby_engine.close()


def test_clean_pair_replicates_every_batch(tmp_path):
    """No crash: every ack is replicated and the standby's content
    fingerprint equals the primary's over the wire."""
    standby_port, primary_port = _free_port(), _free_port()
    standby_url = "http://127.0.0.1:%d" % standby_port
    standby_engine = StorageEngine(tmp_path / "standby", _config())
    standby = start_server(standby_engine, ServerConfig(
        port=standby_port, quiet=True, standby=True,
        advertise_url=standby_url, node_id="clean-standby"))
    proc = spawn_primary(tmp_path / "db", primary_port, standby_url, 0)
    try:
        assert proc.stdout.readline().strip() == "READY", \
            proc.stderr.read()
        client = ReproClient("http://127.0.0.1:%d" % primary_port,
                             timeout=30.0)
        acked = stream_until_death(client)
        assert acked == list(range(N_BATCHES))
        wire = client.replication_fingerprint()["fingerprint"]
        assert wire == content_fingerprint(standby_engine)
    finally:
        proc.kill()
        try:
            standby.stop()
        finally:
            standby_engine.close()


def test_promoted_replica_is_a_committed_prefix_at_every_kill_point(
        tmp_path):
    """>= 25 seeded kill -9 points across the shipped stream: the
    promoted standby always equals a committed batch prefix covering
    every replicated-acked write."""
    kills = int(os.environ.get("REPRO_REPL_KILLS", "25"))
    points = list(range(1, kills + 1))

    workers = min(6, os.cpu_count() or 2)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(
            lambda n: run_kill_point(tmp_path, n), points))

    assert len(results) == kills
    prefixes = [m for m, _acked in results]
    # Coverage sanity: early kills leave a near-empty replica, late
    # kills a near-complete one — the sweep spans the stream.
    assert min(prefixes) < max(prefixes)
