"""Primary/standby integration over live HTTP servers.

Covers the whole wire loop: ack-after-ship ingest, standby write
redirects, client read failover, manual + lease promotion, the
anti-entropy sweep repairing a hand-diverged replica, and the
replication surface in ``/stats`` and ``/healthz``.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import NotPrimaryError
from repro.replication.antientropy import content_fingerprint
from repro.server import ReproClient


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def stream(client, n_batches=10, batch=50, series="s"):
    for k in range(n_batches):
        t = list(range(k * batch, (k + 1) * batch))
        client.ingest_retry(series, t, [float(x) for x in t],
                            attempts=50)


def test_replicated_ack_means_standby_has_it(make_pair):
    pair = make_pair(ingest_ack="replicated")
    ack = pair.client.ingest("s", [1, 2, 3], [1.0, 2.0, 3.0])
    assert ack["durability"] == "replicated"
    # No sleep: the ack itself is the synchronization point.
    assert content_fingerprint(pair.standby_engine) \
        == content_fingerprint(pair.primary_engine)


def test_stream_converges_and_lag_is_observable(make_pair):
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client)
    status = pair.client.replication_status()
    assert status["role"] == "primary"
    [replica] = status["replicas"]
    assert replica["acked_seq"] == status["head_seq"]
    assert replica["lag_records"] == 0
    standby_status = pair.standby_client.replication_status()
    assert standby_status["role"] == "standby"
    assert standby_status["standby"]["applied_seq"] == status["head_seq"]
    # Lag gauges are exported on both sides.
    stats = pair.client.stats()
    assert "replication" in stats
    prom = pair.standby_client.stats(fmt="prometheus")
    assert "replication_lag_records" in prom


def known_primary(pair):
    """The standby can only name the primary after first contact."""
    return pair.standby_client.replication_status() \
        .get("standby", {}).get("primary")


def test_standby_redirects_writes_to_primary(make_pair):
    pair = make_pair()
    assert wait_for(lambda: known_primary(pair))
    raw = pair.standby_client.request(
        "POST", "/ingest",
        body=b'{"series": "s", "timestamps": [1], "values": [2.0]}',
        headers={"Content-Type": "application/json"})
    # The client followed the 409 redirect and the write landed on the
    # primary; the standby named it in the Location header.
    assert raw.status == 200
    assert pair.standby_client.redirects == 1
    assert pair.standby_client.endpoint == pair.client.endpoint
    assert wait_for(lambda: "s" in pair.primary_engine.series_names())


def test_standby_409_without_follow_raises_not_primary(make_pair):
    pair = make_pair()
    assert wait_for(lambda: known_primary(pair))
    lone = ReproClient(pair.standby_client.endpoints[0])
    lone._switch_to = lambda url: None  # disable the redirect follow
    with pytest.raises(NotPrimaryError) as excinfo:
        lone.ingest("s", [1], [1.0])
    assert excinfo.value.primary == pair.client.endpoint


def test_reads_fail_over_to_the_standby(make_pair):
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client, n_batches=4)
    both = ReproClient([pair.client.endpoint,
                        pair.standby_client.endpoint])
    rows = both.query("SELECT M4(v) FROM s GROUP BY SPANS(4)")["rows"]
    # Hard-kill the primary's listener (no graceful drain).
    pair.primary._server.shutdown()
    pair.primary._server.server_close()
    rows2 = both.query("SELECT M4(v) FROM s GROUP BY SPANS(4)")["rows"]
    assert rows2 == rows
    assert both.failovers >= 1
    assert both.endpoint == pair.standby_client.endpoint


def test_manual_promotion_freezes_the_old_stream(make_pair):
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client, n_batches=3)
    status = pair.standby_client.promote()
    assert status["role"] == "primary"
    assert status["promotions"] == 1
    # Promotion is idempotent.
    assert pair.standby_client.promote()["promotions"] == 1
    # The new primary accepts writes directly now.
    ack = pair.standby_client.ingest("s", [99_999], [1.0])
    assert ack["accepted"] == 1
    # The old primary keeps running but its shipper freezes: writes
    # there no longer reach (or overwrite) the new timeline.
    pair.client.ingest("s", [99_999], [-1.0])
    assert wait_for(lambda: pair.client.replication_status()
                    ["replicas"][0]["frozen"])
    merged = pair.standby_client.query(
        "SELECT M4(v) FROM s WHERE time >= 99999 AND time < 100000 "
        "GROUP BY SPANS(1)")
    values = [row for row in merged["rows"]]
    assert values  # the new primary's write survived
    fp = content_fingerprint(pair.standby_engine)["s"]
    assert fp["points"] == 151  # 3*50 streamed + the promoted write


def test_lease_expiry_auto_promotes_the_standby(make_pair):
    pair = make_pair(ingest_ack="replicated", auto_promote=True,
                     lease_seconds=0.6)
    stream(pair.client, n_batches=2)
    # Kill the primary's listener and stop its shipper: silence.
    pair.primary._server.shutdown()
    pair.primary._server.server_close()
    pair.primary.service.replication.stop()
    assert wait_for(lambda: pair.standby_client.replication_status()
                    ["role"] == "primary", timeout=10.0)
    status = pair.standby_client.replication_status()
    assert status["promotions"] == 1
    assert pair.standby_client.ingest("s", [5000], [1.0])["accepted"] == 1


def test_heartbeats_keep_the_lease_alive_when_idle(make_pair):
    pair = make_pair(ingest_ack="replicated", auto_promote=True,
                     lease_seconds=0.8)
    stream(pair.client, n_batches=1)
    time.sleep(2.0)  # several leases of write silence
    assert pair.standby_client.replication_status()["role"] == "standby"
    assert pair.client.replication_status()["replicas"][0]["heartbeats"] \
        >= 1


def test_sweep_repairs_a_diverged_replica(make_pair):
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client, n_batches=4)
    # Diverge the standby behind replication's back: delete a range
    # directly on its engine (e.g. a restored-from-backup replica).
    pair.standby_engine.delete("s", 50, 150)
    pair.standby_engine.flush("s")
    assert content_fingerprint(pair.standby_engine) \
        != content_fingerprint(pair.primary_engine)
    report = pair.client.replication_sweep()
    assert report["clean"] is True
    [replica] = report["replicas"]
    assert replica["divergent"] == ["s"]
    assert replica["repaired"] == 1
    assert replica["divergent_after"] == []
    assert content_fingerprint(pair.standby_engine) \
        == content_fingerprint(pair.primary_engine)
    # A second sweep reports nothing to do.
    report2 = pair.client.replication_sweep()
    assert report2["clean"] is True
    assert report2["replicas"][0]["divergent"] == []


def test_sweep_on_a_standby_is_refused(make_pair):
    pair = make_pair()
    raw = pair.standby_client.request("POST", "/replication/sweep",
                                      body=b"{}")
    assert raw.status == 409


def test_healthz_reports_replication_workers(make_pair):
    pair = make_pair()
    doc = pair.client.healthz()
    assert doc["status"] == "ok"
    assert doc["replication_role"] == "primary"
    shipper_keys = [key for key in doc["workers"]
                    if key.startswith("shipper:")]
    assert shipper_keys and all(doc["workers"][k] for k in shipper_keys)
    standby_doc = pair.standby_client.healthz()
    assert standby_doc["replication_role"] == "standby"
    assert standby_doc["workers"]["ingest-writer"] is True


def test_healthz_degrades_when_the_ingest_writer_dies(make_pair):
    pair = make_pair()
    service = pair.primary.service
    dead = threading.Thread(target=lambda: None)
    dead.start()
    dead.join()
    service._ingest._thread = dead  # simulate a crashed writer thread
    doc = pair.client.healthz()
    assert doc["status"] == "degraded"
    assert doc["workers"]["ingest-writer"] is False


def test_replication_fingerprint_endpoint_matches_local(make_pair):
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client, n_batches=2)
    over_wire = pair.client.replication_fingerprint()["fingerprint"]
    local = content_fingerprint(pair.primary_engine)
    assert over_wire == local


def test_standby_restart_resyncs_from_snapshot(make_pair):
    """A replica that lost its replication cursor (restart) snapshots
    back to identical content and then follows the live stream."""
    pair = make_pair(ingest_ack="replicated")
    stream(pair.client, n_batches=3)
    applier = pair.standby.service.replication.applier
    # Simulate a restarted replica: cursor gone, epoch forgotten.
    with applier._lock:
        applier._epoch = None
        applier._applied = 0
    resyncs_before = pair.client.replication_status()["replicas"][0][
        "resyncs"]
    stream(pair.client, n_batches=2, batch=10, series="s2")
    assert wait_for(
        lambda: pair.client.replication_status()["replicas"][0]
        ["resyncs"] > resyncs_before)
    assert wait_for(
        lambda: content_fingerprint(pair.standby_engine)
        == content_fingerprint(pair.primary_engine))
