"""Unit tests for the mini SQL dialect (Appendix A.1)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query import parse, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        assert tokenize("SELECT M4(s) FROM a.b") \
            == ["SELECT", "M4", "(", "s", ")", "FROM", "a.b"]

    def test_numbers_and_operators(self):
        assert tokenize("time >= -5 AND time < 10") \
            == ["time", ">=", "-5", "AND", "time", "<", "10"]

    def test_unknown_character_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ;")


class TestM4Shorthand:
    def test_full_query(self):
        q = parse("SELECT M4(s) FROM root.sg.d WHERE time >= 0 AND "
                  "time < 100 GROUP BY SPANS(10) USING M4LSM")
        assert q.kind == "m4"
        assert q.series == "root.sg.d"
        assert (q.t_qs, q.t_qe, q.w) == (0, 100, 10)
        assert q.operator == "m4lsm"
        assert len(q.columns) == 8

    def test_default_operator_is_m4lsm(self):
        q = parse("SELECT M4(s) FROM x GROUP BY SPANS(5)")
        assert q.operator == "m4lsm"

    def test_udf_operator(self):
        q = parse("SELECT M4(s) FROM x GROUP BY SPANS(5) USING M4UDF")
        assert q.operator == "m4udf"

    def test_case_insensitive_keywords(self):
        q = parse("select m4(s) from x group by spans(5) using m4udf")
        assert q.kind == "m4" and q.operator == "m4udf"

    def test_missing_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT M4(s) FROM x")


class TestPaperFloorForm:
    def test_appendix_a1_shape(self):
        q = parse("SELECT FirstTime(T), FirstValue(T), LastTime(T), "
                  "LastValue(T), BottomTime(T), BottomValue(T), "
                  "TopTime(T), TopValue(T) FROM T "
                  "GROUP BY floor(1000 * (t - 0) / (500000 - 0))")
        assert q.kind == "m4"
        assert q.w == 1000
        assert (q.t_qs, q.t_qe) == (0, 500000)
        assert q.columns[0] == ("FP", "t")
        assert q.columns[-1] == ("TP", "v")

    def test_floor_range_must_match_where(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT M4(s) FROM x WHERE time >= 5 AND time < 10 "
                  "GROUP BY floor(2 * (t - 0) / (10 - 0))")

    def test_floor_consistent_with_where(self):
        q = parse("SELECT M4(s) FROM x WHERE time >= 0 AND time < 10 "
                  "GROUP BY floor(2 * (t - 0) / (10 - 0))")
        assert q.w == 2

    def test_floor_mismatched_tqs_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT M4(s) FROM x "
                  "GROUP BY floor(2 * (t - 0) / (10 - 5))")


class TestAggregateSubset:
    def test_subset_of_aggregates(self):
        q = parse("SELECT BottomValue(s), TopValue(s) FROM x "
                  "GROUP BY SPANS(4)")
        assert q.columns == (("BP", "v"), ("TP", "v"))

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT MedianValue(s) FROM x GROUP BY SPANS(4)")


class TestRawScan:
    def test_time_value(self):
        q = parse("SELECT time, value FROM x WHERE time >= 1 AND time < 9")
        assert q.kind == "raw"
        assert q.columns == ("t", "v")

    def test_value_only(self):
        q = parse("SELECT value FROM x")
        assert q.columns == ("v",)

    def test_unknown_column_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT humidity FROM x")


class TestErrors:
    @pytest.mark.parametrize("statement", [
        "FROM x",
        "SELECT M4(s)",
        "SELECT M4(s) FROM x GROUP BY SPANS(0) trailing",
        "SELECT M4(s) FROM x WHERE time >= 10 AND time < 5 "
        "GROUP BY SPANS(2)",
        "SELECT M4(s) FROM x GROUP BY BUCKETS(5)",
        "SELECT M4(s) FROM x USING M4LSM GROUP BY SPANS(2)",  # order fixed
        "SELECT M4(s) FROM x GROUP BY SPANS(2) USING TURBO",
    ])
    def test_malformed_statements(self, statement):
        with pytest.raises(SqlSyntaxError):
            parse(statement)

    def test_unexpected_end(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT M4(s) FROM")
