"""Unit tests for Session and query execution."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import Session
from repro.storage import StorageConfig


@pytest.fixture
def session(tmp_path):
    config = StorageConfig(avg_series_point_number_threshold=50,
                           points_per_page=25)
    with Session(tmp_path / "db", config) as sess:
        sess.create_series("root.sg.s")
        t = np.arange(200, dtype=np.int64) * 5
        v = np.sin(t / 30.0) * 10
        sess.insert_batch("root.sg.s", t, v)
        yield sess


class TestSessionWrites:
    def test_insert_and_count(self, session):
        session.flush()
        assert session.engine.total_points("root.sg.s") == 200

    def test_single_insert(self, session):
        session.insert("root.sg.s", 10_000, 1.0)
        session.flush()
        assert session.engine.total_points("root.sg.s") == 201

    def test_delete(self, session):
        session.delete("root.sg.s", 0, 45)  # kills t = 0,5,...,45
        session.flush()
        assert session.engine.total_points("root.sg.s") == 190


class TestExecute:
    def test_m4_lsm_equals_m4_udf(self, session):
        lsm = session.execute("SELECT M4(s) FROM root.sg.s WHERE time >= 0 "
                              "AND time < 1000 GROUP BY SPANS(8) USING M4LSM")
        udf = session.execute("SELECT M4(s) FROM root.sg.s WHERE time >= 0 "
                              "AND time < 1000 GROUP BY SPANS(8) USING M4UDF")
        assert lsm.columns == udf.columns
        assert lsm.rows == udf.rows

    def test_column_names(self, session):
        table = session.execute("SELECT FirstTime(s), TopValue(s) "
                                "FROM root.sg.s GROUP BY SPANS(2)")
        assert table.columns == ("span", "FirstTime", "TopValue")
        assert len(table) == 2

    def test_column_accessor(self, session):
        table = session.execute("SELECT FirstTime(s), TopValue(s) "
                                "FROM root.sg.s GROUP BY SPANS(2)")
        assert table.column("span") == [0, 1]
        with pytest.raises(QueryError):
            table.column("nope")

    def test_default_range_covers_series(self, session):
        table = session.execute("SELECT M4(s) FROM root.sg.s "
                                "GROUP BY SPANS(1)")
        assert len(table) == 1
        row = table.rows[0]
        assert row[1] == 0            # FirstTime
        assert row[3] == 199 * 5      # LastTime

    def test_raw_scan(self, session):
        table = session.execute("SELECT time, value FROM root.sg.s "
                                "WHERE time >= 0 AND time < 26")
        assert table.columns == ("time", "value")
        assert [r[0] for r in table.rows] == [0, 5, 10, 15, 20, 25]

    def test_read_your_writes(self, session):
        session.insert("root.sg.s", 10_000, 123.0)
        table = session.execute("SELECT time, value FROM root.sg.s "
                                "WHERE time >= 10000 AND time < 10001")
        assert table.rows == ((10_000, 123.0),)

    def test_pretty_output(self, session):
        table = session.execute("SELECT M4(s) FROM root.sg.s "
                                "GROUP BY SPANS(3)")
        text = table.pretty()
        assert "FirstTime" in text and "TopValue" in text
        assert len(text.splitlines()) == 2 + 3

    def test_pretty_truncates(self, session):
        table = session.execute("SELECT time, value FROM root.sg.s")
        text = table.pretty(max_rows=5)
        assert "195 more rows" in text

    def test_empty_series_without_range_raises(self, tmp_path):
        with Session(tmp_path / "db2") as sess:
            sess.create_series("x")
            with pytest.raises(QueryError):
                sess.execute("SELECT M4(s) FROM x GROUP BY SPANS(2)")

    def test_query_m4_returns_result_object(self, session):
        result = session.query_m4("root.sg.s", 0, 1000, 4)
        assert len(result) == 4
        udf = session.query_m4("root.sg.s", 0, 1000, 4, operator="m4udf")
        assert result.semantically_equal(udf)


class TestExplain:
    def test_explain_returns_result_and_trace(self, session):
        result, trace = session.explain_m4("root.sg.s", 0, 1000, 4)
        assert len(result) == 4
        assert trace.w == 4
        assert "M4-LSM trace" in trace.render()
        # Clean sequential data: every span should be metadata-only.
        assert trace.metadata_only_fraction() == 1.0

    def test_explain_matches_query(self, session):
        result, _trace = session.explain_m4("root.sg.s", 0, 1000, 4)
        assert result.semantically_equal(
            session.query_m4("root.sg.s", 0, 1000, 4))
