"""Unit tests for the bounded admission queue and its worker pool."""

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, ServerOverloadedError
from repro.obs import MetricsRegistry
from repro.server import AdmissionController
from repro.storage.deadline import Deadline, current_deadline


def wait_all(jobs, timeout=10.0):
    for job in jobs:
        assert job.wait(timeout), "job never fulfilled"


class TestAdmission:
    def test_jobs_run_and_return_results(self):
        with AdmissionController(workers=2, queue_depth=8) as ctl:
            jobs = [ctl.submit(lambda i=i: i * i) for i in range(6)]
            wait_all(jobs)
        assert [j.result for j in jobs] == [i * i for i in range(6)]
        assert all(j.error is None for j in jobs)

    def test_full_queue_sheds_with_503_semantics(self):
        metrics = MetricsRegistry()
        release = threading.Event()
        ctl = AdmissionController(workers=1, queue_depth=1,
                                  metrics=metrics, retry_after=7)
        try:
            running = threading.Event()

            def block():
                running.set()
                release.wait(10)

            first = ctl.submit(block)
            assert running.wait(5)          # worker busy
            queued = ctl.submit(lambda: "queued")  # fills the queue
            with pytest.raises(ServerOverloadedError) as info:
                ctl.submit(lambda: "shed")
            assert info.value.retry_after == 7
            assert info.value.status == 503
            assert metrics.counter("server_shed_total").value == 1
        finally:
            release.set()
            ctl.shutdown()
        wait_all([first, queued])
        assert queued.result == "queued"

    def test_queued_expiry_fails_without_running(self):
        metrics = MetricsRegistry()
        release = threading.Event()
        ctl = AdmissionController(workers=1, queue_depth=4,
                                  metrics=metrics)
        try:
            running = threading.Event()

            def block():
                running.set()
                release.wait(10)

            ctl.submit(block)
            assert running.wait(5)
            ran = []
            doomed = ctl.submit(lambda: ran.append(1),
                                deadline=Deadline(0.02))
            time.sleep(0.1)  # let the queued deadline lapse
        finally:
            release.set()
            ctl.shutdown()
        assert doomed.wait(0)
        assert isinstance(doomed.error, DeadlineExceededError)
        assert ran == []  # the engine-side fn never executed
        assert metrics.counter("server_timeout_total").value == 1

    def test_job_runs_under_its_deadline_scope(self):
        seen = []
        deadline = Deadline(30.0)
        with AdmissionController(workers=1, queue_depth=4) as ctl:
            job = ctl.submit(lambda: seen.append(current_deadline()),
                             deadline=deadline)
            assert job.wait(5)
        assert seen == [deadline]
        # and the worker thread's scope was popped afterwards
        assert current_deadline() is None

    def test_shutdown_drains_queued_jobs(self):
        ctl = AdmissionController(workers=1, queue_depth=16)
        done = []
        jobs = [ctl.submit(lambda i=i: done.append(i) or i)
                for i in range(8)]
        ctl.shutdown()  # blocks until every admitted job is fulfilled
        assert sorted(done) == list(range(8))
        assert [j.result for j in jobs] == list(range(8))

    def test_submit_after_shutdown_is_shed(self):
        ctl = AdmissionController(workers=1, queue_depth=4)
        ctl.shutdown()
        ctl.shutdown()  # idempotent
        with pytest.raises(ServerOverloadedError):
            ctl.submit(lambda: None)

    def test_job_error_is_captured_not_raised(self):
        with AdmissionController(workers=1, queue_depth=4) as ctl:
            job = ctl.submit(lambda: 1 / 0)
            assert job.wait(5)
        assert isinstance(job.error, ZeroDivisionError)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(workers=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=0)
