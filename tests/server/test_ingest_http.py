"""End-to-end tests for ``POST /ingest``, ``/ingest/stream`` and
``GET /live`` (long-poll and SSE), plus their observability surface."""

import json
import threading
import time

import pytest

from repro.errors import IngestBackpressureError
from repro.ingest import batch_nbytes


def _points(lo, n, value=1.0):
    return list(range(lo, lo + n)), [value] * n


def _post_json(client, path, payload):
    return client.request(
        "POST", path, body=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})


class TestIngestEndpoint:
    def test_round_trip_and_query(self, served):
        t, v = _points(0, 100, 2.5)
        ack = served.client.ingest("feed", t, v)
        assert ack["accepted"] == 100
        assert ack["series"] == "feed"
        assert served.handle.service.ingest_controller.drain()
        rows = served.client.query(
            "SELECT M4(v) FROM feed WHERE time >= 0 AND time < 100 "
            "GROUP BY SPANS(4)")
        assert rows["rows"]

    def test_points_pairs_accepted(self, served):
        response = _post_json(served.client, "/ingest", {
            "series": "feed", "points": [[5, 1.5], [6, 2.5]]})
        assert response.status == 200
        assert response.json()["accepted"] == 2

    @pytest.mark.parametrize("payload", [
        {},
        {"series": "s"},
        {"series": "s", "timestamps": [1], "values": [1.0, 2.0]},
        {"series": "s", "points": "nope"},
        {"series": "s", "points": [[1]]},
    ])
    def test_bad_payloads_are_400(self, served, payload):
        response = _post_json(served.client, "/ingest", payload)
        assert response.status == 400
        assert "error" in response.json()

    def test_backpressure_is_429_with_retry_after(self, make_served):
        served = make_served(
            ingest_queue_bytes=batch_nbytes(10) - 1,
            retry_after_seconds=7)
        with pytest.raises(IngestBackpressureError) as info:
            served.client.ingest("feed", *_points(0, 10))
        assert info.value.status == 429
        assert info.value.retry_after == 7

    def test_stream_endpoint_reports_per_line(self, served):
        result = served.client.ingest_stream([
            {"series": "a", "timestamps": [0, 1], "values": [1.0, 2.0]},
            {"series": "b", "points": [[5, 1.5], [6, 2.5]]},
            {"series": "c", "timestamps": [1], "values": [1.0, 2.0]},
        ])
        assert result["accepted_points"] == 4
        assert result["errors"] == 1
        assert [r["status"] for r in result["results"]] == [200, 200, 400]

    def test_stream_skips_blank_lines_and_flags_bad_json(self, served):
        body = b'{"series": "a", "timestamps": [0], "values": [1.0]}' \
               b"\n\nnot json\n"
        response = served.client.request(
            "POST", "/ingest/stream", body=body,
            headers={"Content-Type": "application/x-ndjson"})
        assert response.status == 200
        doc = response.json()
        assert doc["accepted_points"] == 1
        assert doc["errors"] == 1


class TestLiveEndpoint:
    def test_long_poll_sees_ingested_range(self, served):
        served.client.ingest("feed", *_points(1000, 50))
        poll = served.client.live_poll("feed", cursor=0,
                                       timeout_ms=5000)
        assert poll["cursor"] >= 1 and not poll["reset"]
        assert poll["ranges"] == [[1000, 1050]]

    def test_long_poll_timeout_is_empty_not_error(self, served):
        poll = served.client.live_poll("feed", cursor=0, timeout_ms=50)
        assert poll["cursor"] == 0 and poll["ranges"] == []

    def test_span_deltas_are_grid_aligned_m4(self, served):
        served.client.ingest("feed", *_points(0, 128, 3.0))
        served.handle.service.ingest_controller.drain()
        poll = served.client.live_poll("feed", cursor=0,
                                       timeout_ms=5000, span=32)
        assert poll["span"] == 32
        assert poll["deltas"], "expected recomputed spans"
        delta = poll["deltas"][0]
        # The delta covers the grid-aligned changed range and carries
        # M4 spans a client can splice into its chart.
        assert delta["t_qs"] % 32 == 0
        assert delta["t_qe"] % 32 == 0
        assert delta["spans"]

    def test_missing_series_param_is_400(self, served):
        response = served.client.request("GET", "/live")
        assert response.status == 400

    def test_subscriber_cap_sheds_503(self, make_served):
        served = make_served(live_max_subscribers=1)
        feed = served.handle.service.live_feed
        with feed.subscriber():
            response = served.client.request(
                "GET", "/live?series=feed&timeout_ms=10")
            assert response.status == 503
            assert "Retry-After" in response.headers

    def test_sse_streams_events(self, served):
        events = []
        done = threading.Event()

        def consume():
            for event in served.client.live_events("feed", cursor=0,
                                                   duration=8.0):
                events.append(event)
                break
            done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.2)  # let the stream subscribe before publishing
        served.client.ingest("feed", *_points(500, 25))
        assert done.wait(timeout=15), "no SSE event arrived"
        thread.join(timeout=5)
        assert events[0]["ranges"] == [[500, 525]]
        assert events[0]["cursor"] >= 1


class TestObservabilitySurface:
    def test_stats_json_has_ingest_section(self, served):
        served.client.ingest("feed", *_points(0, 30))
        served.handle.service.ingest_controller.drain()
        stats = served.client.stats()
        assert stats["ingest"]["accepted_batches"] == 1
        assert stats["ingest"]["applied_batches"] == 1
        assert "live_subscribers" in stats["ingest"]

    def test_prometheus_exposes_post_start_instruments(self, served):
        """Counters created after the server booted (ingest's are) must
        show up without a restart — the exporter renders the engine's
        full observability snapshot, not a boot-time instrument list."""
        served.client.ingest("feed", *_points(0, 30))
        served.handle.service.ingest_controller.drain()
        text = served.client.stats(fmt="prometheus")
        assert "ingest_points_total 30" in text
        assert "live_subscribers" in text
        assert "server_requests_total" in text  # boot-time family too

    def test_healthz_reports_ingest_load(self, served):
        served.client.ingest("feed", *_points(0, 10))
        served.handle.service.ingest_controller.drain()
        health = served.client.healthz()
        assert health["ingest_points_total"] == 10
        assert health["ingest_pending_bytes"] == 0
        assert health["ingest_sheds_total"] == 0
        assert health["live_subscribers"] == 0


class TestShutdown:
    def test_stop_drains_ingest_and_releases_live_waiters(
            self, make_served):
        served = make_served()
        served.client.ingest("feed", *_points(0, 40))

        polls = []
        thread = threading.Thread(
            target=lambda: polls.append(
                served.client.live_poll("feed", cursor=99,
                                        timeout_ms=30000)),
            daemon=True)
        thread.start()
        time.sleep(0.2)
        served.handle.stop()          # must not hang on the waiter
        thread.join(timeout=10)
        assert not thread.is_alive()
        # The accepted batch was applied before shutdown completed.
        assert served.handle.service.ingest_controller.stats()[
            "applied_batches"] == 1
