"""End-to-end tile cache: two live servers over identical data, one
cached and one not, must answer /query and /render identically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tiles import snap_viewport, tile_eligible
from repro.server import ReproClient, ServerConfig, start_server
from repro.storage import StorageConfig, StorageEngine

from .conftest import load_ball

WIDTH = 128
GRID_N = 4096  # stride-1 points: the render extent [0, 4096) is eligible


def load_grid(engine):
    t = np.arange(GRID_N, dtype=np.int64)
    engine.create_series("grid")
    engine.write_batch("grid", t, np.sin(t / 31.0) * 3)
    engine.flush_all()
    assert tile_eligible(0, GRID_N, WIDTH) is not None


def norm(body):
    """A response body minus its per-request id."""
    return {k: v for k, v in body.items() if k != "request_id"}


@pytest.fixture
def pair(tmp_path):
    """(uncached, cached): identical loaded stores behind live servers."""
    built = []
    for label, cache_bytes in (("plain", 0), ("tiled", 4 * 1024 * 1024)):
        engine = StorageEngine(
            tmp_path / label,
            StorageConfig(avg_series_point_number_threshold=200,
                          tile_cache_bytes=cache_bytes,
                          tile_cache_spans=16))
        t = load_ball(engine)
        load_grid(engine)
        handle = start_server(engine,
                              ServerConfig(port=0, quiet=True, workers=2))
        built.append((engine, handle, ReproClient(handle.url), t))
    yield built
    for engine, handle, _client, _t in built:
        handle.stop()
        engine.close()


def viewports(t):
    full = snap_viewport(int(t[0]), int(t[-1]) + 1, WIDTH)
    s = (full[1] - full[0]) // WIDTH
    zoomed = (full[0], full[0] + (WIDTH * s) // 4)
    panned = (zoomed[0] + (zoomed[1] - zoomed[0]) // 2,
              zoomed[1] + (zoomed[1] - zoomed[0]) // 2)
    out = [full]
    for window in (zoomed, panned):
        out.append(snap_viewport(window[0], window[1], WIDTH))
    return out


def test_query_byte_identical(pair):
    (plain_engine, _h, plain, t), (tiled_engine, _h2, tiled, _t2) = pair
    for start, end in viewports(t):
        sql = ("SELECT M4(v) FROM ball WHERE time >= %d AND time < %d "
               "GROUP BY SPANS(%d)" % (start, end, WIDTH))
        expected = norm(plain.query(sql))
        assert norm(tiled.query(sql)) == expected    # cold / filling
        assert norm(tiled.query(sql)) == expected    # warm
    assert len(tiled_engine.tile_cache) > 0
    assert plain_engine.tile_cache is None


@pytest.mark.parametrize("series,fmt", [("grid", "json"), ("grid", "pbm"),
                                        ("ball", "pbm")])
def test_render_identical(pair, series, fmt):
    """Renders match pixel-for-pixel; the aligned series warms tiles,
    the unaligned one exercises the bypass path through the server."""
    (_pe, _h, plain, _t), (tiled_engine, _h2, tiled, _t2) = pair

    def shot(client):
        body = client.render(series, width=WIDTH, height=48, fmt=fmt)
        return body if fmt == "pbm" else norm(body)

    expected = shot(plain)
    assert shot(tiled) == expected
    assert shot(tiled) == expected                   # warmed render
    if series == "grid":
        assert len(tiled_engine.tile_cache) > 0


def test_stats_surface_tile_metrics(pair):
    _plain, (tiled_engine, _h2, tiled, t) = pair
    start, end = snap_viewport(int(t[0]), int(t[-1]) + 1, WIDTH)
    sql = ("SELECT M4(v) FROM ball WHERE time >= %d AND time < %d "
           "GROUP BY SPANS(%d)" % (start, end, WIDTH))
    tiled.query(sql)
    tiled.query(sql)
    counters = tiled.stats()["metrics"]["counters"]
    hits = [c["value"] for c in counters.values()
            if c["name"] == "tile_cache_hits_total"]
    assert hits and hits[0] > 0
