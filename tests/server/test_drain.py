"""Graceful-drain regression tests: shutdown must wake live waiters.

A ``/live`` long-poll (or SSE stream) parks a handler thread inside
``LiveFeed.wait`` for up to its poll window.  Shutdown releases the
feed *first* (before draining ingest and admission), so a drain with
attached followers completes in wake-up time, not in long-poll-window
time — the regression this file pins down.
"""

import threading
import time


def test_stop_wakes_a_blocked_live_long_poll(make_served):
    served = make_served(live_poll_seconds=30.0)
    results = {}

    def follow():
        started = time.monotonic()
        try:
            # No timeout_ms: the server-side default (30s) applies, so
            # without the shutdown wake-up this poll would park for
            # the full window.
            results["poll"] = served.client.live_poll(
                served.series, cursor=0)
        except Exception as exc:  # noqa: BLE001 - recorded for assert
            results["error"] = exc
        results["seconds"] = time.monotonic() - started

    follower = threading.Thread(target=follow, daemon=True)
    follower.start()
    time.sleep(0.3)  # let the poll reach the feed's wait

    started = time.monotonic()
    served.handle.stop()
    drain_seconds = time.monotonic() - started
    follower.join(timeout=5.0)

    assert not follower.is_alive(), "live follower never woke up"
    assert drain_seconds < 5.0, \
        "drain took %.1fs with a live follower attached" % drain_seconds
    # The woken poll answered normally (empty delta), not with an error.
    assert "poll" in results, results.get("error")


def test_stop_ends_an_sse_stream_promptly(make_served):
    served = make_served(live_poll_seconds=30.0)
    results = {}

    def follow():
        started = time.monotonic()
        try:
            events = list(served.client.live_events(
                served.series, duration=30.0))
            results["events"] = events
        except Exception as exc:  # noqa: BLE001
            results["error"] = exc
        results["seconds"] = time.monotonic() - started

    follower = threading.Thread(target=follow, daemon=True)
    follower.start()
    time.sleep(0.3)

    started = time.monotonic()
    served.handle.stop()
    drain_seconds = time.monotonic() - started
    follower.join(timeout=5.0)

    assert not follower.is_alive(), "SSE follower never finished"
    assert drain_seconds < 5.0, \
        "drain took %.1fs with an SSE stream attached" % drain_seconds
