"""Degraded reads over HTTP: a damaged chunk yields a flagged 200 with
the skipped ranges, strict mode (server-wide or per-request) yields a
500, and health/stats surface the quarantine."""

SQL = ("SELECT M4(v) FROM ball WHERE time >= 0 AND time < 42000 "
       "GROUP BY SPANS(50)")


def corrupt_one_chunk(engine, series="ball"):
    """Flip a payload byte of a middle chunk on disk, under the engine."""
    meta = engine.chunks_for(series)[len(engine.chunks_for(series)) // 2]
    with open(meta.file_path, "r+b") as f:
        f.seek(meta.data_offset + 5)
        byte = f.read(1)
        f.seek(meta.data_offset + 5)
        f.write(bytes([byte[0] ^ 0x20]))
    return meta


class TestDegradedResponses:
    def test_query_returns_200_with_warning(self, served):
        victim = corrupt_one_chunk(served.engine)
        response = served.client.query_response(SQL)
        assert response.status == 200
        body = response.json()
        assert body["degraded"] is True
        assert body["skipped_ranges"] == [[victim.start_time,
                                           victim.end_time + 1]]
        assert "damaged chunk" in body["warning"]
        assert response.headers.get("X-Repro-Degraded") == "1"
        assert len(body["rows"]) > 0  # surviving spans still answered

    def test_healthy_query_is_not_flagged(self, served):
        body = served.client.query_response(SQL).json()
        assert body["degraded"] is False
        assert "warning" not in body
        assert "skipped_ranges" not in body

    def test_render_json_flags_degradation(self, served):
        corrupt_one_chunk(served.engine)
        response = served.client.render_response("ball", width=50,
                                                 height=20)
        assert response.status == 200
        body = response.json()
        assert body["degraded"] is True
        assert body["skipped_ranges"]
        assert "warning" in body

    def test_render_pbm_flags_via_header(self, served):
        corrupt_one_chunk(served.engine)
        response = served.client.render_response("ball", width=50,
                                                 height=20, fmt="pbm")
        assert response.status == 200
        assert response.headers.get("X-Repro-Degraded") == "1"
        assert "-" in response.headers.get("X-Repro-Skipped-Ranges", "")
        assert response.body.startswith(b"P1")

    def test_healthz_and_stats_surface_quarantine(self, served):
        corrupt_one_chunk(served.engine)
        served.client.query_response(SQL)  # trips the quarantine
        health = served.client.healthz()
        assert health["quarantined_chunks"] == 1
        stats = served.client.stats()
        assert stats["quarantine"]["chunks"] == 1
        assert stats["quarantine"]["entries"][0]["reason"]


class TestStrictMode:
    def test_per_request_strict_is_500(self, served):
        corrupt_one_chunk(served.engine)
        response = served.client.query_response(SQL, strict=True)
        assert response.status == 500
        assert "error" in response.json()

    def test_strict_server_fails_all_requests(self, make_served):
        served = make_served(strict=True)
        corrupt_one_chunk(served.engine)
        assert served.client.query_response(SQL).status == 500
        assert served.client.render_response("ball").status == 500

    def test_strict_render_param(self, served):
        corrupt_one_chunk(served.engine)
        response = served.client.render_response("ball", strict=True)
        assert response.status == 500

    def test_strict_healthy_store_still_answers(self, make_served):
        served = make_served(strict=True)
        response = served.client.query_response(SQL)
        assert response.status == 200
        assert response.json()["degraded"] is False
