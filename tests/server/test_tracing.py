"""End-to-end request tracing, Prometheus scraping, and HTTP profiling.

The headline test is the PR's acceptance criterion: a sampled query
through :class:`ReproClient` must yield a retrievable per-request trace
whose single tree contains the admission queue wait, a per-series lock
wait, and at least one engine-level span (chunk pipeline item or
tile-cache lookup), and that trace must export as valid Chrome
``trace_event`` JSON.
"""

import json

import pytest

from repro.errors import ServerError
from repro.server.workload import SessionWorkload


def _span_names(node, out=None):
    out = out if out is not None else []
    out.append(node["name"])
    for child in node.get("children", ()):
        _span_names(child, out)
    return out


def _query_sql(series="ball"):
    return ("SELECT M4(v) FROM %s WHERE time >= 0 AND time < 42000 "
            "GROUP BY SPANS(100)" % series)


class TestEndToEndTrace:
    def test_sampled_query_yields_a_full_request_tree(self, make_served):
        served = make_served(parallelism=2,
                             storage_kwargs={"tile_cache_bytes": 1 << 20})
        # a tile-eligible viewport: span width 128 (a power of two),
        # start on the grid, so the tiled operator stitches from tiles
        sql = ("SELECT M4(v) FROM ball WHERE time >= 0 AND "
               "time < 16384 GROUP BY SPANS(128)")
        response = served.client.query_response(sql, sampled=True)
        assert response.status == 200
        assert response.request_id and response.trace_id
        assert len(response.trace_id) == 32

        entry = served.client.trace(response.request_id)
        assert entry["trace_id"] == response.trace_id
        assert entry["sampled"] is True
        assert entry["status"] == 200

        names = _span_names(entry["root"])
        assert entry["root"]["name"] == "request"
        assert "admission.queue_wait" in names
        assert "lock.wait" in names
        # engine-level detail: a tile lookup (tile-cached server) or a
        # chunk pipeline item must appear in the same tree
        assert "tiles.tile" in names or "pipeline.item" in names
        # the whole tree shares one root: every span is below "request"
        assert names[0] == "request"

    def test_trace_id_is_the_clients_traceparent_trace_id(self, served):
        from repro.obs import make_traceparent, parse_traceparent

        header = make_traceparent(sampled=True)
        ctx = parse_traceparent(header)
        response = served.client.request(
            "POST", "/query",
            body=json.dumps({"sql": _query_sql()}).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "traceparent": header})
        assert response.status == 200
        assert response.trace_id == ctx.trace_id
        assert served.client.trace(ctx.trace_id)["request_id"] \
            == response.request_id

    def test_chrome_export_is_valid_trace_event_json(self, make_served):
        served = make_served(parallelism=2)
        response = served.client.query_response(_query_sql(),
                                                sampled=True)
        doc = served.client.trace(response.request_id, fmt="chrome")
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["trace_id"] == response.trace_id
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert complete and meta
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["pid"] == 1 and event["tid"] >= 1
        assert complete[0]["name"] == "request"
        # more than one engine thread participated in the request
        assert {e["name"] for e in meta} == {"thread_name"}

    def test_unsampled_fast_request_is_not_retained(self, served):
        response = served.client.query_response(_query_sql(),
                                                sampled=False)
        assert response.status == 200
        with pytest.raises(ServerError) as excinfo:
            served.client.trace(response.request_id)
        assert excinfo.value.status == 404

    def test_trace_listing_and_store_stats(self, served):
        sampled = [served.client.query_response(_query_sql(),
                                                sampled=True)
                   for _ in range(3)]
        listing = served.client.trace_list(limit=2)
        assert len(listing["traces"]) == 2
        # newest first: the last sampled request leads
        assert listing["traces"][0]["request_id"] \
            == sampled[-1].request_id
        assert listing["store"]["seen"] >= 3
        assert listing["store"]["retained"] >= 3

    def test_bad_trace_params_are_400(self, served):
        assert served.client.request(
            "GET", "/trace?limit=nope").status == 400
        assert served.client.request(
            "GET", "/trace/xyz?format=gif").status == 400


class TestSlowLogJoin:
    def test_slow_log_entries_carry_the_trace_id(self, make_served):
        served = make_served(
            storage_kwargs={"slow_query_seconds": 0.0})  # log everything
        response = served.client.query_response(_query_sql(),
                                                sampled=True)
        assert response.status == 200
        entries = [e for e in served.engine.slow_log.entries()
                   if e.get("request_id") == response.request_id]
        assert entries
        assert entries[0]["trace_id"] == response.trace_id

    def test_loadgen_samples_record_server_ids(self, served):
        workload = SessionWorkload(served.handle.url, width=64, seed=3,
                                   trace_every=2)
        report = workload.run(mode="closed", users=1, duration=0.5)
        assert report.ok > 0
        assert len(report.samples) == report.ok
        for sample in report.samples:
            assert sample["request_id"].startswith("r")
            assert len(sample["trace_id"]) == 32
        assert any(s["sampled"] for s in report.samples)
        slowest = report.slowest(2)
        assert slowest == sorted(report.samples,
                                 key=lambda s: -s["latency"])[:2]
        # a sampled request's trace is retrievable by the recorded id
        sampled = next(s for s in report.samples if s["sampled"])
        entry = served.client.trace(sampled["request_id"])
        assert entry["trace_id"] == sampled["trace_id"]


class TestPrometheusEndpoint:
    def test_content_type_and_shape(self, served):
        served.client.query(_query_sql())
        response = served.client.request("GET",
                                         "/stats?format=prometheus")
        assert response.status == 200
        assert response.headers["Content-Type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        text = response.body.decode("utf-8")
        assert "# TYPE server_request_seconds histogram" in text
        assert "server_queue_wait_seconds_bucket" in text
        assert "NaN" not in text

    def test_client_helper_returns_text(self, served):
        text = served.client.stats(fmt="prometheus")
        assert isinstance(text, str) and "# HELP" in text

    def test_unknown_format_is_400(self, served):
        assert served.client.request(
            "GET", "/stats?format=xml").status == 400

    def test_healthz_reports_queue_wait_quantiles(self, served):
        served.client.query(_query_sql())
        body = served.client.healthz()
        assert body["queue_wait_p50_seconds"] >= 0.0
        assert body["queue_wait_p99_seconds"] \
            >= body["queue_wait_p50_seconds"]


class TestProfileEndpoint:
    def test_start_query_stop_roundtrip(self, served):
        started = served.client.profile_start(interval_ms=1)
        assert started["status"] == "started"
        assert started["profile"]["running"] is True
        for _ in range(3):
            served.client.query(_query_sql())
        stopped = served.client.profile_stop()
        assert stopped["status"] == "stopped"
        assert stopped["profile"]["running"] is False
        assert stopped["profile"]["samples"] > 0
        # stacks are rooted at thread names; the admission workers and
        # the HTTP handler threads were alive to be sampled
        assert stopped["collapsed"]
        status = served.client.request("GET", "/profile").json()
        assert status["profile"]["running"] is False
        assert status["collapsed"] == stopped["collapsed"]

    def test_double_start_and_idle_stop_are_409(self, served):
        served.client.profile_start()
        try:
            response = served.client.request(
                "POST", "/profile",
                body=b'{"action": "start"}',
                headers={"Content-Type": "application/json"})
            assert response.status == 409
        finally:
            served.client.profile_stop()
        response = served.client.request(
            "POST", "/profile", body=b'{"action": "stop"}',
            headers={"Content-Type": "application/json"})
        assert response.status == 409

    def test_bad_payloads_are_400(self, served):
        for body in (b'{"action": "nope"}',
                     b'{"action": "start", "interval_ms": 0}',
                     b'{"action": "start", "interval_ms": "x"}'):
            response = served.client.request(
                "POST", "/profile", body=body,
                headers={"Content-Type": "application/json"})
            assert response.status == 400, body
