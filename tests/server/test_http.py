"""Integration tests: a live server on an ephemeral port.

The load-shedding and timeout tests drive the server with the
test-only ``sleep_ms`` debug hook (enabled via ``debug_hooks`` in the
fixture), which makes overload deterministic without a big dataset.
"""

import json
import threading
import time

import pytest

from repro.errors import ServerError, ServerOverloadedError
from repro.query.executor import Executor
from repro.query.sql import parse as parse_sql
from repro.server import ReproClient
from repro.server.service import render_chart
from repro.storage import StorageConfig, StorageEngine
from repro.viz.chart import to_pbm

SQL = ("SELECT M4(v) FROM ball WHERE time >= 0 AND time < 42000 "
       "GROUP BY SPANS(50)")


class TestEndpoints:
    def test_healthz(self, served):
        body = served.client.healthz()
        assert body["status"] == "ok"
        assert body["series"] == 1

    def test_series_listing(self, served):
        listing = served.client.series()
        assert [s["name"] for s in listing] == ["ball"]
        assert listing[0]["points"] == 6000
        assert listing[0]["start_time"] == 0

    def test_query_matches_in_process_execution(self, served):
        over_the_wire = served.client.query(SQL)
        table = Executor(served.engine).execute(parse_sql(SQL))
        assert over_the_wire["columns"] == list(table.columns)
        assert over_the_wire["rows"] == [list(r) for r in table.rows]
        assert over_the_wire["request_id"].startswith("r")

    def test_query_reports_request_id_header(self, served):
        response = served.client.query_response(SQL)
        assert response.ok
        assert response.request_id == response.json()["request_id"]

    def test_bad_sql_is_400(self, served):
        response = served.client.query_response("SELECT nonsense")
        assert response.status == 400
        assert "error" in response.json()

    def test_missing_series_is_400(self, served):
        response = served.client.render_response("nope")
        assert response.status == 400

    def test_non_json_body_is_400(self, served):
        response = served.client.request("POST", "/query", body=b"{oops")
        assert response.status == 400

    def test_unknown_endpoint_is_404(self, served):
        assert served.client.request("GET", "/nope").status == 404
        assert served.client.request("POST", "/nope").status == 404

    def test_stats_has_server_section(self, served):
        served.client.query(SQL)
        stats = served.client.stats()
        assert stats["server"]["workers"] == 4
        requests_total = stats["metrics"]["counters"]
        assert any(k.startswith("server_requests_total")
                   for k in requests_total)

    def test_typed_client_raises_on_errors(self, served):
        with pytest.raises(ServerError) as info:
            served.client.query("SELECT nonsense")
        assert info.value.status == 400


class TestRenderIdentical:
    """GET /render must be byte-identical to every in-process surface."""

    def test_pbm_matches_in_process_and_cli(self, served, tmp_path):
        wire = served.client.render("ball", width=40, height=12, fmt="pbm")
        assert wire.startswith(b"P1\n40 12\n")

        matrix, _ = render_chart(served.engine, "ball", 40, 12)
        assert wire == to_pbm(matrix).encode("ascii")

        from repro.cli import main
        out = tmp_path / "cli.pbm"
        assert main(["render", "--db", str(served.data_dir),
                     "--series", "ball", "--width", "40", "--height", "12",
                     "--out", str(out)]) == 0
        assert wire == out.read_bytes()

    def test_pbm_stable_across_parallelism_and_workers(self, served,
                                                       make_served):
        reference = served.client.render("ball", width=40, height=12,
                                         fmt="pbm")
        other = make_served(parallelism=4, workers=2, queue_depth=4)
        assert other.client.render("ball", width=40, height=12,
                                   fmt="pbm") == reference

    def test_json_render_spans(self, served):
        body = served.client.render("ball", width=40, height=12)
        assert body["width"] == 40
        assert len(body["spans"]) == 40
        first = body["spans"][0]
        assert set(first) == {"span", "first", "last", "bottom", "top"}


def _wait_until(predicate, timeout=5.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _saturate(served, sleep_ms=2000):
    """One request executing + one queued, confirmed via healthz.

    The slow requests are started one at a time and their progress is
    observed through the queue-depth/inflight gauges, so the server is
    *provably* saturated (workers=1, queue_depth=1) when this returns —
    any further submission must shed.  Returns the threads to join and
    a list collecting the slow requests' responses.
    """
    results = []

    def slow():
        results.append(ReproClient(served.handle.url)
                       .query_response(SQL, sleep_ms=sleep_ms))

    health = served.client.healthz
    threads = [threading.Thread(target=slow)]
    threads[0].start()
    assert _wait_until(lambda: health()["inflight"] >= 1)
    threads.append(threading.Thread(target=slow))
    threads[1].start()
    assert _wait_until(lambda: health()["queue_depth"] >= 1)
    return threads, results


class TestOverload:
    def test_full_queue_sheds_with_retry_after(self, make_served):
        served = make_served(workers=1, queue_depth=1)
        threads, results = _saturate(served)
        response = served.client.query_response(SQL)
        for t in threads:
            t.join()
        assert response.status == 503
        assert response.headers.get("Retry-After") == "1"
        assert response.json()["error"].startswith("admission queue full")
        assert all(r.status == 200 for r in results)
        assert served.client.healthz()["shed_total"] >= 1

    def test_shed_raises_typed_overload_error(self, make_served):
        served = make_served(workers=1, queue_depth=1)
        threads, _results = _saturate(served, sleep_ms=1500)
        with pytest.raises(ServerOverloadedError) as info:
            served.client.query(SQL)
        for t in threads:
            t.join()
        assert info.value.retry_after == 1

    def test_timeout_is_504_and_aborts_early(self, served):
        response = served.client.query_response(SQL, timeout_ms=100,
                                                sleep_ms=5000)
        assert response.status == 504
        body = response.json()
        assert "deadline" in body["error"]
        assert body["request_id"].startswith("r")
        assert served.client.healthz()["timeout_total"] >= 1

    def test_render_timeout_is_504(self, served):
        response = served.client.render_response("ball", timeout_ms=100,
                                                 sleep_ms=5000)
        assert response.status == 504


class TestShutdown:
    def test_graceful_stop_drains_inflight_and_persists_obs(
            self, make_served):
        served = make_served(workers=2, queue_depth=4)
        started = threading.Event()
        outcome = {}

        def inflight():
            started.set()
            outcome["response"] = ReproClient(served.handle.url) \
                .query_response(SQL, sleep_ms=600)

        thread = threading.Thread(target=inflight)
        thread.start()
        assert started.wait(5)
        time.sleep(0.15)  # let the request reach a worker
        served.handle.stop()          # drain: the slow request completes
        served.engine.close()
        thread.join(10)
        assert outcome["response"].status == 200

        obs = served.data_dir / "obs.json"
        assert obs.is_file()
        snapshot = json.loads(obs.read_text())
        counters = snapshot["metrics"]["counters"]
        assert any(k.startswith("server_requests_total") for k in counters)

    def test_engine_refuses_queries_after_close(self, tmp_path):
        engine = StorageEngine(tmp_path / "db", StorageConfig())
        engine.create_series("s")
        engine.close()
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            with engine.tsfile_reader("anything"):
                pass
