"""Fixtures for the server suite: loaded engines behind live servers."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.server import ReproClient, ServerConfig, start_server
from repro.storage import StorageConfig, StorageEngine


@dataclasses.dataclass
class Served:
    """A running server plus handles to everything behind it."""

    engine: object
    handle: object
    client: object
    data_dir: object
    series: str = "ball"


def load_ball(engine, n=6000, series="ball"):
    """A deterministic sine-ish series, flushed and query-ready."""
    rng = np.random.default_rng(7)
    t = np.arange(n, dtype=np.int64) * 7
    v = np.sin(t / 211.0) * 10 + rng.normal(0, 0.5, n)
    engine.create_series(series)
    engine.write_batch(series, t, v)
    engine.flush_all()
    return t


@pytest.fixture
def make_served(tmp_path):
    """Factory: boot a server over a fresh loaded store.

    All servers start on an ephemeral port with debug hooks on (the
    tests drive timeouts/shedding with artificial ``sleep_ms`` work).
    Everything is drained and closed at teardown.
    """
    alive = []

    def build(n=6000, parallelism=1, storage_kwargs=None,
              **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault("quiet", True)
        config_kwargs.setdefault("debug_hooks", True)
        data_dir = tmp_path / ("db%d" % len(alive))
        engine = StorageEngine(
            data_dir,
            StorageConfig(avg_series_point_number_threshold=200,
                          parallelism=parallelism,
                          **(storage_kwargs or {})))
        load_ball(engine, n=n)
        handle = start_server(engine, ServerConfig(**config_kwargs))
        served = Served(engine=engine, handle=handle,
                        client=ReproClient(handle.url), data_dir=data_dir)
        alive.append(served)
        return served

    yield build
    for served in alive:
        served.handle.stop()
        served.engine.close()


@pytest.fixture
def served(make_served):
    """One default server (4 workers, queue of 16)."""
    return make_served()
