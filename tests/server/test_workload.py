"""Tests for the pan/zoom session generator and the load runner.

The open-loop overload test is the acceptance criterion of the whole
serving design: offered load far above capacity must produce 503s, and
the latency of the requests the server *does* accept must stay bounded
by the request deadline.
"""

import random

import pytest

from repro.server.workload import (
    SessionWorkload,
    WorkloadReport,
    zoom_pan_session,
)


class TestSessionGenerator:
    def test_deterministic_for_a_seed(self):
        a = zoom_pan_session(0, 42000, random.Random(3))
        b = zoom_pan_session(0, 42000, random.Random(3))
        assert a == b
        assert a != zoom_pan_session(0, 42000, random.Random(4))

    def test_shape_and_bounds(self):
        session = zoom_pan_session(100, 42100, random.Random(0),
                                   zoom_levels=2, pans=6)
        # overview + 2 zooms + 6 pans + zoom-out
        assert len(session) == 10
        assert session[0] == (100, 42100)
        assert session[-1] == (100, 42100)
        for start, end in session:
            assert 100 <= start < end <= 42100

    def test_zoom_shrinks_window(self):
        session = zoom_pan_session(0, 64000, random.Random(1),
                                   zoom_levels=2, pans=0, zoom_factor=4)
        widths = [end - start for start, end in session]
        assert widths[1] == 64000 // 4
        assert widths[2] == 64000 // 16

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            zoom_pan_session(5, 5, random.Random(0))


class TestReport:
    def test_percentiles_nearest_rank(self):
        report = WorkloadReport(mode="closed", users=1, rate=0.0,
                                duration_seconds=1.0)
        report.latencies = [0.01 * i for i in range(1, 101)]
        assert report.percentile(0.50) == pytest.approx(0.50)
        assert report.percentile(0.99) == pytest.approx(0.99)
        assert WorkloadReport("closed", 1, 0.0, 1.0).percentile(0.5) == 0.0

    def test_as_dict_and_render(self):
        report = WorkloadReport(mode="open", users=2, rate=50.0,
                                duration_seconds=2.0, total=100, ok=80,
                                shed=15, timeouts=3, errors=2,
                                latencies=[0.1] * 80)
        row = report.as_dict()
        assert row["throughput"] == pytest.approx(40.0)
        assert row["shed_rate"] == pytest.approx(0.15)
        assert "shed=15" in report.render()


class TestAgainstLiveServer:
    def test_closed_loop_completes_sessions(self, served):
        workload = SessionWorkload(served.handle.url, width=64, seed=1)
        report = workload.run(mode="closed", users=2, duration=0.8)
        assert report.mode == "closed"
        assert report.ok > 0
        assert report.errors == 0
        assert report.total == (report.ok + report.shed + report.timeouts)
        assert len(report.latencies) == report.ok
        assert report.throughput > 0

    def test_series_filter_unknown_name_fails(self, served):
        workload = SessionWorkload(served.handle.url, series=["nope"])
        with pytest.raises(ValueError):
            workload.run(mode="closed", users=1, duration=0.2)

    def test_open_loop_needs_rate(self, served):
        workload = SessionWorkload(served.handle.url)
        with pytest.raises(ValueError):
            workload.run(mode="open")
        with pytest.raises(ValueError):
            workload.run(mode="nope")

    def test_open_loop_overload_sheds_and_bounds_accepted_latency(
            self, make_served):
        # Capacity: 1 worker x 100ms artificial work = ~10 req/s.
        # Offered: 80/s for 1s.  The queue (depth 2) must fill and the
        # rest shed; accepted requests must finish within the deadline.
        served = make_served(workers=1, queue_depth=2)
        deadline_s = 0.5

        class SlowWorkload(SessionWorkload):
            def _issue(self, client, op):
                _kind, name, start, end = op
                sql = ("SELECT M4(v) FROM %s WHERE time >= %d AND "
                       "time < %d GROUP BY SPANS(%d)"
                       % (name, start, end, self._width))
                return client.query_response(
                    sql, timeout_ms=int(deadline_s * 1000),
                    sleep_ms=100), False

        workload = SlowWorkload(served.handle.url, width=64, seed=2)
        report = workload.run(mode="open", rate=80, duration=1.0)
        assert report.total >= 70
        assert report.shed > 0, "overload must shed, not buffer"
        assert report.ok > 0, "accepted requests must still complete"
        # Accepted latency is measured from the *scheduled* arrival and
        # the server aborts at the deadline; allow client-side slack.
        assert report.percentile(0.99) <= deadline_s + 0.5
        assert report.errors == 0
