"""Unit tests for the pixel grid and rasterizers."""

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.errors import ReproError
from repro.viz import PixelGrid, rasterize, rasterize_bresenham


class TestPixelGrid:
    def test_column_mapping_matches_span_rule(self):
        grid = PixelGrid(0, 10, 0.0, 1.0, 3, 5)
        assert [grid.column_of(t) for t in range(10)] \
            == [3 * t // 10 for t in range(10)]

    def test_column_clamped(self):
        grid = PixelGrid(0, 10, 0.0, 1.0, 3, 5)
        assert grid.column_of(-5) == 0
        assert grid.column_of(100) == 2

    def test_row_mapping(self):
        grid = PixelGrid(0, 10, 0.0, 10.0, 4, 11)
        assert grid.row_of(0.0) == 0
        assert grid.row_of(10.0) == 10
        assert grid.row_of(5.0) == 5

    def test_flat_value_range(self):
        grid = PixelGrid(0, 10, 5.0, 5.0, 4, 8)
        assert grid.row_of(5.0) == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ReproError):
            PixelGrid(5, 5, 0, 1, 10, 10)
        with pytest.raises(ReproError):
            PixelGrid(0, 5, 0, 1, 0, 10)
        with pytest.raises(ReproError):
            PixelGrid(0, 5, 1, 0, 10, 10)

    def test_for_series(self):
        series = TimeSeries([0, 9], [1.0, 3.0])
        grid = PixelGrid.for_series(series, 10, 5)
        assert grid.t_qs == 0 and grid.t_qe == 10
        assert grid.v_min == 1.0 and grid.v_max == 3.0

    def test_for_empty_series_rejected(self):
        with pytest.raises(ReproError):
            PixelGrid.for_series(TimeSeries.empty(), 10, 5)


class TestRasterize:
    def test_single_point(self):
        series = TimeSeries([5], [1.0])
        grid = PixelGrid(0, 10, 0.0, 2.0, 10, 3)
        matrix = rasterize(series, grid)
        assert matrix.sum() == 1
        assert matrix[1, 5]

    def test_horizontal_line_lights_one_row(self):
        series = TimeSeries([0, 9], [1.0, 1.0])
        grid = PixelGrid(0, 10, 0.0, 2.0, 10, 3)
        matrix = rasterize(series, grid)
        assert matrix[1, :].all() is np.True_ or matrix[1, :9].all()
        assert not matrix[0].any() and not matrix[2].any()

    def test_vertical_jump_fills_column(self):
        series = TimeSeries([5, 6], [0.0, 10.0])
        grid = PixelGrid(0, 10, 0.0, 10.0, 10, 11)
        matrix = rasterize(series, grid)
        # The segment spans the full height across columns 5..6.
        assert matrix[:, 5].sum() + matrix[:, 6].sum() >= 11

    def test_empty_series(self):
        grid = PixelGrid(0, 10, 0.0, 1.0, 4, 4)
        assert rasterize(TimeSeries.empty(), grid).sum() == 0

    def test_every_column_with_data_is_lit(self):
        rng = np.random.default_rng(0)
        t = np.arange(1000, dtype=np.int64)
        v = rng.normal(size=1000)
        series = TimeSeries(t, v)
        grid = PixelGrid.for_series(series, 50, 30)
        matrix = rasterize(series, grid)
        assert matrix.any(axis=0).all()

    def test_column_extent_covers_min_max(self):
        """Within one column, the lit run must include the rows of the
        column's min and max values — the property M4 relies on."""
        rng = np.random.default_rng(3)
        t = np.arange(500, dtype=np.int64)
        v = rng.normal(size=500)
        series = TimeSeries(t, v)
        grid = PixelGrid.for_series(series, 10, 40)
        matrix = rasterize(series, grid)
        for col in range(10):
            rows = [i for i in range(500) if grid.column_of(i) == col]
            seg = v[rows]
            lit = np.flatnonzero(matrix[:, col])
            assert lit[0] <= grid.row_of(float(seg.min()))
            assert lit[-1] >= grid.row_of(float(seg.max()))


class TestBresenham:
    def test_endpoints_always_lit(self):
        series = TimeSeries([0, 9], [0.0, 9.0])
        grid = PixelGrid(0, 10, 0.0, 9.0, 10, 10)
        matrix = rasterize_bresenham(series, grid)
        assert matrix[0, 0] and matrix[9, 9]

    def test_diagonal_is_connected(self):
        series = TimeSeries([0, 9], [0.0, 9.0])
        grid = PixelGrid(0, 10, 0.0, 9.0, 10, 10)
        matrix = rasterize_bresenham(series, grid)
        assert matrix.sum() == 10  # perfect diagonal

    def test_empty_series(self):
        grid = PixelGrid(0, 10, 0.0, 1.0, 4, 4)
        assert rasterize_bresenham(TimeSeries.empty(), grid).sum() == 0
