"""Tests for SVG chart export."""

import xml.etree.ElementTree as ElementTree

import numpy as np
import pytest

from repro.core import TimeSeries, m4_aggregate_series
from repro.errors import ReproError
from repro.viz.svg import m4_result_to_svg, save_svg, series_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def series():
    t = np.arange(100, dtype=np.int64) * 10
    v = np.sin(t / 80.0)
    return TimeSeries(t, v)


class TestSeriesToSvg:
    def test_valid_xml(self, series):
        document = series_to_svg(series)
        root = ElementTree.fromstring(document)
        assert root.tag == SVG_NS + "svg"

    def test_polyline_has_all_points(self, series):
        root = ElementTree.fromstring(series_to_svg(series))
        polyline = root.find(SVG_NS + "polyline")
        assert polyline is not None
        assert len(polyline.get("points").split()) == len(series)

    def test_coordinates_inside_plot_area(self, series):
        root = ElementTree.fromstring(
            series_to_svg(series, width=400, height=200, margin=30))
        polyline = root.find(SVG_NS + "polyline")
        for pair in polyline.get("points").split():
            x, y = map(float, pair.split(","))
            assert 30 - 1e-6 <= x <= 370 + 1e-6
            assert 30 - 1e-6 <= y <= 170 + 1e-6

    def test_title_escaped(self, series):
        document = series_to_svg(series, title="a < b & c")
        assert "a &lt; b &amp; c" in document
        ElementTree.fromstring(document)

    def test_ticks_disabled(self, series):
        root = ElementTree.fromstring(series_to_svg(series, ticks=0))
        assert root.findall(SVG_NS + "text") == []

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            series_to_svg(TimeSeries.empty())

    def test_bad_margins_rejected(self, series):
        with pytest.raises(ReproError):
            series_to_svg(series, width=50, margin=40)

    def test_single_point(self):
        document = series_to_svg(TimeSeries([5], [1.0]))
        ElementTree.fromstring(document)

    def test_constant_value_series(self):
        document = series_to_svg(TimeSeries([1, 2, 3], [7.0, 7.0, 7.0]))
        ElementTree.fromstring(document)


class TestM4Integration:
    def test_result_export_stays_small(self):
        rng = np.random.default_rng(0)
        t = np.arange(100_000, dtype=np.int64)
        big = TimeSeries(t, rng.normal(size=t.size))
        result = m4_aggregate_series(big, w=200)
        document = m4_result_to_svg(result, width=800)
        assert len(document) < 60_000  # ~4 * 200 points, not 100k

    def test_save(self, series, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(series, path, title="demo")
        assert path.read_text().startswith("<svg")
