"""Tests for multi-resolution M4 serving (ZoomService / pyramid)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.multiscale import ZoomService, pyramid


@pytest.fixture
def service(engine):
    engine.create_series("s")
    t = np.arange(20_000, dtype=np.int64)
    engine.write_batch("s", t, np.sin(t / 300.0))
    engine.flush_all()
    return engine, ZoomService(engine, "s", tile_spans=64, max_tiles=8)


class TestViewport:
    def test_full_extent(self, service):
        _engine, zoom = service
        series = zoom.viewport(0, 20_000, 64)
        assert len(series) > 0
        assert series.first().t >= 0 and series.last().t < 20_000

    def test_zoomed_viewport_is_clipped(self, service):
        _engine, zoom = service
        series = zoom.viewport(5_000, 6_000, 64)
        assert series.first().t >= 5_000
        assert series.last().t < 6_000

    def test_panning_reuses_tiles(self, service):
        _engine, zoom = service
        zoom.viewport(0, 2_000, 64)
        misses_after_first = zoom.tile_misses
        zoom.viewport(500, 2_500, 64)  # overlaps the same tiles
        assert zoom.tile_hits > 0
        assert zoom.tile_misses <= misses_after_first + 1

    def test_deeper_zoom_gives_finer_data(self, service):
        _engine, zoom = service
        coarse = zoom.viewport(0, 20_000, 64)
        fine = zoom.viewport(0, 1_000, 64)
        coarse_in_window = coarse.slice_time(0, 1_000)
        assert len(fine) >= len(coarse_in_window)

    def test_empty_viewport_rejected(self, service):
        _engine, zoom = service
        with pytest.raises(ReproError):
            zoom.viewport(5, 5, 64)

    def test_values_match_direct_query(self, service):
        """Tile-served extremes agree with a direct M4 query's bounds."""
        engine, zoom = service
        from repro.core import M4LSMOperator
        series = zoom.viewport(2_000, 10_000, 64)
        direct = M4LSMOperator(engine).query("s", 2_000, 10_000, 64)
        reduced = direct.to_series()
        assert float(series.values.min()) \
            == pytest.approx(float(reduced.values.min()), abs=1e-9)
        assert float(series.values.max()) \
            == pytest.approx(float(reduced.values.max()), abs=1e-9)


class TestInvalidation:
    def test_writes_invalidate_tiles(self, service):
        engine, zoom = service
        before = zoom.viewport(0, 2_000, 64)
        engine.write_batch("s", np.array([100], dtype=np.int64),
                           np.array([99.0]))
        engine.flush_all()
        after = zoom.viewport(0, 2_000, 64)
        assert float(after.values.max()) == 99.0
        assert float(before.values.max()) < 99.0

    def test_deletes_invalidate_tiles(self, service):
        engine, zoom = service
        zoom.viewport(0, 2_000, 64)
        engine.delete("s", 0, 1_000)
        engine.flush_all()
        after = zoom.viewport(0, 2_000, 64)
        assert after.first().t > 1_000

    def test_cache_bounded(self, service):
        _engine, zoom = service
        deepest = zoom.max_level()
        for start in range(0, 20_000, 500):
            zoom.viewport(start, start + 400, 64)
        assert zoom.cache_stats()["tiles"] <= 8
        assert deepest >= 1


class TestConstruction:
    def test_empty_series_rejected(self, engine):
        engine.create_series("empty")
        with pytest.raises(ReproError):
            ZoomService(engine, "empty")

    def test_explicit_extent(self, service):
        engine, _zoom = service
        custom = ZoomService(engine, "s", t_min=100, t_max=200,
                             tile_spans=16)
        series = custom.viewport(100, 200, 16)
        assert series.first().t >= 100


class TestPyramid:
    def test_levels_coarse_to_fine(self, service):
        engine, _zoom = service
        levels = pyramid(engine, "s", 0, 20_000, widths=(10, 100, 1000))
        assert set(levels) == {10, 100, 1000}
        sizes = [levels[w].total_points() for w in (10, 100, 1000)]
        assert sizes == sorted(sizes)
