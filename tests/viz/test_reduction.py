"""Unit tests for the reduction baselines and M4's zero-error property."""

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.viz import (
    PixelGrid,
    REDUCERS,
    compare_pixels,
    m4_reduce,
    minmax_reduce,
    paa_reduce,
    random_sample,
    rasterize,
    systematic_sample,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(8)
    t = np.cumsum(rng.integers(1, 4, 5000)).astype(np.int64)
    v = np.cumsum(rng.normal(0, 1, 5000))
    return t, v


class TestReducers:
    def test_minmax_keeps_extremes_per_span(self, data):
        t, v = data
        reduced = minmax_reduce(t, v, int(t[0]), int(t[-1]) + 1, 10)
        assert len(reduced) <= 20
        assert float(reduced.values.min()) == float(v.min())
        assert float(reduced.values.max()) == float(v.max())

    def test_paa_one_point_per_span(self, data):
        t, v = data
        reduced = paa_reduce(t, v, int(t[0]), int(t[-1]) + 1, 16)
        assert len(reduced) == 16

    def test_systematic_sample_size(self, data):
        t, v = data
        reduced = systematic_sample(t, v, 100)
        assert 100 <= len(reduced) <= 101

    def test_systematic_sample_empty(self):
        out = systematic_sample(np.empty(0, dtype=np.int64), np.empty(0), 5)
        assert len(out) == 0

    def test_random_sample_deterministic(self, data):
        t, v = data
        a = random_sample(t, v, 50, seed=1)
        b = random_sample(t, v, 50, seed=1)
        assert a == b

    def test_random_sample_capped_at_population(self, data):
        t, v = data
        assert len(random_sample(t[:10], v[:10], 100)) == 10

    def test_m4_reduce_keeps_at_most_4w(self, data):
        t, v = data
        reduced = m4_reduce(t, v, int(t[0]), int(t[-1]) + 1, 25)
        assert len(reduced) <= 100


class TestZeroErrorProperty:
    """The paper's core quality claim (Figure 1 / Section 5.1)."""

    @pytest.mark.parametrize("width,height", [(100, 50), (173, 61), (37, 97)])
    def test_m4_is_pixel_exact(self, data, width, height):
        t, v = data
        series = TimeSeries(t, v, validate=False)
        grid = PixelGrid(int(t[0]), int(t[-1]) + 1, float(v.min()),
                         float(v.max()), width, height)
        reference = rasterize(series, grid)
        reduced = m4_reduce(t, v, grid.t_qs, grid.t_qe, width)
        assert compare_pixels(reference, rasterize(reduced, grid)).is_exact()

    def test_m4_exact_with_gaps_and_spikes(self):
        rng = np.random.default_rng(4)
        t = np.cumsum(rng.integers(1, 1000, 2000)).astype(np.int64)
        v = rng.normal(0, 1, 2000)
        v[rng.choice(2000, 10)] += 100
        series = TimeSeries(t, v)
        grid = PixelGrid.for_series(series, 120, 80)
        reference = rasterize(series, grid)
        reduced = m4_reduce(t, v, grid.t_qs, grid.t_qe, 120)
        assert compare_pixels(reference, rasterize(reduced, grid)).is_exact()

    def test_baselines_are_not_exact(self, data):
        t, v = data
        series = TimeSeries(t, v, validate=False)
        grid = PixelGrid.for_series(series, 150, 80)
        reference = rasterize(series, grid)
        errors = {}
        for name, reducer in REDUCERS.items():
            reduced = reducer(t, v, grid.t_qs, grid.t_qe, 150)
            errors[name] = compare_pixels(
                reference, rasterize(reduced, grid)).differing_pixels
        assert errors["M4"] == 0
        for name in ("PAA", "Systematic", "Random"):
            assert errors[name] > 0, name

    def test_m4_exact_even_at_mismatched_chart_height(self, data):
        """The guarantee is per-column; height only scales rows."""
        t, v = data
        series = TimeSeries(t, v, validate=False)
        for height in (10, 333):
            grid = PixelGrid.for_series(series, 90, height)
            reference = rasterize(series, grid)
            reduced = m4_reduce(t, v, grid.t_qs, grid.t_qe, 90)
            assert compare_pixels(reference,
                                  rasterize(reduced, grid)).is_exact()
