"""Unit tests for pixel comparison metrics and chart output."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz import (
    column_value_extents,
    compare_pixels,
    diff_overlay,
    save_pbm,
    side_by_side,
    to_ascii,
    to_pbm,
)


@pytest.fixture
def matrices():
    ref = np.zeros((3, 4), dtype=bool)
    ref[1, 1] = ref[2, 2] = True
    cand = np.zeros((3, 4), dtype=bool)
    cand[1, 1] = cand[0, 3] = True
    return ref, cand


class TestComparePixels:
    def test_identical(self, matrices):
        ref, _ = matrices
        comparison = compare_pixels(ref, ref.copy())
        assert comparison.is_exact()
        assert comparison.error_ratio == 0.0
        assert comparison.ssim_like == 1.0

    def test_differences_classified(self, matrices):
        ref, cand = matrices
        comparison = compare_pixels(ref, cand)
        assert comparison.missing_pixels == 1   # (2,2) missing
        assert comparison.spurious_pixels == 1  # (0,3) spurious
        assert comparison.differing_pixels == 2
        assert comparison.reference_lit == 2
        assert not comparison.is_exact()

    def test_error_ratio(self, matrices):
        ref, cand = matrices
        assert compare_pixels(ref, cand).error_ratio == 2 / 12

    def test_shape_mismatch_rejected(self, matrices):
        ref, _ = matrices
        with pytest.raises(ReproError):
            compare_pixels(ref, np.zeros((2, 2), dtype=bool))

    def test_empty_canvases(self):
        a = np.zeros((2, 2), dtype=bool)
        comparison = compare_pixels(a, a)
        assert comparison.ssim_like == 1.0

    def test_column_value_extents(self, matrices):
        ref, _ = matrices
        assert column_value_extents(ref) == [(-1, -1), (1, 1), (2, 2),
                                             (-1, -1)]


class TestAscii:
    def test_renders_top_row_first(self):
        matrix = np.array([[True, False], [False, True]])
        art = to_ascii(matrix)
        assert art.splitlines() == [".#", "#."]

    def test_custom_glyphs(self):
        matrix = np.array([[True]])
        assert to_ascii(matrix, lit="X", dark="_") == "X"

    def test_downsampling_wide_matrix(self):
        matrix = np.zeros((2, 400), dtype=bool)
        matrix[0, 399] = True
        art = to_ascii(matrix, max_width=100)
        lines = art.splitlines()
        assert len(lines[0]) == 100
        assert lines[1].endswith("#")

    def test_non_2d_rejected(self):
        with pytest.raises(ReproError):
            to_ascii(np.zeros(4, dtype=bool))

    def test_side_by_side(self):
        matrix = np.array([[True, False]])
        out = side_by_side(matrix, matrix, gap=" | ")
        assert out == "#. | #."

    def test_side_by_side_height_mismatch(self):
        with pytest.raises(ReproError):
            side_by_side(np.zeros((1, 2), dtype=bool),
                         np.zeros((2, 2), dtype=bool))


class TestPbm:
    def test_header_and_body(self):
        matrix = np.array([[True, False]])
        pbm = to_pbm(matrix)
        assert pbm.startswith("P1\n2 1\n")
        assert "1 0" in pbm

    def test_save_and_parse(self, tmp_path):
        matrix = np.array([[True, False], [False, True]])
        path = tmp_path / "img.pbm"
        save_pbm(matrix, path)
        content = path.read_text().split()
        assert content[0] == "P1"
        assert content[1:3] == ["2", "2"]


class TestDiffOverlay:
    def test_marks_all_four_states(self, matrices):
        ref, cand = matrices
        overlay = diff_overlay(ref, cand)
        assert "#" in overlay and "-" in overlay and "+" in overlay \
            and "." in overlay

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            diff_overlay(np.zeros((1, 1), dtype=bool),
                         np.zeros((2, 2), dtype=bool))
