"""Session: the user-facing entry point, in the spirit of IoTDB's client.

A session wraps one :class:`StorageEngine` and offers writes, deletes,
SQL execution and direct M4 queries.

>>> # session = Session("/tmp/db")
>>> # session.create_series("root.sg.speed")
>>> # session.insert_batch("root.sg.speed", ts, vs)
>>> # table = session.execute(
>>> #     "SELECT M4(s) FROM root.sg.speed GROUP BY SPANS(1000)")
"""

from __future__ import annotations

from ..core.m4 import M4UDFOperator
from ..core.m4lsm import M4LSMOperator
from ..storage.config import DEFAULT_CONFIG
from ..storage.engine import StorageEngine
from .executor import Executor
from .sql import parse


class Session:
    """A connection-like facade over one storage directory."""

    def __init__(self, data_dir, config=DEFAULT_CONFIG, engine=None):
        self._engine = engine if engine is not None \
            else StorageEngine(data_dir, config)
        self._executor = Executor(self._engine)

    @property
    def engine(self):
        """The underlying :class:`StorageEngine`."""
        return self._engine

    @property
    def metrics(self):
        """The engine's :class:`repro.obs.MetricsRegistry`."""
        return self._engine.metrics

    @property
    def tracer(self):
        """The engine's :class:`repro.obs.Tracer`."""
        return self._engine.tracer

    def slow_queries(self):
        """Entries of the engine's rolling slow-query log."""
        return self._engine.slow_log.entries()

    def stats_snapshot(self):
        """The engine's full observability snapshot (JSON-able dict)."""
        return self._engine.observability_snapshot()

    # -- writes --------------------------------------------------------------------

    def create_series(self, name):
        """Register a series (idempotent); returns its id."""
        return self._engine.create_series(name)

    def insert(self, series, t, v):
        """Insert one point."""
        self._engine.write(series, t, v)

    def insert_batch(self, series, timestamps, values):
        """Insert a batch of points in any time order."""
        self._engine.write_batch(series, timestamps, values)

    def delete(self, series, t_start, t_end):
        """Delete the closed time range ``[t_start, t_end]``."""
        return self._engine.delete(series, t_start, t_end)

    def flush(self):
        """Make all buffered writes query-visible."""
        self._engine.flush_all()

    # -- queries --------------------------------------------------------------------

    def execute(self, statement):
        """Parse and run a SQL statement; returns a ResultTable.

        Buffered writes are flushed first so queries always see the
        latest data (matching IoTDB's read-your-writes behaviour).
        """
        self._engine.flush_all()
        return self._executor.execute(parse(statement),
                                      statement=statement)

    def query_m4(self, series, t_qs, t_qe, w, operator="m4lsm"):
        """Direct M4 query; returns :class:`repro.core.result.M4Result`."""
        self._engine.flush_all()
        if operator == "m4udf":
            return M4UDFOperator(self._engine).query(series, t_qs, t_qe, w)
        return M4LSMOperator(self._engine).query(series, t_qs, t_qe, w)

    def explain_m4(self, series, t_qs, t_qe, w):
        """Run an M4-LSM query and return ``(result, trace)``.

        The trace is the operator's per-span EXPLAIN (see
        :class:`repro.core.m4lsm.tracing.QueryTrace`); ``trace.render()``
        prints how many spans were answered from metadata alone.
        """
        self._engine.flush_all()
        return M4LSMOperator(self._engine).query_traced(series, t_qs,
                                                        t_qe, w)

    def close(self):
        """Seal files and release readers."""
        self._engine.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
