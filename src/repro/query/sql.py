"""A mini SQL dialect for M4 representation queries (Appendix A.1).

The paper expresses M4 as::

    SELECT FirstTime(T), FirstValue(T), LastTime(T), LastValue(T),
           BottomTime(T), BottomValue(T), TopTime(T), TopValue(T)
    FROM T
    GROUP BY floor(@w * (t - @tqs) / (@tqe - @tqs))

This module parses that form (plus a convenience ``M4(...)`` shorthand
and plain ``SELECT time, value`` scans) into a :class:`ParsedQuery`.
Grammar (case-insensitive keywords)::

    query      := select FROM series [where] [groupby] [using]
    select     := SELECT (M4(name) | m4agg ("," m4agg)* |
                  spanagg ("," spanagg)* | column ("," column)*)
    m4agg      := (First|Last|Bottom|Top)(Time|Value) "(" name ")"
    spanagg    := (COUNT|SUM|AVG|MIN_VALUE|MAX_VALUE|MIN_TIME|
                  MAX_TIME|FIRST_VALUE|LAST_VALUE) "(" name ")"
    where      := WHERE time ">=" int AND time "<" int
    groupby    := GROUP BY (SPANS "(" int ")" |
                  FLOOR "(" int "*" "(" "t" "-" int ")" "/"
                  "(" int "-" int ")" ")")
    using      := USING (M4LSM | M4UDF)
"""

from __future__ import annotations

import dataclasses
import re

from ..errors import SqlSyntaxError

_TOKEN_RE = re.compile(r"""
    (?P<number>-?\d+)
  | (?P<name>[A-Za-z_][\w.]*)
  | (?P<op><=|>=|<>|!=|[(),*\-+/<>=])
  | (?P<ws>\s+)
""", re.VERBOSE)

_AGGREGATES = {
    "firsttime": ("FP", "t"), "firstvalue": ("FP", "v"),
    "lasttime": ("LP", "t"), "lastvalue": ("LP", "v"),
    "bottomtime": ("BP", "t"), "bottomvalue": ("BP", "v"),
    "toptime": ("TP", "t"), "topvalue": ("TP", "v"),
}

#: Classic span aggregates served by repro.core.aggregation.
_SPAN_AGGREGATES = frozenset((
    "count", "sum", "avg", "min_value", "max_value",
    "min_time", "max_time", "first_value", "last_value",
))


@dataclasses.dataclass(frozen=True)
class ParsedQuery:
    """Structured form of a statement.

    ``kind`` is ``"m4"`` (aggregating) or ``"raw"`` (plain scan).
    ``columns`` lists output columns; for m4 queries each is an
    ``(function, field)`` pair in SELECT order.
    """

    kind: str
    series: str
    columns: tuple
    t_qs: int = None
    t_qe: int = None
    w: int = None
    operator: str = "m4lsm"


def tokenize(text):
    """Split a statement into tokens; raises on unknown characters."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError("unexpected character %r at offset %d"
                                 % (text[pos], pos))
        pos = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) \
            else None

    def next(self):
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of statement")
        self._pos += 1
        return token

    def expect(self, expected):
        token = self.next()
        if token.lower() != expected.lower():
            raise SqlSyntaxError("expected %r, got %r" % (expected, token))
        return token

    def expect_int(self):
        token = self.next()
        try:
            return int(token)
        except ValueError:
            raise SqlSyntaxError("expected an integer, got %r"
                                 % token) from None

    def at_keyword(self, keyword):
        token = self.peek()
        return token is not None and token.lower() == keyword.lower()

    def done(self):
        return self._pos >= len(self._tokens)


def parse(statement):
    """Parse one statement; returns a :class:`ParsedQuery`."""
    parser = _Parser(tokenize(statement))
    parser.expect("SELECT")
    columns, kind = _parse_select_list(parser)
    parser.expect("FROM")
    series = parser.next()

    t_qs = t_qe = w = None
    operator = "m4lsm"
    if parser.at_keyword("WHERE"):
        t_qs, t_qe = _parse_where(parser)
    if parser.at_keyword("GROUP") or parser.at_keyword("GROUPBY"):
        w, bounds = _parse_group_by(parser)
        if bounds is not None:
            group_qs, group_qe = bounds
            if t_qs is not None and (t_qs, t_qe) != (group_qs, group_qe):
                raise SqlSyntaxError(
                    "WHERE range and GROUP BY floor() range disagree")
            t_qs, t_qe = group_qs, group_qe
    if parser.at_keyword("USING"):
        parser.next()
        operator = parser.next().lower()
        if operator not in ("m4lsm", "m4udf"):
            raise SqlSyntaxError("USING expects M4LSM or M4UDF, got %r"
                                 % operator)
    if not parser.done():
        raise SqlSyntaxError("trailing tokens: %r" % parser.peek())

    if kind in ("m4", "agg") and w is None:
        raise SqlSyntaxError("an aggregating query needs GROUP BY "
                             "SPANS(w) or the floor() form")
    return ParsedQuery(kind=kind, series=series, columns=tuple(columns),
                       t_qs=t_qs, t_qe=t_qe, w=w, operator=operator)


def _parse_select_list(parser):
    first = parser.next()
    lowered = first.lower()
    if lowered == "m4":
        parser.expect("(")
        parser.next()  # the series alias inside M4(...), informational
        parser.expect(")")
        columns = [(function, field)
                   for function in ("FP", "LP", "BP", "TP")
                   for field in ("t", "v")]
        return columns, "m4"
    if lowered in _AGGREGATES:
        columns = [_parse_aggregate(parser, first)]
        while parser.at_keyword(","):
            parser.next()
            columns.append(_parse_aggregate(parser, parser.next()))
        return columns, "m4"
    if lowered in _SPAN_AGGREGATES:
        columns = [_parse_span_aggregate(parser, first)]
        while parser.at_keyword(","):
            parser.next()
            columns.append(_parse_span_aggregate(parser, parser.next()))
        return columns, "agg"
    # Raw scan: SELECT time, value (in any order / subset).
    columns = [_raw_column(first)]
    while parser.at_keyword(","):
        parser.next()
        columns.append(_raw_column(parser.next()))
    return columns, "raw"


def _parse_aggregate(parser, name):
    key = name.lower()
    if key not in _AGGREGATES:
        raise SqlSyntaxError("unknown aggregate %r" % name)
    parser.expect("(")
    parser.next()  # series alias, informational
    parser.expect(")")
    return _AGGREGATES[key]


def _parse_span_aggregate(parser, name):
    key = name.lower()
    if key not in _SPAN_AGGREGATES:
        raise SqlSyntaxError(
            "cannot mix M4 and span aggregates; unknown aggregate %r"
            % name)
    parser.expect("(")
    parser.next()  # series alias, informational
    parser.expect(")")
    return key


def _raw_column(name):
    key = name.lower()
    if key not in ("time", "value", "t", "v"):
        raise SqlSyntaxError("unknown column %r (use time/value)" % name)
    return "t" if key in ("time", "t") else "v"


def _parse_where(parser):
    parser.expect("WHERE")
    parser.expect("time")
    parser.expect(">=")
    t_qs = parser.expect_int()
    parser.expect("AND")
    parser.expect("time")
    parser.expect("<")
    t_qe = parser.expect_int()
    if t_qe <= t_qs:
        raise SqlSyntaxError("empty WHERE range [%d, %d)" % (t_qs, t_qe))
    return t_qs, t_qe


def _parse_group_by(parser):
    token = parser.next()  # GROUP or GROUPBY
    if token.lower() == "group":
        parser.expect("BY")
    keyword = parser.next().lower()
    if keyword == "spans":
        parser.expect("(")
        w = parser.expect_int()
        parser.expect(")")
        return w, None
    if keyword == "floor":
        # floor( w * ( t - tqs ) / ( tqe - tqs ) )
        parser.expect("(")
        w = parser.expect_int()
        parser.expect("*")
        parser.expect("(")
        parser.expect("t")
        parser.expect("-")
        t_qs = parser.expect_int()
        parser.expect(")")
        parser.expect("/")
        parser.expect("(")
        t_qe = parser.expect_int()
        parser.expect("-")
        again = parser.expect_int()
        parser.expect(")")
        parser.expect(")")
        if again != t_qs:
            raise SqlSyntaxError(
                "floor() denominator must reuse t_qs=%d, got %d"
                % (t_qs, again))
        return w, (t_qs, t_qe)
    raise SqlSyntaxError("GROUP BY expects SPANS(w) or floor(...), got %r"
                         % keyword)
