"""Query layer: the mini SQL dialect and the Session facade."""

from .executor import Executor, ResultTable
from .session import Session
from .sql import ParsedQuery, parse, tokenize

__all__ = [
    "Executor",
    "ParsedQuery",
    "ResultTable",
    "Session",
    "parse",
    "tokenize",
]
