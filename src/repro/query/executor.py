"""Execution of parsed queries against a storage engine.

Every :meth:`Executor.execute` call is observed: latency lands in the
engine's ``query_seconds`` histogram (labelled by query kind and
operator), the ``queries_total`` counter ticks, and queries slower than
``StorageConfig.slow_query_seconds`` enter the engine's rolling
slow-query log.
"""

from __future__ import annotations

import dataclasses
import time

from ..core.m4 import M4UDFOperator
from ..core.m4lsm import M4LSMOperator
from ..errors import QueryError
from ..obs import tracer_of
from .sql import ParsedQuery

_FIELD_NAMES = {
    ("FP", "t"): "FirstTime", ("FP", "v"): "FirstValue",
    ("LP", "t"): "LastTime", ("LP", "v"): "LastValue",
    ("BP", "t"): "BottomTime", ("BP", "v"): "BottomValue",
    ("TP", "t"): "TopTime", ("TP", "v"): "TopValue",
}
_POINT_ATTR = {"FP": "first", "LP": "last", "BP": "bottom", "TP": "top"}


@dataclasses.dataclass(frozen=True)
class ResultTable:
    """A tabular query result: column names plus row tuples.

    ``meta`` carries out-of-band result annotations — currently the
    degraded-read flag and skipped time ranges — and never affects
    equality: two tables with the same rows are the same answer.
    """

    columns: tuple
    rows: tuple
    meta: dict = dataclasses.field(default_factory=dict, compare=False)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name):
        """All values of one named column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError("no column %r (have %s)"
                             % (name, list(self.columns))) from None
        return [row[index] for row in self.rows]

    def pretty(self, max_rows=20):
        """A fixed-width text rendering for terminals."""
        header = [str(c) for c in self.columns]
        body = [[_fmt(cell) for cell in row] for row in self.rows[:max_rows]]
        widths = [max(len(header[i]), *(len(r[i]) for r in body))
                  if body else len(header[i]) for i in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w)
                                   for cell, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append("... (%d more rows)" % (len(self.rows) - max_rows))
        return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.6g" % cell
    return str(cell)


def _degraded_meta(skipped):
    """``ResultTable.meta`` for a degraded answer (empty when healthy)."""
    if not skipped:
        return {}
    return {"degraded": True,
            "skipped_ranges": [[int(s), int(e)] for s, e in skipped]}


class Executor:
    """Runs :class:`ParsedQuery` objects against one engine.

    ``degraded``: skip quarantined/corrupt chunks and annotate the
    result (``ResultTable.meta``) instead of raising; ``None`` follows
    ``engine.config.degraded_reads``; ``False`` is strict mode — any
    checksum failure surfaces as a :class:`CorruptFileError`.
    """

    def __init__(self, engine, degraded=None):
        self._engine = engine
        self._degraded = degraded

    def execute(self, parsed, statement=None, slow_info=None):
        """Dispatch on query kind; returns a :class:`ResultTable`.

        ``statement`` is the original SQL text, used verbatim in the
        slow-query log (a synthesized description is logged otherwise).
        ``slow_info`` is an optional dict of extra fields for the
        slow-query entry — the server passes its request id and
        endpoint through here.
        """
        if not isinstance(parsed, ParsedQuery):
            raise QueryError("execute() expects a ParsedQuery")
        tracer = tracer_of(self._engine)
        started = time.perf_counter()
        with tracer.span("query", kind=parsed.kind,
                         operator=parsed.operator, series=parsed.series):
            if parsed.kind == "m4":
                table = self._execute_m4(parsed)
            elif parsed.kind == "agg":
                table = self._execute_agg(parsed)
            else:
                table = self._execute_raw(parsed)
        self._observe(parsed, statement, time.perf_counter() - started,
                      slow_info=slow_info)
        return table

    def _observe(self, parsed, statement, seconds, slow_info=None):
        metrics = getattr(self._engine, "metrics", None)
        if metrics is not None:
            metrics.counter("query_total", kind=parsed.kind,
                            operator=parsed.operator).inc()
            metrics.histogram("query_seconds", kind=parsed.kind).observe(
                seconds)
        slow_log = getattr(self._engine, "slow_log", None)
        if slow_log is not None:
            if statement is None:
                statement = "%s %s [%s, %s) w=%s" % (
                    parsed.kind, parsed.series, parsed.t_qs, parsed.t_qe,
                    parsed.w)
            slow_log.record(statement, seconds, kind=parsed.kind,
                            series=parsed.series,
                            operator=parsed.operator,
                            **(slow_info or {}))

    def _operator(self, name):
        if name == "m4udf":
            return M4UDFOperator(self._engine, degraded=self._degraded)
        if getattr(self._engine, "tile_cache", None) is not None:
            # Byte-identical to the plain operator; eligible viewports
            # stitch from cached tiles (strict/degraded overrides that
            # differ from the engine default bypass internally).
            from ..core.tiles import TiledM4Operator
            return TiledM4Operator(self._engine, degraded=self._degraded)
        return M4LSMOperator(self._engine, degraded=self._degraded)

    def _resolve_range(self, parsed):
        t_qs, t_qe = parsed.t_qs, parsed.t_qe
        if t_qs is None or t_qe is None:
            chunks = self._engine.chunks_for(parsed.series)
            if not chunks:
                raise QueryError("series %r is empty and the query gave "
                                 "no WHERE range" % parsed.series)
            t_qs = min(c.start_time for c in chunks) if t_qs is None else t_qs
            t_qe = max(c.end_time for c in chunks) + 1 if t_qe is None \
                else t_qe
        return t_qs, t_qe

    def explain(self, parsed, statement=None):
        """Like :meth:`execute`, also returning the M4-LSM
        :class:`~repro.core.m4lsm.tracing.QueryTrace`.

        Returns ``(table, trace)``; ``trace`` is None for query kinds
        (raw scans, plain aggregates, M4-UDF) that have no per-span
        solver trace — the hierarchical span tree on
        ``engine.tracer.last_root`` still covers those.
        """
        if not isinstance(parsed, ParsedQuery):
            raise QueryError("explain() expects a ParsedQuery")
        if parsed.kind != "m4" or parsed.operator == "m4udf":
            return self.execute(parsed, statement=statement), None
        tracer = tracer_of(self._engine)
        started = time.perf_counter()
        with tracer.span("query", kind=parsed.kind,
                         operator=parsed.operator, series=parsed.series):
            t_qs, t_qe = self._resolve_range(parsed)
            operator = M4LSMOperator(self._engine, degraded=self._degraded)
            result, trace = operator.query_traced(
                parsed.series, t_qs, t_qe, parsed.w)
            table = self._m4_table(parsed, result)
        self._observe(parsed, statement, time.perf_counter() - started)
        return table, trace

    def _execute_m4(self, parsed):
        t_qs, t_qe = self._resolve_range(parsed)
        operator = self._operator(parsed.operator)
        result = operator.query(parsed.series, t_qs, t_qe, parsed.w)
        return self._m4_table(parsed, result)

    def _m4_table(self, parsed, result):
        columns = ["span"] + [_FIELD_NAMES[c] for c in parsed.columns]
        rows = []
        for i, span in enumerate(result.spans):
            if span.is_empty():
                continue
            row = [i]
            for function, field in parsed.columns:
                point = getattr(span, _POINT_ATTR[function])
                row.append(point.t if field == "t" else point.v)
            rows.append(tuple(row))
        return ResultTable(tuple(columns), tuple(rows),
                           _degraded_meta(result.skipped
                                          if result.degraded else None))

    def _execute_agg(self, parsed):
        from ..core.aggregation import aggregate_lsm, aggregate_udf
        t_qs, t_qe = self._resolve_range(parsed)
        runner = aggregate_udf if parsed.operator == "m4udf" \
            else aggregate_lsm
        result = runner(self._engine, parsed.series, t_qs, t_qe,
                        parsed.w, parsed.columns)
        columns = ["span"] + [name.upper() for name in parsed.columns]
        rows = []
        for i in result.non_empty():
            rows.append((i,) + result.rows[i])
        return ResultTable(tuple(columns), tuple(rows))

    def _execute_raw(self, parsed):
        t_qs, t_qe = self._resolve_range(parsed)
        operator = M4UDFOperator(self._engine, degraded=self._degraded)
        skipped = []
        series = operator.merged_series(parsed.series, t_qs, t_qe,
                                        skipped=skipped)
        names = {"t": "time", "v": "value"}
        columns = tuple(names[c] for c in parsed.columns)
        t = series.timestamps
        v = series.values
        data = {"t": t, "v": v}
        stacked = [data[c] for c in parsed.columns]
        rows = tuple(tuple(int(col[i]) if parsed.columns[j] == "t"
                           else float(col[i])
                           for j, col in enumerate(stacked))
                     for i in range(t.size))
        return ResultTable(columns, rows,
                           _degraded_meta(skipped if skipped else None))
