"""The live delta feed: per-series change sequence for ``GET /live``.

The feed is transport-agnostic: the ingest writer publishes "series
``s`` changed in ``[lo, hi)``" events, each stamped with a per-series
monotonically increasing sequence number, and long-poll / SSE handlers
block on :meth:`LiveFeed.wait` until the client's cursor is behind the
head.  The handler then recomputes the M4 cells covering the merged
changed range (grid-aligned, so the delta splices byte-identically
into the client's chart — the same cell argument as the tile cache)
and ships ``(new_cursor, ranges, spans)``.

Events live in a bounded per-series ring.  A client whose cursor has
fallen off the ring gets ``reset=True`` and must refetch its whole
viewport — the same conservative contract as the tile cache's
invalidation log.
"""

from __future__ import annotations

import collections
import threading

from ..core.result import merge_time_ranges
from ..errors import ServerOverloadedError

#: Per-series event ring length (cursor older than this resets).
_EVENT_LOG = 1024


class LiveFeed:
    """Condition-guarded change log consumed by ``/live`` handlers.

    Args:
        metrics: optional :class:`repro.obs.MetricsRegistry`; receives
            the ``live_subscribers`` gauge and
            ``live_events_total`` / ``live_resets_total`` counters.
        max_subscribers: concurrent waiter cap; beyond it
            :meth:`subscriber` sheds with a 503
            :class:`~repro.errors.ServerOverloadedError`.

    Thread-safe; the internal lock is a leaf (publishers call from
    the ingest writer thread without holding engine locks).
    """

    def __init__(self, metrics=None, max_subscribers=64):
        from ..obs import NULL_REGISTRY
        metrics = metrics if metrics is not None else NULL_REGISTRY
        if max_subscribers < 1:
            raise ValueError("max_subscribers must be >= 1")
        self._cond = threading.Condition()
        self._max_subscribers = int(max_subscribers)
        self._subscribers = 0
        self._seq = {}      # series -> head sequence number
        self._events = {}   # series -> deque of (seq, lo, hi)
        self._dropped = {}  # series -> highest seq fallen off the ring
        self._closed = False
        self._g_subs = metrics.gauge("live_subscribers")
        self._c_events = metrics.counter("live_events_total")
        self._c_resets = metrics.counter("live_resets_total")

    @property
    def subscribers(self):
        """Waiters currently registered via :meth:`subscriber`."""
        return self._subscribers

    @property
    def closed(self):
        """True once :meth:`close` ran (server draining)."""
        return self._closed

    def close(self):
        """Wake every waiter and make further waits return at once.

        Called from the service's shutdown path so long-poll and SSE
        handlers release promptly instead of holding the drain hostage
        for their full timeout."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def cursor(self, series):
        """The series' current head sequence (0 = never written)."""
        with self._cond:
            return self._seq.get(series, 0)

    def publish(self, series, lo, hi):
        """Record "``series`` changed in ``[lo, hi)``" and wake waiters.

        Returns the event's sequence number.
        """
        lo, hi = int(lo), int(hi)
        with self._cond:
            seq = self._seq.get(series, 0) + 1
            self._seq[series] = seq
            ring = self._events.get(series)
            if ring is None:
                ring = self._events[series] = collections.deque(
                    maxlen=_EVENT_LOG)
            if len(ring) == ring.maxlen:
                self._dropped[series] = ring[0][0]
            ring.append((seq, lo, hi))
            self._c_events.inc()
            self._cond.notify_all()
            return seq

    def subscriber(self):
        """Context manager registering one waiter (gauge + shed cap)."""
        return _Subscription(self)

    def wait(self, series, cursor, timeout):
        """Block until the series moves past ``cursor`` (long-poll).

        Returns ``(head, ranges, reset)``:

        * ``head`` — the new cursor the client should resume from;
        * ``ranges`` — merged half-open time ranges changed in
          ``(cursor, head]``, empty on timeout;
        * ``reset`` — True when ``cursor`` predates the retained ring
          (the client must refetch its viewport, then resume from
          ``head``).
        """
        cursor = int(cursor)
        with self._cond:
            ready = lambda: (self._closed  # noqa: E731
                             or self._seq.get(series, 0) > cursor)
            if timeout is None:
                self._cond.wait_for(ready)
            elif timeout > 0:
                self._cond.wait_for(ready, timeout)
            # timeout <= 0: non-blocking peek
            head = self._seq.get(series, 0)
            if head <= cursor:
                return head, (), False
            if cursor < self._dropped.get(series, 0):
                self._c_resets.inc()
                return head, (), True
            ranges = [(lo, hi) for seq, lo, hi
                      in self._events.get(series, ())
                      if seq > cursor]
            return head, merge_time_ranges(ranges), False


class _Subscription:
    """Registers a waiter for its ``with`` scope; sheds past the cap."""

    def __init__(self, feed):
        self._feed = feed

    def __enter__(self):
        feed = self._feed
        with feed._cond:
            if feed._subscribers >= feed._max_subscribers:
                raise ServerOverloadedError(
                    "live feed at max subscribers (%d)"
                    % feed._max_subscribers)
            feed._subscribers += 1
            feed._g_subs.set(feed._subscribers)
        return feed

    def __exit__(self, *exc_info):
        feed = self._feed
        with feed._cond:
            feed._subscribers -= 1
            feed._g_subs.set(feed._subscribers)
