"""Streaming ingest: backpressured writes + the live delta feed.

See DESIGN.md §13 for the streaming model (backpressure contract,
incremental-M4 correctness argument, ``/live`` semantics).
"""

from .controller import IngestController, batch_nbytes
from .live import LiveFeed

__all__ = [
    "IngestController",
    "LiveFeed",
    "batch_nbytes",
]
