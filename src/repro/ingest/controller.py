"""Streaming ingest: bounded queue, tenant budgets, one writer thread.

:class:`IngestController` sits between the HTTP handlers and the
engine.  Handler threads call :meth:`IngestController.submit`, which
either enqueues the batch (cheap: a bounds check and an append) or
sheds it with :class:`~repro.errors.IngestBackpressureError` — the
429 / ``Retry-After`` contract — when the global queue byte budget or
the caller's per-tenant budget is exhausted.  A single writer thread
drains the queue: it groups consecutive batches, applies them through
``engine.write_batch`` (entering the PR-2 lock hierarchy exactly like
any other writer, so the incremental-tile bookkeeping in the engine
applies unchanged), flushes each touched series once per drain cycle
for query visibility, and publishes the changed time range to the
:class:`~repro.ingest.live.LiveFeed`.

One writer thread is deliberate: it serializes WAL appends and flushes
per drain cycle (amortizing fsyncs across batches), keeps apply-order
equal to accept-order — which is what makes the last-write-wins
torture contract (``repro.datasets.torture``) hold end to end — and
pushes all queueing to the explicit, observable bounded queue instead
of lock convoys.

Observability (all on the engine registry): ``ingest_points_total``,
``ingest_batches_total``, ``ingest_sheds_total``,
``ingest_out_of_order_batches_total``, ``ingest_apply_errors_total``,
``ingest_queue_bytes`` / ``ingest_queue_batches`` gauges,
``ingest_apply_seconds`` histogram, and a traced ``ingest.apply`` span
per drain cycle.
"""

from __future__ import annotations

import collections
import logging
import threading
import time

import numpy as np

from ..errors import IngestBackpressureError, SeriesNotFoundError
from ..obs.tracer import tracer_of

log = logging.getLogger("repro.ingest")

#: Fixed per-batch queue charge on top of the point payload.
_BATCH_OVERHEAD = 64
#: Bytes charged per queued point (int64 timestamp + float64 value).
_POINT_BYTES = 16


def batch_nbytes(n_points):
    """Queue byte charge of one ``n_points`` batch."""
    return _BATCH_OVERHEAD + _POINT_BYTES * int(n_points)


class IngestController:
    """Backpressured streaming writes into one engine.

    Args:
        engine: the :class:`~repro.storage.engine.StorageEngine`.
        queue_bytes: global bound on queued-but-unapplied bytes; a
            submit that would exceed it sheds with a 429.
        tenant_budget_bytes: per-tenant share of the queue (0 = no
            per-tenant cap, only the global bound applies).
        retry_after_seconds: suggested back-off carried by sheds.
        auto_create: register unknown series on first submit (off:
            unknown series raise :class:`SeriesNotFoundError`).
        live_feed: optional :class:`~repro.ingest.live.LiveFeed`
            receiving one change event per applied series per cycle.
        ack_mode: when to acknowledge a submit — ``"queued"`` (default:
            as soon as the batch is enqueued), ``"applied"`` (block
            until the writer applied it; the ack then reflects WAL
            durability on this node) or ``"replicated"`` (addition-
            ally block until every live replica acked the shipped
            frames — ack-after-ship durability).
        ship_wait: callable ``(timeout) -> bool`` used by
            ``ack_mode="replicated"`` (the replication manager's
            :meth:`wait_shipped`).
        ack_timeout_seconds: cap on the blocking ack modes; on timeout
            the ack reports the weaker durability level actually
            reached instead of failing the request.
    """

    def __init__(self, engine, queue_bytes=8 << 20,
                 tenant_budget_bytes=0, retry_after_seconds=1,
                 auto_create=True, live_feed=None, ack_mode="queued",
                 ship_wait=None, ack_timeout_seconds=10.0):
        if queue_bytes <= 0:
            raise ValueError("queue_bytes must be positive")
        if tenant_budget_bytes < 0:
            raise ValueError("tenant_budget_bytes must be >= 0")
        if ack_mode not in ("queued", "applied", "replicated"):
            raise ValueError("ack_mode must be queued, applied or "
                             "replicated")
        if ack_mode == "replicated" and ship_wait is None:
            raise ValueError("ack_mode='replicated' needs a ship_wait "
                             "hook (configure replicas)")
        self._engine = engine
        self._queue_bytes = int(queue_bytes)
        self._tenant_budget = int(tenant_budget_bytes)
        self._retry_after = int(retry_after_seconds)
        self._auto_create = bool(auto_create)
        self._feed = live_feed
        self._ack_mode = ack_mode
        self._ship_wait = ship_wait
        self._ack_timeout = float(ack_timeout_seconds)
        metrics = engine.metrics
        self._c_points = metrics.counter("ingest_points_total")
        self._c_batches = metrics.counter("ingest_batches_total")
        self._c_sheds = metrics.counter("ingest_sheds_total")
        self._c_ooo = metrics.counter(
            "ingest_out_of_order_batches_total")
        self._c_errors = metrics.counter("ingest_apply_errors_total")
        self._g_bytes = metrics.gauge("ingest_queue_bytes")
        self._g_depth = metrics.gauge("ingest_queue_batches")
        self._h_apply = metrics.histogram("ingest_apply_seconds")
        self._cond = threading.Condition()
        self._queue = collections.deque()  # (series, t, v, nbytes, tenant)
        self._pending_bytes = 0
        self._tenant_bytes = {}
        self._accepted = 0   # batches ever enqueued
        self._applied = 0    # batches ever applied (or dropped on error)
        self._high = {}      # series -> highest applied timestamp
        self._closed = False
        self._thread = threading.Thread(target=self._run,
                                        name="repro-ingest-writer",
                                        daemon=True)
        self._thread.start()

    @property
    def live_feed(self):
        """The attached :class:`LiveFeed` (or None)."""
        return self._feed

    @property
    def writer_alive(self):
        """Is the single writer thread still running?

        ``/healthz`` reports this: a writer that died mid-cycle (a
        non-``Exception`` escape) would otherwise stall the queue
        silently while submits keep filling it."""
        return self._thread.is_alive()

    @property
    def closed(self):
        """True once :meth:`close` has completed its handoff."""
        with self._cond:
            return self._closed

    @property
    def ack_mode(self):
        """The configured acknowledgement mode."""
        return self._ack_mode

    # -- producer side -----------------------------------------------------------------

    def submit(self, series, timestamps, values, tenant="default"):
        """Enqueue one batch; sheds instead of blocking.

        Returns an ack dict (``accepted``, ``pending_bytes``,
        ``pending_batches``).  Raises
        :class:`~repro.errors.IngestBackpressureError` when the queue
        or the tenant budget is full, :class:`SeriesNotFoundError`
        for an unknown series with ``auto_create`` off, and
        ``ValueError`` on malformed arrays.
        """
        t = np.asarray(timestamps, dtype=np.int64)
        v = np.asarray(values, dtype=np.float64)
        if t.ndim != 1 or t.shape != v.shape:
            raise ValueError("timestamps/values must be equal-length "
                             "1-d arrays")
        if t.size == 0:
            raise ValueError("empty batch")
        if self._auto_create:
            self._engine.create_series(series)
        elif series not in self._engine.series_names():
            raise SeriesNotFoundError("unknown series %r" % series)
        nbytes = batch_nbytes(t.size)
        tenant = str(tenant)
        with self._cond:
            if self._closed:
                raise IngestBackpressureError(
                    "ingest is shut down", retry_after=self._retry_after)
            if self._pending_bytes + nbytes > self._queue_bytes:
                self._c_sheds.inc()
                raise IngestBackpressureError(
                    "ingest queue full (%d of %d bytes pending)"
                    % (self._pending_bytes, self._queue_bytes),
                    retry_after=self._retry_after)
            if self._tenant_budget:
                used = self._tenant_bytes.get(tenant, 0)
                if used + nbytes > self._tenant_budget:
                    self._c_sheds.inc()
                    raise IngestBackpressureError(
                        "tenant %r over ingest budget (%d of %d bytes)"
                        % (tenant, used, self._tenant_budget),
                        retry_after=self._retry_after)
            self._queue.append((series, t, v, nbytes, tenant))
            self._pending_bytes += nbytes
            self._tenant_bytes[tenant] = \
                self._tenant_bytes.get(tenant, 0) + nbytes
            self._accepted += 1
            ticket = self._accepted
            self._g_bytes.set(self._pending_bytes)
            self._g_depth.set(len(self._queue))
            self._cond.notify_all()
            ack = {"accepted": int(t.size),
                   "pending_bytes": self._pending_bytes,
                   "pending_batches": len(self._queue)}
        if self._ack_mode == "queued":
            return ack
        # Blocking ack modes: wait for the writer to apply this batch
        # (every earlier ticket applies first — apply order is accept
        # order), then optionally for the replicas to ack the shipped
        # frames.  On timeout the ack reports the level reached.
        deadline = time.monotonic() + self._ack_timeout
        with self._cond:
            applied = self._cond.wait_for(
                lambda: self._applied >= ticket,
                timeout=self._ack_timeout)
        ack["durability"] = "applied" if applied else "queued"
        if self._ack_mode == "replicated" and applied:
            remaining = max(0.05, deadline - time.monotonic())
            if self._ship_wait(remaining):
                ack["durability"] = "replicated"
        return ack

    def drain(self, timeout=30.0):
        """Block until every accepted batch has been applied.

        Returns True when the queue fully drained within ``timeout``.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._applied >= self._accepted, timeout)

    def stats(self):
        """Queue occupancy snapshot (counters live in the registry)."""
        with self._cond:
            return {"pending_bytes": self._pending_bytes,
                    "pending_batches": len(self._queue),
                    "queue_bytes_limit": self._queue_bytes,
                    "tenant_budget_bytes": self._tenant_budget,
                    "accepted_batches": self._accepted,
                    "applied_batches": self._applied}

    def close(self, timeout=30.0):
        """Drain, then stop the writer thread.  Idempotent."""
        self.drain(timeout)
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)

    # -- writer thread -----------------------------------------------------------------

    def _run(self):
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._queue or self._closed)
                if not self._queue and self._closed:
                    return
                # Drain the whole backlog in one cycle so each touched
                # series flushes once, not once per batch.
                cycle = list(self._queue)
                self._queue.clear()
            try:
                self._apply_cycle(cycle)
            finally:
                with self._cond:
                    for _series, _t, _v, nbytes, tenant in cycle:
                        self._pending_bytes -= nbytes
                        left = self._tenant_bytes.get(tenant, 0) - nbytes
                        if left > 0:
                            self._tenant_bytes[tenant] = left
                        else:
                            self._tenant_bytes.pop(tenant, None)
                    self._applied += len(cycle)
                    self._g_bytes.set(self._pending_bytes)
                    self._g_depth.set(len(self._queue))
                    self._cond.notify_all()

    def _apply_cycle(self, cycle):
        tracer = tracer_of(self._engine)
        started = time.perf_counter()
        touched = {}  # series -> [lo, hi) applied this cycle
        with tracer.span("ingest.apply", batches=len(cycle)):
            for series, t, v, _nbytes, _tenant in cycle:
                try:
                    self._engine.write_batch(series, t, v)
                except Exception:
                    self._c_errors.inc()
                    log.exception("ingest apply failed for %r", series)
                    continue
                lo, hi = int(t.min()), int(t.max()) + 1
                high = self._high.get(series)
                if high is not None and lo <= high:
                    self._c_ooo.inc()
                self._high[series] = max(high if high is not None
                                         else lo, hi - 1)
                self._c_points.inc(int(t.size))
                self._c_batches.inc()
                if series in touched:
                    touched[series] = (min(touched[series][0], lo),
                                       max(touched[series][1], hi))
                else:
                    touched[series] = (lo, hi)
            for series in touched:
                try:
                    self._engine.flush(series)
                except Exception:
                    self._c_errors.inc()
                    log.exception("ingest flush failed for %r", series)
        self._h_apply.observe(time.perf_counter() - started)
        if self._feed is not None:
            for series, (lo, hi) in touched.items():
                self._feed.publish(series, lo, hi)
