"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can guard any call with a single ``except ReproError``.  Subclasses
are grouped by subsystem: storage, encoding, query and index.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StorageError(ReproError):
    """Base class for storage engine failures."""


class EncodingError(StorageError):
    """Raised when a page cannot be encoded or decoded."""


class CorruptFileError(StorageError):
    """Raised when a persisted file fails structural validation (bad
    magic, truncated section, checksum mismatch).

    ``path`` names the damaged file when known; ``chunk`` is a
    ``(file_path, data_offset)`` pair when the damage is attributable to
    one chunk — the degraded-read path uses it to quarantine exactly the
    offending chunk and keep serving the rest of the series."""

    def __init__(self, message, *, path=None, chunk=None):
        super().__init__(message)
        self.path = path
        self.chunk = chunk


class ChunkNotFoundError(StorageError):
    """Raised when a chunk handle refers to a missing chunk."""


class SeriesNotFoundError(StorageError):
    """Raised when a query references a series the engine does not store."""


class ReadOnlyError(StorageError):
    """Raised on an attempt to mutate sealed, read-only storage."""


class DeadlineExceededError(ReproError):
    """Raised when a request's cooperative deadline expires mid-query.

    The chunk pipeline and the M4 operators check the current thread's
    deadline at their natural cancellation points, so a timed-out query
    aborts cleanly between chunks/spans instead of running to
    completion."""


class ServerError(ReproError):
    """Base class for query-service failures (client and server side).

    ``status`` is the HTTP status code associated with the failure."""

    status = 500

    def __init__(self, message, status=None):
        super().__init__(message)
        if status is not None:
            self.status = int(status)


class ServerOverloadedError(ServerError):
    """Raised when the admission queue is full and a request is shed.

    ``retry_after`` is the suggested client back-off in seconds (the
    HTTP ``Retry-After`` value)."""

    status = 503

    def __init__(self, message, retry_after=1):
        super().__init__(message)
        self.retry_after = int(retry_after)


class IngestBackpressureError(ServerError):
    """Raised when the streaming ingest queue (or a tenant's byte
    budget) is full and a batch is shed.

    Maps to HTTP 429; ``retry_after`` is the suggested client back-off
    in seconds (the ``Retry-After`` header value)."""

    status = 429

    def __init__(self, message, retry_after=1):
        super().__init__(message)
        self.retry_after = int(retry_after)


class ReplicationError(ReproError):
    """Base class for replication failures (framing, transport, state).

    Raised when a replication stream cannot be decoded (bad magic,
    CRC mismatch, truncated frame) or when a node receives a stream it
    cannot apply (wrong role, unknown epoch with no resync)."""


class NotPrimaryError(ServerError):
    """Raised when a write is sent to a standby replica.

    Maps to HTTP 409; ``primary`` is the advertised URL of the current
    primary when the standby knows it, so clients can follow."""

    status = 409

    def __init__(self, message, primary=None):
        super().__init__(message)
        self.primary = primary


class ShardError(ReproError):
    """Base class for shard router failures (placement, topology,
    pipe protocol, worker transport)."""


class ShardProtocolError(ShardError):
    """Raised when a shard pipe frame cannot be decoded (bad magic,
    oversized length, checksum mismatch).  A protocol error on a shard
    connection is unrecoverable: the router marks the shard dead."""


class ShardDownError(ShardError):
    """Raised when an operation targets a shard whose worker process
    has died (EOF on the pipe, or a non-zero exit observed).

    ``shard`` is the integer shard id when known.  The serving layer
    treats a dead shard like a quarantined chunk: non-strict reads
    degrade (empty, flagged results) instead of failing, writes and
    strict reads surface the error."""

    def __init__(self, message, shard=None):
        super().__init__(message)
        self.shard = shard


class QueryError(ReproError):
    """Base class for query layer failures."""


class SqlSyntaxError(QueryError):
    """Raised when the mini SQL dialect cannot parse a statement."""


class InvalidQueryRangeError(QueryError):
    """Raised when a query's time range or span count is invalid
    (``t_qs >= t_qe`` or ``w <= 0``)."""


class IndexError_(ReproError):
    """Base class for chunk index failures.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`, which callers may also want to catch separately.
    """


class StepRegressionError(IndexError_):
    """Raised when a step regression function cannot be fitted
    (for example a chunk with fewer than two points)."""
