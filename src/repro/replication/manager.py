"""Node-level replication orchestration: roles, leases, promotion.

One :class:`ReplicationManager` per server process ties the pieces
together:

* a **primary** owns the :class:`ReplicationLog` (attached to the
  engine so every acknowledged mutation appends a frame) and one
  :class:`Shipper` thread per configured replica, plus the
  anti-entropy :meth:`sweep`;
* a **standby** owns the :class:`ReplicaApplier` that ``POST
  /replicate`` bodies are fed through, and — when ``auto_promote`` is
  on — a lease monitor that promotes the node once the primary has
  been silent longer than the lease.

:meth:`promote` is the failover pivot, reachable manually (``repro
promote`` / ``POST /replication/promote``) and from the lease monitor:
it freezes the applier (the old primary's frames are answered
``state: "frozen"`` forever after, so a zombie primary can never
overwrite the new timeline), attaches a fresh log with a fresh epoch,
and the node starts accepting writes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from ..errors import ReplicationError
from . import antientropy
from .apply import ReplicaApplier
from .log import ReplicationLog, new_epoch
from .ship import Shipper


class ReplicationManager:
    """Wires a storage engine into a replication role."""

    def __init__(self, engine, *, role="primary", replicate_to=(),
                 node_id=None, advertise=None, lease_seconds=5.0,
                 auto_promote=False, registry=None):
        if role not in ("primary", "standby"):
            raise ValueError("role must be primary or standby")
        self._engine = engine
        self._registry = registry if registry is not None \
            else engine.metrics
        self.node_id = node_id or "node-%06x" % (new_epoch() & 0xFFFFFF)
        self.advertise = advertise
        self.lease_seconds = float(lease_seconds)
        self.auto_promote = bool(auto_promote)
        self._replicate_to = [u.rstrip("/") for u in replicate_to]
        self._lock = threading.RLock()
        self._stopped = threading.Event()
        self._monitor = None
        self.log = None
        self.applier = None
        self._shippers = []
        self._c_promotions = self._registry.counter(
            "replication_promotions_total")
        self._c_sweeps = self._registry.counter("replication_sweeps_total")
        self._c_repaired = self._registry.counter(
            "replication_repaired_series_total")
        self.role = role
        if role == "primary":
            self._become_primary()
        else:
            self.applier = ReplicaApplier(engine, node_id=self.node_id,
                                          registry=self._registry)
            if self.auto_promote:
                self._monitor = threading.Thread(
                    target=self._lease_loop, name="repro-lease-monitor",
                    daemon=True)
                self._monitor.start()

    # -- role transitions ------------------------------------------------------------------

    def _become_primary(self):
        self.log = ReplicationLog(registry=self._registry)
        self._engine.attach_replication(self.log)
        self._registry.gauge("replication_role_primary").set(1)
        for url in self._replicate_to:
            self._shippers.append(Shipper(
                self.log, url, self._snapshot, node_id=self.node_id,
                advertise=self.advertise, lease_seconds=self.lease_seconds,
                registry=self._registry).start())

    def promote(self, reason="manual"):
        """Turn a standby into a writable primary (idempotent).

        The applier is frozen first, so the promotion point is a clean
        cut: every record applied before it is kept, every frame the
        old primary sends after it is refused.
        """
        with self._lock:
            if self.role == "primary":
                return self.status()
            if self.applier is not None:
                self.applier.freeze()
            self.role = "primary"
            self._become_primary()
            self._c_promotions.inc()
            self._registry.counter("replication_promotions_total",
                                   reason=reason).inc()
            return self.status()

    def _lease_loop(self):
        interval = max(0.05, self.lease_seconds / 4.0)
        # The boot grace period equals one full lease: the applier's
        # contact clock starts at construction time.
        while not self._stopped.wait(interval):
            with self._lock:
                if self.role != "standby":
                    return
                expired = self.applier.contact_age() > self.lease_seconds
            if expired:
                self.promote(reason="lease_expired")
                return

    # -- primary surface -------------------------------------------------------------------

    def _snapshot(self, names=None):
        """``[(sid, name, t, v), ...]`` for the shipper's sync frames."""
        names = sorted(self._engine.series_names()) if names is None \
            else names
        return [(self._engine.series_id(name), name,
                 *antientropy.series_content(self._engine, name))
                for name in names]

    def wait_shipped(self, timeout=5.0):
        """Block until every live replica acked the current log head.

        The ack-after-ship durability hook: returns True when all
        (non-frozen) replicas confirmed, False on timeout or when this
        node is not a primary with replicas.
        """
        with self._lock:
            log, shippers = self.log, list(self._shippers)
        if log is None or not shippers:
            return False
        seq = log.head_seq
        deadline = time.monotonic() + timeout
        ok = True
        for shipper in shippers:
            if shipper.status()["frozen"]:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            ok = shipper.wait_shipped(seq, timeout=remaining) and ok
        return ok

    def sweep(self, timeout=30.0):
        """One anti-entropy pass: fingerprint, diff, re-ship, re-check.

        Returns a report dict; ``clean`` is True when every replica's
        post-repair fingerprint matches the primary's.
        """
        with self._lock:
            if self.role != "primary":
                raise ReplicationError("anti-entropy sweep runs on the "
                                       "primary")
            shippers = list(self._shippers)
        self._c_sweeps.inc()
        self.wait_shipped(timeout=min(timeout, 10.0))
        local = antientropy.content_fingerprint(self._engine)
        replicas = []
        clean = True
        for shipper in shippers:
            report = {"replica": shipper.url, "checked": len(local),
                      "divergent": [], "extra": [], "repaired": 0,
                      "clean": True}
            try:
                remote = self._fetch_fingerprint(shipper.url)
                divergent, extra = antientropy.diff_fingerprints(local,
                                                                 remote)
                report["divergent"] = divergent
                report["extra"] = extra
                if divergent:
                    repaired = shipper.request_repair(divergent,
                                                      timeout=timeout)
                    report["repaired"] = len(divergent) if repaired else 0
                    self._c_repaired.inc(report["repaired"])
                    after = self._fetch_fingerprint(shipper.url)
                    still, _ = antientropy.diff_fingerprints(local, after)
                    report["clean"] = not still
                    report["divergent_after"] = still
            except (OSError, urllib.error.URLError, ValueError,
                    ReplicationError) as exc:
                report["clean"] = False
                report["error"] = str(exc)
            clean = clean and report["clean"]
            replicas.append(report)
        return {"node_id": self.node_id, "series": len(local),
                "replicas": replicas, "clean": clean}

    def _fetch_fingerprint(self, url):
        request = urllib.request.Request(url + "/replication/fingerprint")
        with urllib.request.urlopen(request, timeout=30.0) as response:
            doc = json.loads(response.read().decode("utf-8"))
        fingerprint = doc.get("fingerprint")
        if not isinstance(fingerprint, dict):
            raise ReplicationError("%s returned no fingerprint" % url)
        return fingerprint

    # -- standby surface -------------------------------------------------------------------

    def apply(self, body):
        """Feed one ``POST /replicate`` body to the applier."""
        with self._lock:
            applier = self.applier
            if self.role != "standby" or applier is None:
                return {"state": "frozen", "node_id": self.node_id,
                        "role": self.role}
        return applier.apply_batch(body)

    def fingerprint(self):
        return antientropy.content_fingerprint(self._engine)

    # -- observability ---------------------------------------------------------------------

    def workers(self):
        """Thread-liveness map for ``/healthz``: a shipper or monitor
        that died while the node is still serving flips health."""
        out = {}
        with self._lock:
            for shipper in self._shippers:
                status = shipper.status()
                out["shipper:%s" % shipper.url] = \
                    bool(status["alive"] or status["frozen"])
            if self._monitor is not None and self.role == "standby":
                out["lease-monitor"] = self._monitor.is_alive()
        return out

    def status(self):
        with self._lock:
            doc = {
                "role": self.role,
                "node_id": self.node_id,
                "advertise": self.advertise,
                "lease_seconds": self.lease_seconds,
                "auto_promote": self.auto_promote,
                "promotions": int(self._c_promotions.value),
            }
            if self.log is not None:
                doc["epoch"] = self.log.epoch
                doc["head_seq"] = self.log.head_seq
                doc["replicas"] = [s.status() for s in self._shippers]
            if self.applier is not None:
                doc["standby"] = self.applier.status()
            return doc

    def stop(self, timeout=5.0):
        """Stop threads; pending shipped-but-unacked frames are not
        waited for (call :meth:`wait_shipped` first for a clean drain)."""
        self._stopped.set()
        with self._lock:
            if self.log is not None:
                self.log.close()
            shippers = list(self._shippers)
            monitor = self._monitor
        for shipper in shippers:
            shipper.stop(timeout=timeout)
        if monitor is not None and monitor.is_alive():
            monitor.join(timeout=timeout)
