"""The primary side: one shipper thread per configured replica.

A :class:`Shipper` tails the primary's :class:`ReplicationLog` and
POSTs CRC-framed batches to its replica's ``/replicate`` endpoint over
plain stdlib HTTP.  The protocol is pull-free and single-writer: this
thread is the *only* sender for its replica, so batches arrive in
sequence order and resync/repair snapshots cannot race normal frames.

State machine per loop turn:

1. a requested **repair** (anti-entropy re-ship of divergent series)
   runs once the replica is caught up — snapshot just those series and
   send them as a ``resync`` batch anchored at the acked sequence;
2. a pending **resync** (replica answered ``state: "resync"``, or the
   ring dropped entries this replica still needed) snapshots *every*
   series at a base sequence captured before the snapshot is read;
3. otherwise ship the next window of log entries, or block on the log
   and send a **heartbeat** when idle longer than a third of the lease.

Transport errors back off with the shared jittered
:class:`repro.backoff.Backoff` and never drop records — the log cursor
only advances on an acked reply.  Every send passes a
``faultfs.inject("net", url)`` checkpoint, so the torture suites can
drop, delay or sever the stream (or kill the primary) at exact
shipped-frame counts.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from ..backoff import Backoff
from ..storage import faultfs
from . import frames

#: Cap on frames per POST: bounds body size and ack granularity.
BATCH_FRAMES = 256


class Shipper:
    """Ships the replication log to one replica URL.

    ``snapshot_fn(names=None)`` returns ``[(sid, name, t, v), ...]``
    for the named series (all when None) — supplied by the manager so
    the shipper never imports the engine directly.
    """

    def __init__(self, log, url, snapshot_fn, *, node_id="primary",
                 advertise=None, lease_seconds=5.0, registry=None,
                 timeout=10.0, backoff=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._log = log
        self.url = url.rstrip("/")
        self._snapshot_fn = snapshot_fn
        self._node_id = node_id
        self._advertise = advertise
        self._lease = float(lease_seconds)
        self._timeout = timeout
        self._backoff = backoff if backoff is not None else Backoff(
            base=0.05, cap=2.0)
        self._cond = threading.Condition()
        self._acked = 0
        self._stop = False
        self._resync_needed = True   # first contact establishes state
        self._repair_names = None
        self._repair_done = threading.Event()
        self._frozen = False
        self._last_send = time.monotonic()
        self._last_error = None
        labels = {"replica": self.url}
        self._c_batches = registry.counter("replication_ship_batches_total",
                                           **labels)
        self._c_frames = registry.counter("replication_ship_frames_total",
                                          **labels)
        self._c_bytes = registry.counter("replication_ship_bytes_total",
                                         **labels)
        self._c_errors = registry.counter("replication_ship_errors_total",
                                          **labels)
        self._c_resyncs = registry.counter("replication_resyncs_total",
                                           **labels)
        self._c_heartbeats = registry.counter(
            "replication_heartbeats_total", **labels)
        self._g_lag_records = registry.gauge("replication_ship_lag_records",
                                             **labels)
        self._g_lag_seconds = registry.gauge("replication_ship_lag_seconds",
                                             **labels)
        self._thread = threading.Thread(target=self._run,
                                        name="repro-ship-%s" % self.url,
                                        daemon=True)

    # -- lifecycle -------------------------------------------------------------------------

    def start(self):
        self._thread.start()
        return self

    def stop(self, timeout=5.0):
        """Ask the thread to exit and join it (the log should already be
        closed so a blocked :meth:`wait` wakes)."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def alive(self):
        return self._thread.is_alive()

    @property
    def acked_seq(self):
        with self._cond:
            return self._acked

    def wait_shipped(self, seq, timeout=None):
        """Block until the replica acked through ``seq`` (ack-after-ship
        durability).  Returns True on success, False on timeout/stop."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._acked < seq and not self._stop and not self._frozen:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return self._acked >= seq

    def request_repair(self, names, timeout=30.0):
        """Anti-entropy hook: re-ship these series, wait for delivery."""
        self._repair_done.clear()
        with self._cond:
            self._repair_names = list(names)
            self._cond.notify_all()
        return self._repair_done.wait(timeout=timeout)

    def status(self):
        with self._cond:
            acked = self._acked
        head = self._log.head_seq
        return {
            "replica": self.url,
            "acked_seq": acked,
            "lag_records": max(0, head - acked),
            "alive": self.alive,
            "frozen": self._frozen,
            "resyncs": int(self._c_resyncs.value),
            "errors": int(self._c_errors.value),
            "heartbeats": int(self._c_heartbeats.value),
            "last_error": self._last_error,
        }

    # -- the shipping loop -----------------------------------------------------------------

    def _run(self):
        while not self._stop and not self._frozen:
            try:
                repair = None
                with self._cond:
                    if self._repair_names is not None \
                            and not self._resync_needed \
                            and self._acked >= self._log.head_seq:
                        repair, self._repair_names = self._repair_names, \
                            None
                if repair is not None:
                    self._send_snapshot(names=repair, base_seq=self._acked)
                    self._repair_done.set()
                    continue
                if self._resync_needed:
                    base = self._log.head_seq
                    self._send_snapshot(names=None, base_seq=base)
                    with self._cond:
                        self._resync_needed = False
                        self._acked = max(self._acked, base)
                        self._cond.notify_all()
                    self._c_resyncs.inc()
                    continue
                entries = self._log.since(self.acked_seq)
                if entries is None:
                    # Fell off the ring: only a snapshot can catch up.
                    self._resync_needed = True
                    continue
                if not entries:
                    self._note_lag([])
                    idle_for = time.monotonic() - self._last_send
                    wait = max(0.05, self._lease / 3.0 - idle_for)
                    if not self._log.wait(self.acked_seq, timeout=wait) \
                            and time.monotonic() - self._last_send \
                            >= self._lease / 3.0:
                        self._send_heartbeat()
                    continue
                self._ship_entries(entries)
            except _SendError:
                self._c_errors.inc()
                if self._stop:
                    break
                self._backoff.wait()
            except Exception as exc:  # pragma: no cover - defensive
                self._last_error = repr(exc)
                self._c_errors.inc()
                if self._stop:
                    break
                self._backoff.wait()

    def _ship_entries(self, entries):
        for start in range(0, len(entries), BATCH_FRAMES):
            window = entries[start:start + BATCH_FRAMES]
            body = frames.encode_batch(
                self._header(base_seq=window[0].seq - 1),
                [e.encode() for e in window])
            reply = self._post(body)
            state = reply.get("state")
            if state == "ok":
                with self._cond:
                    self._acked = max(self._acked,
                                      int(reply.get("applied_seq", 0)))
                    self._cond.notify_all()
                self._c_frames.inc(len(window))
                self._backoff.reset()
                self._note_lag(entries[start + len(window):])
            elif state == "frozen":
                self._freeze()
                return
            else:
                self._resync_needed = True
                return

    def _send_snapshot(self, names, base_seq):
        """Ship a resync batch: full-series snapshots anchored at
        ``base_seq`` (captured *before* the snapshot is read, so any
        racing write is both inside it and re-shipped after)."""
        snapshot = self._snapshot_fn(names)
        frame_bytes = [frames.encode_frame(
            frames.T_SYNC, 0, frames.sync_payload(sid, name, t, v))
            for sid, name, t, v in snapshot]
        header = self._header(base_seq=base_seq)
        header["resync"] = True
        reply = self._post(frames.encode_batch(header, frame_bytes))
        if reply.get("state") == "frozen":
            self._freeze()
        elif reply.get("state") != "ok":
            raise _SendError("replica refused snapshot: %r" % reply)

    def _send_heartbeat(self):
        body = frames.encode_batch(
            self._header(base_seq=self.acked_seq),
            [frames.encode_frame(frames.T_HEARTBEAT, 0, b"")])
        reply = self._post(body)
        if reply.get("state") == "frozen":
            self._freeze()
        self._c_heartbeats.inc()

    def _freeze(self):
        """The replica was promoted: stop shipping to it for good."""
        with self._cond:
            self._frozen = True
            self._cond.notify_all()

    def _header(self, base_seq):
        return {"node_id": self._node_id, "epoch": self._log.epoch,
                "base_seq": int(base_seq),
                "head_seq": self._log.head_seq,
                "stamp": time.time(), "advertise": self._advertise}

    def _note_lag(self, pending):
        self._g_lag_records.set(len(pending))
        self._g_lag_seconds.set(
            max(0.0, time.time() - pending[0].stamp) if pending else 0.0)

    def _post(self, body):
        faultfs.inject("net", self.url)
        request = urllib.request.Request(
            self.url + "/replicate", data=body, method="POST",
            headers={"Content-Type": "application/octet-stream"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                reply = json.loads(response.read().decode("utf-8"))
        except (OSError, urllib.error.URLError, ValueError) as exc:
            self._last_send = time.monotonic()
            self._last_error = repr(exc)
            raise _SendError(str(exc)) from exc
        self._last_send = time.monotonic()
        self._c_batches.inc()
        self._c_bytes.inc(len(body))
        return reply


class _SendError(Exception):
    """Internal: one send failed; the loop backs off and retries."""
