"""The primary's in-memory replication log: a sequenced frame ring.

Every mutation the engine acknowledges appends one frame here (the
engine calls the ``record_*`` hooks under the owning series' write
lock, so per-series frame order equals apply order).  Shipper threads
block on :meth:`wait` and drain :meth:`since`; when a slow or severed
replica falls further behind than the ring retains, :meth:`since`
returns ``None`` and the shipper falls back to a full snapshot resync.

The log is volatile by design: durability is the WAL's job (PR 4), the
log only exists to move already-durable records across the wire.  Each
primary *epoch* — a random 64-bit id drawn at construction and at every
promotion — lets replicas detect a restarted or newly-promoted primary
whose sequence numbers restarted, and request a resync instead of
misapplying them.
"""

from __future__ import annotations

import os
import struct
import threading
import time

from . import frames


class LogEntry:
    """One sequenced frame plus the wall-clock stamp of its append."""

    __slots__ = ("seq", "ftype", "payload", "stamp")

    def __init__(self, seq, ftype, payload, stamp):
        self.seq = seq
        self.ftype = ftype
        self.payload = payload
        self.stamp = stamp

    def encode(self):
        return frames.encode_frame(self.ftype, self.seq, self.payload)


def new_epoch():
    """A random 64-bit epoch id (never zero)."""
    return struct.unpack("<Q", os.urandom(8))[0] | 1


class ReplicationLog:
    """Bounded, sequenced ring of replication frames.

    ``capacity`` bounds retained entries; older entries are dropped and
    a shipper that still needed them resyncs.  ``registry`` (optional
    :class:`repro.obs.MetricsRegistry`) counts appended frames/bytes.
    """

    def __init__(self, capacity=8192, registry=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._c_frames = registry.counter("replication_log_frames_total")
        self._c_bytes = registry.counter("replication_log_bytes_total")
        self._g_head = registry.gauge("replication_log_head_seq")
        self.capacity = int(capacity)
        self.epoch = new_epoch()
        self._entries = []
        self._head_seq = 0
        self._first_seq = 1  # smallest seq still retained
        self._closed = False
        self._cond = threading.Condition()

    @property
    def head_seq(self):
        """Sequence number of the newest appended frame (0 when empty)."""
        with self._cond:
            return self._head_seq

    @property
    def closed(self):
        return self._closed

    def append(self, ftype, payload):
        """Sequence and retain one frame; wakes waiting shippers."""
        with self._cond:
            if self._closed:
                return None
            self._head_seq += 1
            entry = LogEntry(self._head_seq, ftype, payload, time.time())
            self._entries.append(entry)
            if len(self._entries) > self.capacity:
                dropped = len(self._entries) - self.capacity
                del self._entries[:dropped]
                self._first_seq += dropped
            self._cond.notify_all()
        self._c_frames.inc()
        self._c_bytes.inc(len(payload))
        self._g_head.set(self._head_seq)
        return entry.seq

    def since(self, seq):
        """Entries with sequence strictly greater than ``seq``.

        Returns ``None`` when ``seq`` predates the ring's retained tail
        — the caller has fallen behind and must resync from a snapshot.
        """
        with self._cond:
            if seq + 1 < self._first_seq:
                return None
            if seq >= self._head_seq:
                return []
            # Entries are contiguous: seq S lives at index S - first_seq.
            return list(self._entries[seq + 1 - self._first_seq:])

    def wait(self, seq, timeout=None):
        """Block until an entry newer than ``seq`` exists (or closed).

        Returns True when there is something to ship."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._closed or self._head_seq > seq,
                timeout=timeout)
            return self._head_seq > seq

    def close(self):
        """Stop accepting appends and wake every waiting shipper."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- engine-facing record hooks (called under series write locks) ----------------------

    def record_create(self, series_id, name):
        self.append(frames.T_CREATE, frames.create_payload(series_id, name))

    def record_points(self, series_id, timestamps, values):
        self.append(frames.T_POINTS,
                    frames.points_payload(series_id, timestamps, values))

    def record_delete(self, series_id, t_start, t_end):
        self.append(frames.T_DELETE,
                    frames.delete_payload(series_id, t_start, t_end))

    def record_flush(self, series_id):
        self.append(frames.T_FLUSH, frames.flush_payload(series_id))
