"""The standby side: replay shipped frames through the normal engine.

A :class:`ReplicaApplier` owns the replica's replication state — the
adopted primary epoch, the applied sequence number, and the primary→
local series-name map — and applies decoded batches through the exact
same engine entry points local writes use (``create_series``,
``write_batch``, ``delete``, ``flush``), so every replicated point
lands in the replica's own WAL and survives a replica crash via the
normal recovery path.

Idempotence: frames whose sequence number is ``<= applied_seq`` are
skipped, so duplicate delivery after a reconnect (the shipper re-sends
everything past its last acked sequence) is a no-op.  Gaps and unknown
epochs are never papered over — the applier answers ``state:
"resync"`` and the shipper falls back to a full snapshot.

Applied state is volatile: a restarted replica reports ``applied_seq
0`` with no epoch and is resynced from a snapshot (its *data* is
durable via its own WAL; only the replication cursor is not).
"""

from __future__ import annotations

import threading
import time

from ..errors import ReplicationError
from . import frames

FULL_RANGE = (-(1 << 62), 1 << 62)


class ReplicaApplier:
    """Applies replication batches to a standby's engine."""

    def __init__(self, engine, node_id="standby", registry=None):
        from ..obs import NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._engine = engine
        self.node_id = node_id
        self._lock = threading.Lock()
        self._epoch = None
        self._applied = 0
        self._names = {}          # primary series id -> series name
        self._primary_url = None
        self._last_contact = time.monotonic()
        self._frozen = False      # set at promotion: reject the old primary
        self._c_frames = registry.counter("replication_applied_frames_total")
        self._c_points = registry.counter("replication_applied_points_total")
        self._c_skipped = registry.counter(
            "replication_skipped_frames_total")
        self._c_resyncs = registry.counter(
            "replication_resync_requests_total")
        self._g_lag_records = registry.gauge("replication_lag_records")
        self._g_lag_seconds = registry.gauge("replication_lag_seconds")

    # -- status ----------------------------------------------------------------------------

    @property
    def applied_seq(self):
        with self._lock:
            return self._applied

    @property
    def epoch(self):
        with self._lock:
            return self._epoch

    @property
    def primary_url(self):
        with self._lock:
            return self._primary_url

    def contact_age(self):
        """Seconds since the primary last reached this replica."""
        with self._lock:
            return time.monotonic() - self._last_contact

    def touch(self):
        """Reset the contact clock (called when the lease starts)."""
        with self._lock:
            self._last_contact = time.monotonic()

    def freeze(self):
        """Stop applying (promotion): the old primary gets resync+frozen
        answers and can never overwrite the new primary's writes."""
        with self._lock:
            self._frozen = True

    def status(self):
        with self._lock:
            return {
                "applied_seq": self._applied,
                "epoch": self._epoch,
                "primary": self._primary_url,
                "contact_age_seconds": time.monotonic() - self._last_contact,
                "series": len(self._names),
                "frozen": self._frozen,
            }

    # -- batch application -----------------------------------------------------------------

    def apply_batch(self, body):
        """Decode and apply one ``POST /replicate`` body; returns the
        JSON-able reply dict (``state`` ok / resync / frozen)."""
        header, frame_list = frames.decode_batch(body)
        epoch = int(header.get("epoch", 0))
        base_seq = int(header.get("base_seq", 0))
        resync = bool(header.get("resync"))
        with self._lock:
            self._last_contact = time.monotonic()
            if header.get("advertise"):
                self._primary_url = header["advertise"]
            if self._frozen:
                return self._reply("frozen")
            if resync:
                return self._apply_resync(epoch, base_seq, frame_list)
            if self._epoch is None or self._epoch != epoch:
                # Unknown or restarted primary: only a snapshot (or a
                # stream from genesis) can establish shared state.
                if self._epoch is None and base_seq == 0 \
                        and self._applied == 0:
                    self._epoch = epoch
                else:
                    self._c_resyncs.inc()
                    return self._reply("resync")
            if base_seq > self._applied:
                self._c_resyncs.inc()
                return self._reply("resync")
            skipped = 0
            for ftype, seq, payload in frame_list:
                if ftype == frames.T_HEARTBEAT:
                    continue              # liveness only, never sequenced
                if seq <= self._applied:
                    skipped += 1          # duplicate delivery: a no-op
                    continue
                if seq != self._applied + 1:
                    self._c_resyncs.inc()
                    return self._reply("resync")
                self._apply_frame(ftype, payload)
                self._applied = seq
                self._c_frames.inc()
            if skipped:
                self._c_skipped.inc(skipped)
            self._note_lag(header)
            return self._reply("ok")

    def _apply_resync(self, epoch, base_seq, frame_list):
        """A snapshot batch: adopt the primary's epoch and cursor.

        ``base_seq`` was captured on the primary *before* the snapshot
        was read, so any record racing the snapshot is both inside it
        and re-shipped after — re-application is value-identical (same
        point, later version), so the merged content converges.
        """
        for ftype, _seq, payload in frame_list:
            if ftype != frames.T_SYNC:
                raise ReplicationError(
                    "resync batch may only carry sync frames")
            self._apply_sync(payload)
            self._c_frames.inc()
        self._epoch = epoch
        self._applied = base_seq
        return self._reply("ok")

    def _reply(self, state):
        return {"state": state, "node_id": self.node_id,
                "applied_seq": self._applied, "epoch": self._epoch}

    def _note_lag(self, header):
        head_seq = header.get("head_seq")
        if isinstance(head_seq, int):
            self._g_lag_records.set(max(0, head_seq - self._applied))
        stamp = header.get("stamp")
        if isinstance(stamp, (int, float)):
            self._g_lag_seconds.set(max(0.0, time.time() - stamp))

    # -- frame application (lock held) ------------------------------------------------------

    def _series_name(self, sid):
        try:
            return self._names[sid]
        except KeyError:
            raise ReplicationError("shipped frame references unknown "
                                   "series id %d" % sid) from None

    def _apply_frame(self, ftype, payload):
        if ftype == frames.T_CREATE:
            sid, name = frames.parse_create(payload)
            self._engine.create_series(name)
            self._names[sid] = name
        elif ftype == frames.T_POINTS:
            sid, t, v = frames.parse_points(payload)
            self._engine.write_batch(self._series_name(sid), t, v)
            self._c_points.inc(int(t.size))
        elif ftype == frames.T_DELETE:
            sid, t_start, t_end = frames.parse_delete(payload)
            self._engine.delete(self._series_name(sid), t_start, t_end)
        elif ftype == frames.T_FLUSH:
            self._engine.flush(self._series_name(frames.parse_flush(payload)))
        elif ftype == frames.T_HEARTBEAT:
            pass                         # contact clock already reset
        elif ftype == frames.T_SYNC:
            self._apply_sync(payload)
        else:  # pragma: no cover - decode already rejects unknown types
            raise ReplicationError("unknown frame type %d" % ftype)

    def _apply_sync(self, payload):
        """Replace one series' content with the shipped snapshot."""
        sid, name, t, v = frames.parse_sync(payload)
        self._engine.create_series(name)
        self._names[sid] = name
        self._engine.delete(name, *FULL_RANGE)
        if t.size:
            self._engine.write_batch(name, t, v)
        self._engine.flush(name)
        self._c_points.inc(int(t.size))
