"""Hot-standby replication: WAL shipping, failover, anti-entropy.

A primary node ships every acknowledged mutation — as CRC-framed
records reusing the WAL v2 point format verbatim — over stdlib HTTP to
one or more standby replicas, which replay them through the normal
engine write path (and thus their own WAL and recovery machinery) and
serve reads with bounded, observable staleness.  See DESIGN.md §14.

Layering rule: nothing in this package imports :mod:`repro.server`;
the server wires these classes in, never the other way around.
"""

from .antientropy import content_fingerprint, diff_fingerprints, \
    series_content
from .apply import ReplicaApplier
from .log import ReplicationLog, new_epoch
from .manager import ReplicationManager
from .ship import Shipper
from . import frames

__all__ = [
    "ReplicaApplier",
    "ReplicationLog",
    "ReplicationManager",
    "Shipper",
    "content_fingerprint",
    "diff_fingerprints",
    "frames",
    "new_epoch",
    "series_content",
]
