"""Anti-entropy: content fingerprints and divergence detection.

Replication ships deltas; anti-entropy answers "did they all arrive?".
Each node can summarize every series as a SHA-256 over its *merged
content* — the (timestamp, value) arrays after version resolution and
delete application — which is the only representation that is
comparable across nodes.  (The structural fingerprint the tile cache
persists — chunk counts and version numbers — is deliberately **not**
used here: version numbers come from each node's own allocator and
legally differ between a primary and a replica that flushed at
different moments, even when the content is identical.)

The sweep itself lives in :class:`repro.replication.manager` — the
primary fetches each replica's fingerprint over HTTP, diffs it against
its own, and hands divergent series to the shipper for a snapshot
re-ship.  This module is the pure, side-effect-free core of that loop.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..storage.merge import merge_arrays

#: Version assigned to memtable points when merging a live snapshot:
#: buffered points are newer than every sealed chunk and every delete
#: (flush-before-delete guarantees a delete never targets them).
MEMTABLE_VERSION = 1 << 62


def series_content(engine, name):
    """The series' merged ``(timestamps, values)`` — chunks *and* the
    memtable — from one consistent read-locked snapshot (no flush
    needed, so this is safe to call while ingest is streaming)."""
    chunks, deletes, mem_t, mem_v = engine.series_snapshot(name)
    reader = engine.data_reader()
    loaded = [(*reader.load_chunk(meta), meta.version) for meta in chunks]
    if len(mem_t):
        loaded.append((np.asarray(mem_t, dtype=np.int64),
                       np.asarray(mem_v, dtype=np.float64),
                       MEMTABLE_VERSION))
    return merge_arrays(loaded, deletes)


def content_fingerprint(engine, names=None):
    """``{name: {"points": n, "sha256": hex}}`` over merged content."""
    names = engine.series_names() if names is None else names
    out = {}
    for name in sorted(names):
        t, v = series_content(engine, name)
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(t).tobytes())
        digest.update(np.ascontiguousarray(v).tobytes())
        out[name] = {"points": int(t.size), "sha256": digest.hexdigest()}
    return out


def diff_fingerprints(local, remote):
    """``(divergent, extra)``: series to re-ship / replica-only series.

    ``divergent`` lists every local series whose remote fingerprint is
    missing or different (a snapshot re-ship fixes both); ``extra``
    lists series only the replica has — surfaced in the sweep report
    but never deleted (anti-entropy repairs toward the primary, it
    does not destroy data the operator may want to inspect).
    """
    divergent = [name for name, print_ in sorted(local.items())
                 if remote.get(name) != print_]
    extra = sorted(set(remote) - set(local))
    return divergent, extra
