"""Wire format for WAL shipping: CRC-framed replication records.

A replication *batch* (one ``POST /replicate`` body) is::

    b"REPL1\\n"                      magic
    JSON header line + b"\\n"        {"node_id", "epoch", "base_seq", ...}
    frame*                          zero or more frames

and each *frame* is::

    u8 type, u64 seq, u32 payload_len   (little endian)
    payload bytes
    u32 crc32(header + payload)

Frame payloads by type:

``T_CREATE``
    JSON ``{"sid": int, "name": str}`` — a series registration.
``T_POINTS``
    ``u32 series_id`` followed by N **verbatim WAL v2 records**
    (``u32 sid, i64 t, f64 v, u32 crc32`` — exactly the bytes
    :mod:`repro.storage.wal` appends to disk, checksums included, so a
    replica re-verifies every point with the same code path the
    recovery replay uses).
``T_DELETE``
    ``u32 sid, i64 t_start, i64 t_end``.
``T_FLUSH``
    ``u32 sid`` — the primary checkpointed this series' WAL; the
    replica flushes too so its memtables stay bounded.
``T_HEARTBEAT``
    empty — liveness only (carried stamps live in the batch header).
``T_SYNC``
    JSON line ``{"sid", "name", "n"}`` + ``\\n`` + ``n`` int64
    timestamps + ``n`` float64 values (raw arrays): a full-series
    snapshot used by resync and anti-entropy repair.

Every decode error raises :class:`repro.errors.ReplicationError` — a
replica never applies a frame it could not fully verify.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from ..errors import ReplicationError
from ..storage import wal

MAGIC = b"REPL1\n"

T_CREATE = 1
T_POINTS = 2
T_DELETE = 3
T_FLUSH = 4
T_HEARTBEAT = 5
T_SYNC = 6

TYPE_NAMES = {T_CREATE: "create", T_POINTS: "points", T_DELETE: "delete",
              T_FLUSH: "flush", T_HEARTBEAT: "heartbeat", T_SYNC: "sync"}

_FRAME = struct.Struct("<BQI")
_CRC = struct.Struct("<I")
_DELETE = struct.Struct("<Iqq")
_SID = struct.Struct("<I")


def encode_frame(ftype, seq, payload):
    """One CRC-framed replication record as bytes."""
    header = _FRAME.pack(ftype, seq, len(payload))
    return header + payload + _CRC.pack(zlib.crc32(header + payload))


def iter_frames(data, offset=0):
    """Yield ``(ftype, seq, payload)`` from ``data[offset:]``.

    Raises :class:`ReplicationError` on a truncated frame or a CRC
    mismatch — replication transports whole batches, so unlike the
    WAL's torn-tail policy there is no partial-delivery case to repair.
    """
    view = memoryview(data)
    while offset < len(view):
        if offset + _FRAME.size > len(view):
            raise ReplicationError("truncated replication frame header")
        ftype, seq, length = _FRAME.unpack_from(view, offset)
        end = offset + _FRAME.size + length
        if end + _CRC.size > len(view):
            raise ReplicationError("truncated replication frame payload")
        payload = bytes(view[offset + _FRAME.size:end])
        (crc,) = _CRC.unpack_from(view, end)
        header = bytes(view[offset:offset + _FRAME.size])
        if zlib.crc32(header + payload) != crc:
            raise ReplicationError(
                "replication frame CRC mismatch at offset %d" % offset)
        if ftype not in TYPE_NAMES:
            raise ReplicationError("unknown replication frame type %d"
                                   % ftype)
        yield ftype, seq, payload
        offset = end + _CRC.size


def encode_batch(header, frame_bytes):
    """A full ``POST /replicate`` body: magic + header line + frames."""
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + head + b"\n" + b"".join(frame_bytes)


def decode_batch(body):
    """``(header, [(ftype, seq, payload), ...])`` from a POST body."""
    if not body.startswith(MAGIC):
        raise ReplicationError("bad replication magic")
    newline = body.find(b"\n", len(MAGIC))
    if newline < 0:
        raise ReplicationError("missing replication batch header")
    try:
        header = json.loads(body[len(MAGIC):newline].decode("utf-8"))
    except ValueError as exc:
        raise ReplicationError("bad replication batch header: %s"
                               % exc) from None
    if not isinstance(header, dict):
        raise ReplicationError("replication batch header must be an object")
    return header, list(iter_frames(body, newline + 1))


# -- payload builders / parsers ----------------------------------------------------------

def create_payload(series_id, name):
    return json.dumps({"sid": int(series_id), "name": name},
                      sort_keys=True).encode("utf-8")


def parse_create(payload):
    try:
        doc = json.loads(payload.decode("utf-8"))
        return int(doc["sid"]), str(doc["name"])
    except (ValueError, KeyError, TypeError) as exc:
        raise ReplicationError("bad create payload: %s" % exc) from None


def points_payload(series_id, timestamps, values):
    """``series_id`` + verbatim WAL v2 records for each point."""
    records = b"".join(wal._pack_record(series_id, t, v)
                       for t, v in zip(timestamps, values))
    return _SID.pack(series_id) + records


def parse_points(payload):
    """``(series_id, int64 timestamps, float64 values)``, CRC-verified.

    Each embedded WAL record's checksum and series id are re-verified,
    so a replica applies exactly what the primary's WAL append packed.
    """
    if len(payload) < _SID.size:
        raise ReplicationError("short points payload")
    (series_id,) = _SID.unpack_from(payload, 0)
    body = payload[_SID.size:]
    if len(body) % wal.RECORD_SIZE:
        raise ReplicationError("points payload is not whole records")
    n = len(body) // wal.RECORD_SIZE
    t = np.empty(n, dtype=np.int64)
    v = np.empty(n, dtype=np.float64)
    for i in range(n):
        raw = body[i * wal.RECORD_SIZE:(i + 1) * wal.RECORD_SIZE]
        head, (crc,) = raw[:wal._PAYLOAD.size], wal._CRC.unpack(
            raw[wal._PAYLOAD.size:])
        if zlib.crc32(head) != crc:
            raise ReplicationError("WAL record CRC mismatch in shipped "
                                   "points (record %d)" % i)
        sid, t[i], v[i] = wal._PAYLOAD.unpack(head)
        if sid != series_id:
            raise ReplicationError("shipped record series id %d != frame "
                                   "series id %d" % (sid, series_id))
    return series_id, t, v


def delete_payload(series_id, t_start, t_end):
    return _DELETE.pack(series_id, int(t_start), int(t_end))


def parse_delete(payload):
    try:
        return _DELETE.unpack(payload)
    except struct.error as exc:
        raise ReplicationError("bad delete payload: %s" % exc) from None


def flush_payload(series_id):
    return _SID.pack(series_id)


def parse_flush(payload):
    try:
        return _SID.unpack(payload)[0]
    except struct.error as exc:
        raise ReplicationError("bad flush payload: %s" % exc) from None


def sync_payload(series_id, name, timestamps, values):
    """A full-series snapshot: JSON line + raw int64/float64 arrays."""
    t = np.asarray(timestamps, dtype=np.int64)
    v = np.asarray(values, dtype=np.float64)
    head = json.dumps({"sid": int(series_id), "name": name,
                       "n": int(t.size)}, sort_keys=True).encode("utf-8")
    return head + b"\n" + t.tobytes() + v.tobytes()


def parse_sync(payload):
    newline = payload.find(b"\n")
    if newline < 0:
        raise ReplicationError("missing sync header")
    try:
        doc = json.loads(payload[:newline].decode("utf-8"))
        sid, name, n = int(doc["sid"]), str(doc["name"]), int(doc["n"])
    except (ValueError, KeyError, TypeError) as exc:
        raise ReplicationError("bad sync header: %s" % exc) from None
    body = payload[newline + 1:]
    if len(body) != n * 16:
        raise ReplicationError("sync payload length %d != %d points"
                               % (len(body), n))
    t = np.frombuffer(body[:n * 8], dtype=np.int64)
    v = np.frombuffer(body[n * 8:], dtype=np.float64)
    return sid, name, t, v
