"""Anomaly injection for synthetic workloads.

Visualization is how operators *find* anomalies, so realistic demo and
test data needs some: spikes, level shifts, flatlines (stuck sensors),
dropouts (missing stretches) and drift.  All injectors are deterministic
for a seed, operate on ``(timestamps, values)`` arrays, and return new
arrays plus a record of what was injected so tests can assert that M4
keeps every anomaly visible.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ReproError


@dataclasses.dataclass(frozen=True)
class Anomaly:
    """A description of one injected anomaly."""

    kind: str        # spike / level_shift / flatline / dropout / drift
    start_row: int   # first affected row (in the ORIGINAL arrays)
    end_row: int     # one past the last affected row
    magnitude: float

    @property
    def n_rows(self):
        """Number of affected rows."""
        return self.end_row - self.start_row


def inject_spikes(timestamps, values, n=5, magnitude=None, seed=0):
    """Add ``n`` single-point spikes of +-``magnitude``.

    Returns ``(timestamps, values, [Anomaly, ...])``; magnitude defaults
    to 8 standard deviations of the signal.
    """
    t, v = _copy(timestamps, values)
    if n > t.size:
        raise ReproError("cannot place %d spikes in %d points"
                         % (n, t.size))
    rng = np.random.default_rng(seed)
    if magnitude is None:
        magnitude = 8.0 * (float(v.std()) or 1.0)
    rows = rng.choice(t.size, size=n, replace=False)
    signs = rng.choice((-1.0, 1.0), size=n)
    anomalies = []
    for row, sign in zip(rows, signs):
        v[row] += sign * magnitude
        anomalies.append(Anomaly("spike", int(row), int(row) + 1,
                                 float(sign * magnitude)))
    return t, v, anomalies


def inject_level_shift(timestamps, values, start_fraction=0.5,
                       length_fraction=0.2, magnitude=None, seed=0):
    """Shift a contiguous stretch of values by a constant."""
    t, v = _copy(timestamps, values)
    start = int(t.size * start_fraction)
    end = min(start + max(int(t.size * length_fraction), 1), t.size)
    if magnitude is None:
        magnitude = 5.0 * (float(v.std()) or 1.0)
    v[start:end] += magnitude
    return t, v, [Anomaly("level_shift", start, end, float(magnitude))]


def inject_flatline(timestamps, values, start_fraction=0.3,
                    length_fraction=0.1):
    """A stuck sensor: repeat the value at the stretch's start."""
    t, v = _copy(timestamps, values)
    start = int(t.size * start_fraction)
    end = min(start + max(int(t.size * length_fraction), 1), t.size)
    v[start:end] = v[start]
    return t, v, [Anomaly("flatline", start, end, 0.0)]


def inject_dropout(timestamps, values, start_fraction=0.6,
                   length_fraction=0.1):
    """Remove a contiguous stretch of points (transmission loss)."""
    t, v = _copy(timestamps, values)
    start = int(t.size * start_fraction)
    end = min(start + max(int(t.size * length_fraction), 1), t.size)
    keep = np.ones(t.size, dtype=bool)
    keep[start:end] = False
    return (t[keep], v[keep],
            [Anomaly("dropout", start, end, float(end - start))])


def inject_drift(timestamps, values, start_fraction=0.7, rate=None):
    """Linear sensor drift from a point onward."""
    t, v = _copy(timestamps, values)
    start = int(t.size * start_fraction)
    n_drifting = t.size - start
    if n_drifting <= 0:
        return t, v, []
    if rate is None:
        rate = 3.0 * (float(v.std()) or 1.0) / n_drifting
    v[start:] += rate * np.arange(n_drifting)
    return t, v, [Anomaly("drift", start, t.size,
                          float(rate * n_drifting))]


def inject_standard_suite(timestamps, values, seed=0):
    """Spikes + level shift + flatline + dropout, in that order.

    Returns ``(timestamps, values, anomalies)`` with row indices of each
    :class:`Anomaly` referring to the array state at its injection time.
    """
    anomalies = []
    t, v, found = inject_spikes(timestamps, values, seed=seed)
    anomalies += found
    t, v, found = inject_level_shift(t, v, seed=seed)
    anomalies += found
    t, v, found = inject_flatline(t, v)
    anomalies += found
    t, v, found = inject_dropout(t, v)
    anomalies += found
    return t, v, anomalies


def _copy(timestamps, values):
    t = np.array(timestamps, dtype=np.int64, copy=True)
    v = np.array(values, dtype=np.float64, copy=True)
    if t.size != v.size:
        raise ReproError("time/value length mismatch")
    if t.size == 0:
        raise ReproError("cannot inject anomalies into an empty series")
    return t, v
