"""Synthetic equivalents of the paper's four real-world datasets (Table 2).

The originals are not redistributable (two are customer datasets), so
each generator reproduces the properties the experiments actually
exercise, guided by the paper's descriptions and Figure 8:

* **BallSpeed** — 71 min of soccer-ball speed at 2000 Hz: dense,
  perfectly regular timestamps, bursty values (kicks and flight).
* **MF03** — 28 h of electrical power (main phase 3) at ~100 Hz: regular
  with small jitter, load plateaus with switching transients.
* **KOB** — 4 months at a low rate (the 9 s period of Example 3.8) with
  occasional transmission interruptions — the timestamp "steps" of
  Figure 8(d) — and a skewed time distribution.
* **RcvTime** — 1 year, heavily skewed: dense bursts separated by long
  silences, so chunk time-interval lengths vary wildly.

All generators are deterministic for a given seed and scale by point
count, so benches can run the paper's shape at laptop size.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.series import TimeSeries


@dataclasses.dataclass(frozen=True)
class DatasetProfile:
    """Descriptor of one generated dataset (mirrors Table 2 rows)."""

    name: str
    description: str
    paper_points: int
    paper_time_range: str
    default_points: int

    def generate(self, n_points=None, seed=0):
        """Materialize the dataset as ``(timestamps, values)`` arrays."""
        n = self.default_points if n_points is None else int(n_points)
        return _GENERATORS[self.name](n, np.random.default_rng(seed))

    def generate_series(self, n_points=None, seed=0):
        """Materialize as a :class:`TimeSeries`."""
        t, v = self.generate(n_points, seed)
        return TimeSeries(t, v, validate=False)


def _repair(t):
    """Force strictly increasing int64 timestamps (fix any collisions)."""
    out = np.asarray(t, dtype=np.int64).copy()
    for i in range(1, out.size):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + 1
    return out


def _ballspeed(n, rng):
    """2000 Hz: 0.5 ms period — generated in microseconds, 500 us deltas."""
    t = np.arange(n, dtype=np.int64) * 500
    # Speed: mostly rolling noise, with kick spikes decaying exponentially.
    v = np.abs(rng.normal(1.2, 0.4, n))
    n_kicks = max(n // 20000, 3)
    for start in rng.choice(n, size=n_kicks, replace=False):
        length = min(int(rng.integers(500, 4000)), n - start)
        v[start:start + length] += (rng.uniform(15, 30)
                                    * np.exp(-np.arange(length) / 800.0))
    return t, v


def _mf03(n, rng):
    """~100 Hz with jitter: 10 ms nominal period, power plateaus."""
    deltas = np.full(n, 10, dtype=np.int64)
    jitter = rng.random(n) < 0.02
    deltas[jitter] += rng.integers(1, 8, int(jitter.sum()))
    t = np.cumsum(deltas) - deltas[0]
    # Power: stepwise load levels plus 50 Hz-ish ripple and noise.
    n_levels = max(n // 5000, 2)
    level_starts = np.sort(rng.choice(n, size=n_levels, replace=False))
    levels = np.zeros(n)
    current = rng.uniform(200, 400)
    prev = 0
    for start in level_starts:
        levels[prev:start] = current
        current = rng.uniform(150, 450)
        prev = start
    levels[prev:] = current
    ripple = 12.0 * np.sin(np.arange(n) * 0.63)
    return t, levels + ripple + rng.normal(0, 3, n)


def _kob(n, rng):
    """9 s period with transmission gaps: the step shape of Fig. 8(d)."""
    deltas = np.full(n, 9000, dtype=np.int64)
    # A small fraction of deltas are long interruptions (minutes-hours),
    # producing the level segments and the skewed time distribution.
    n_gaps = max(n // 500, 2)
    gap_rows = rng.choice(np.arange(1, n), size=n_gaps, replace=False)
    deltas[gap_rows] = rng.integers(120_000, 7_200_000, n_gaps)
    t = np.cumsum(deltas) - deltas[0] + 1_639_966_606_000
    # Slow sensor drift with daily seasonality.
    day = 86_400_000.0
    v = (20.0 + 6.0 * np.sin(2 * np.pi * (t - t[0]) / day)
         + np.cumsum(rng.normal(0, 0.05, n)))
    return t, v


def _rcvtime(n, rng):
    """One year, heavily skewed: dense bursts separated by silences."""
    n_bursts = max(n // 2000, 4)
    burst_sizes = rng.multinomial(n - n_bursts,
                                  rng.dirichlet(np.ones(n_bursts) * 0.5)) + 1
    parts = []
    cursor = 1_600_000_000_000
    for size in burst_sizes:
        period = int(rng.integers(1000, 30_000))
        parts.append(cursor + np.arange(size, dtype=np.int64) * period)
        cursor = int(parts[-1][-1]) + int(rng.integers(3_600_000,
                                                       14 * 86_400_000))
    t = np.concatenate(parts)[:n]
    v = np.cumsum(rng.normal(0, 1.0, t.size)) + 50.0
    return _repair(t), v


_GENERATORS = {
    "BallSpeed": _ballspeed,
    "MF03": _mf03,
    "KOB": _kob,
    "RcvTime": _rcvtime,
}

#: The four dataset profiles of Table 2.
PROFILES = {
    "BallSpeed": DatasetProfile(
        "BallSpeed", "soccer ball speed sensor, 2000 Hz",
        paper_points=7_193_200, paper_time_range="71 minutes",
        default_points=200_000),
    "MF03": DatasetProfile(
        "MF03", "manufacturing power phase 3, ~100 Hz",
        paper_points=10_000_000, paper_time_range="28 hours",
        default_points=200_000),
    "KOB": DatasetProfile(
        "KOB", "customer sensor, 9 s period with gaps, skewed",
        paper_points=1_943_180, paper_time_range="4 months",
        default_points=100_000),
    "RcvTime": DatasetProfile(
        "RcvTime", "customer sensor, bursty over one year, skewed",
        paper_points=1_330_764, paper_time_range="1 year",
        default_points=100_000),
}


def generate(name, n_points=None, seed=0):
    """Generate one of the four datasets by name."""
    return PROFILES[name].generate(n_points, seed)


def dataset_summary(n_points=None, seed=0):
    """Rows mirroring Table 2: (name, time range, #points) at this scale."""
    rows = []
    for profile in PROFILES.values():
        t, _v = profile.generate(n_points, seed)
        rows.append((profile.name, _human_duration(int(t[-1] - t[0]),
                                                   profile.name),
                     int(t.size)))
    return rows


def _human_duration(span, name):
    """Rough duration string; BallSpeed timestamps are microseconds."""
    ms = span / 1000.0 if name == "BallSpeed" else float(span)
    seconds = ms / 1000.0
    for limit, unit in ((60, "seconds"), (3600, "minutes"),
                        (86_400, "hours"), (86_400 * 365, "days")):
        if seconds < limit:
            scale = {"seconds": 1, "minutes": 60, "hours": 3600,
                     "days": 86_400}[unit]
            return "%.1f %s" % (seconds / scale, unit)
    return "%.1f years" % (seconds / (86_400 * 365))
