"""Workload builders for the storage-side experiment axes.

The paper varies three storage knobs (Sections 4.3–4.5): the percentage
of chunks overlapping in time, the number of delete operations, and the
delete range length.  These builders load a dataset into a
:class:`StorageEngine` with each knob controlled precisely.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..storage.config import StorageConfig
from ..storage.engine import StorageEngine


def load_sequential(engine, series, timestamps, values):
    """Write a dataset strictly in time order (0% overlapping chunks)."""
    engine.create_series(series)
    engine.write_batch(series, timestamps, values)
    engine.flush_all()


def load_with_overlap(engine, series, timestamps, values, overlap_pct,
                      seed=0):
    """Write a dataset so ~``overlap_pct`` % of chunks overlap in time.

    Following Section 4.3, overlap is created by changing the *write
    order*: points are cut into chunk-sized batches in time order; for
    the requested fraction of adjacent batch pairs, the tail of the
    earlier batch and the head of the later one are exchanged, so both
    flushed chunks cover the exchange window — an out-of-order arrival
    exactly like late sensor data.
    """
    if not 0 <= overlap_pct <= 100:
        raise ReproError("overlap_pct must be in [0, 100]")
    engine.create_series(series)
    t = np.ascontiguousarray(timestamps, dtype=np.int64)
    v = np.ascontiguousarray(values, dtype=np.float64)
    size = engine.config.avg_series_point_number_threshold
    n_batches = -(-t.size // size)
    if n_batches < 2 or overlap_pct == 0:
        engine.write_batch(series, t, v)
        engine.flush_all()
        return

    rng = np.random.default_rng(seed)
    # Each swapped pair makes both chunks of the pair overlapping.
    n_pairs = int(round(overlap_pct / 100.0 * n_batches / 2.0))
    candidates = np.arange(0, n_batches - 1, 2)
    chosen = set(rng.choice(candidates,
                            size=min(n_pairs, candidates.size),
                            replace=False).tolist())
    swap = max(size // 4, 1)
    batch_of = np.repeat(np.arange(n_batches), size)[:t.size]
    for pair_start in chosen:
        a_rows = np.flatnonzero(batch_of == pair_start)
        b_rows = np.flatnonzero(batch_of == pair_start + 1)
        k = min(swap, a_rows.size, b_rows.size)
        if k == 0:
            continue
        # Exchange the tail of batch A with the head of batch B.
        tail_a = a_rows[-k:]
        head_b = b_rows[:k]
        batch_of[tail_a] = pair_start + 1
        batch_of[head_b] = pair_start
    for batch in range(n_batches):
        rows = np.flatnonzero(batch_of == batch)
        if rows.size == 0:
            continue
        engine.write_batch(series, t[rows], v[rows])
        engine.flush(series)
    engine.flush_all()


def apply_delete_workload(engine, series, timestamps, delete_pct=0,
                          n_deletes=None, delete_range=None, seed=0):
    """Issue random-position deletes over the series' time extent.

    Args:
        delete_pct: number of deletes as a percentage of the chunk count
            (the Section 4.4 axis); ignored when ``n_deletes`` is given.
        n_deletes: explicit number of delete operations (Section 4.5).
        delete_range: length of each delete's time range; defaults to a
            tenth of a chunk's average time span (the paper keeps it
            "small compared to the chunk time interval length").
        seed: RNG seed for delete positions.

    Returns the list of issued deletes.
    """
    t = np.ascontiguousarray(timestamps, dtype=np.int64)
    if t.size == 0:
        return []
    n_chunks = max(len(engine.chunks_for(series)), 1)
    if n_deletes is None:
        n_deletes = int(round(delete_pct / 100.0 * n_chunks))
    if n_deletes <= 0:
        return []
    extent = int(t[-1] - t[0])
    if delete_range is None:
        chunk_span = max(extent // n_chunks, 1)
        delete_range = max(chunk_span // 10, 1)
    rng = np.random.default_rng(seed)
    issued = []
    for _ in range(n_deletes):
        start = int(t[0]) + int(rng.integers(0, max(extent - delete_range, 1)))
        issued.append(engine.delete(series, start, start + int(delete_range)))
    engine.flush_all()
    return issued


def overlap_percentage(engine, series):
    """Measured fraction of chunks overlapping at least one other chunk."""
    chunks = engine.chunks_for(series)
    if not chunks:
        return 0.0
    intervals = sorted((c.start_time, c.end_time) for c in chunks)
    overlapping = 0
    max_end = None
    # Sweep: a chunk overlaps if it starts before the max end seen so far
    # or shares its window with the next chunk.
    flagged = [False] * len(intervals)
    for i, (start, end) in enumerate(intervals):
        if max_end is not None and start <= max_end:
            flagged[i] = True
            # the earlier chunk reaching past `start` is overlapping too
            for j in range(i - 1, -1, -1):
                if intervals[j][1] >= start:
                    flagged[j] = True
                    break
        max_end = end if max_end is None else max(max_end, end)
    overlapping = sum(flagged)
    return 100.0 * overlapping / len(intervals)


def build_engine(data_dir, chunk_points=1000, points_per_page=None,
                 **config_kwargs):
    """A :class:`StorageEngine` with the paper's Table 4 spirit:
    ``chunk_points`` points per chunk, compaction off."""
    config = StorageConfig(
        avg_series_point_number_threshold=chunk_points,
        points_per_page=points_per_page or chunk_points,
        **config_kwargs)
    return StorageEngine(data_dir, config)
