"""CSV import/export for time series (the interchange format of the
examples and of IoTDB's own export tools)."""

from __future__ import annotations

import csv

import numpy as np

from ..core.series import TimeSeries
from ..errors import ReproError


def save_csv(path, timestamps, values, header=("time", "value")):
    """Write ``(timestamps, values)`` as a two-column CSV."""
    t = np.asarray(timestamps)
    v = np.asarray(values)
    if t.size != v.size:
        raise ReproError("time/value length mismatch")
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        if header:
            writer.writerow(header)
        for row_t, row_v in zip(t, v):
            writer.writerow((int(row_t), repr(float(row_v))))


def load_csv(path, has_header=True):
    """Read a two-column CSV back into ``(timestamps, values)`` arrays."""
    times = []
    values = []
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        if has_header:
            next(reader, None)
        for line_no, row in enumerate(reader, start=2 if has_header else 1):
            if not row:
                continue
            if len(row) < 2:
                raise ReproError("%s:%d: expected two columns"
                                 % (path, line_no))
            try:
                times.append(int(row[0]))
                values.append(float(row[1]))
            except ValueError as exc:
                raise ReproError("%s:%d: %s" % (path, line_no, exc)) from exc
    return (np.array(times, dtype=np.int64),
            np.array(values, dtype=np.float64))


def load_csv_series(path, has_header=True):
    """Read a CSV into a :class:`TimeSeries` (sorted, must be unique)."""
    t, v = load_csv(path, has_header)
    order = np.argsort(t, kind="stable")
    return TimeSeries(t[order], v[order])
