"""Datasets: the four paper-profile generators and workload builders."""

from .anomalies import (
    Anomaly,
    inject_dropout,
    inject_drift,
    inject_flatline,
    inject_level_shift,
    inject_spikes,
    inject_standard_suite,
)
from .generators import PROFILES, DatasetProfile, dataset_summary, generate
from .loader import load_csv, load_csv_series, save_csv
from .torture import TortureConfig, TortureStream, generate_torture
from .workloads import (
    apply_delete_workload,
    build_engine,
    load_sequential,
    load_with_overlap,
    overlap_percentage,
)

__all__ = [
    "Anomaly",
    "DatasetProfile",
    "PROFILES",
    "TortureConfig",
    "TortureStream",
    "apply_delete_workload",
    "build_engine",
    "dataset_summary",
    "generate",
    "generate_torture",
    "inject_dropout",
    "inject_drift",
    "inject_flatline",
    "inject_level_shift",
    "inject_spikes",
    "inject_standard_suite",
    "load_csv",
    "load_csv_series",
    "load_sequential",
    "load_with_overlap",
    "overlap_percentage",
    "save_csv",
]
