"""Seeded ingest torture generator: out-of-order, late, duplicate points.

Real IoT ingest is never the sorted bulk load the paper benchmarks:
gateways buffer and retry, devices reboot with skewed clocks, and
at-least-once delivery re-sends points it already shipped.  This module
turns any of the four dataset profiles (or a plain ramp) into a stream
of *batches* exhibiting exactly those pathologies, deterministically
for a given seed, together with the sorted last-write-wins union the
store must converge to.

Semantics contract
------------------

The expected union is computed by replaying the batches in emission
order into a per-timestamp map — i.e. **the last emitted value for a
timestamp wins**.  That is precisely the engine's resolution order:
the memtable keeps the last-inserted value per timestamp when it
drains, and sealed chunks merge with the highest version winning, and
batch ``i`` always drains with a version below batch ``j > i``'s when
flushed in order.  The property suite and ``scripts/ingest_smoke.py``
assert the store's query/render output is byte-identical to a bulk
load of :meth:`TortureStream.expected`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .generators import PROFILES, generate


@dataclasses.dataclass(frozen=True)
class TortureConfig:
    """Knobs of the torture stream (all fractions in ``[0, 1]``).

    ``dataset`` names one of the Table 2 profiles, or ``None`` for a
    unit-step ramp (timestamps ``0..n_points-1``, random-walk values).
    Out-of-order points are held back and re-emitted up to
    ``max_lag_batches`` batches late; duplicates re-emit an
    already-sent timestamp with a perturbed value (so last-write-wins
    is observable, not vacuous).
    """

    n_points: int = 10_000
    batch_size: int = 500
    out_of_order_fraction: float = 0.1
    max_lag_batches: int = 4
    duplicate_fraction: float = 0.02
    dataset: str = None
    seed: int = 0

    def __post_init__(self):
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for field in ("out_of_order_fraction", "duplicate_fraction"):
            frac = getattr(self, field)
            if not 0.0 <= frac <= 1.0:
                raise ValueError("%s must be in [0, 1]" % field)
        if self.max_lag_batches < 1:
            raise ValueError("max_lag_batches must be >= 1")
        if self.dataset is not None and self.dataset not in PROFILES:
            raise ValueError("unknown dataset %r (one of %s)"
                             % (self.dataset, "/".join(sorted(PROFILES))))


@dataclasses.dataclass(frozen=True)
class TortureStream:
    """The generated batches plus ground truth derived from them."""

    config: TortureConfig
    #: list of ``(timestamps, values)`` int64/float64 array pairs, in
    #: emission order; every batch is non-empty.
    batches: tuple

    def expected(self):
        """Sorted last-write-wins union as ``(timestamps, values)``.

        Replays the batches in emission order, later emissions
        overwriting earlier ones per timestamp — the engine's own
        resolution order (module docstring).
        """
        merged = {}
        for t, v in self.batches:
            for i in range(t.size):
                merged[int(t[i])] = float(v[i])
        ts = np.array(sorted(merged), dtype=np.int64)
        vs = np.array([merged[int(t)] for t in ts], dtype=np.float64)
        return ts, vs

    def stats(self):
        """Realized pathology counts (what the stream actually holds)."""
        emitted = sum(int(t.size) for t, _ in self.batches)
        seen = set()
        out_of_order = duplicates = 0
        high = None  # watermark across *previous* batches: a point is
        # out of order when an earlier batch already carried a later
        # timestamp (matching the engine's batch-granular tail check).
        for t, _ in self.batches:
            for raw in t:
                ts = int(raw)
                if ts in seen:
                    duplicates += 1
                elif high is not None and ts <= high:
                    out_of_order += 1
                seen.add(ts)
            batch_high = int(t.max())
            high = batch_high if high is None else max(high, batch_high)
        return {"batches": len(self.batches), "emitted": emitted,
                "unique": len(seen), "out_of_order": out_of_order,
                "duplicates": duplicates}


def generate_torture(config=None, **kwargs):
    """Build a :class:`TortureStream` (pass a config or its kwargs)."""
    if config is None:
        config = TortureConfig(**kwargs)
    elif kwargs:
        config = dataclasses.replace(config, **kwargs)
    rng = np.random.default_rng(config.seed)
    n = config.n_points
    if config.dataset is None:
        base_t = np.arange(n, dtype=np.int64)
        base_v = np.cumsum(rng.normal(0, 1.0, n)) + 100.0
    else:
        base_t, base_v = generate(config.dataset, n, config.seed)
        base_t = np.asarray(base_t, dtype=np.int64)
        base_v = np.asarray(base_v, dtype=np.float64)

    n_batches = -(-n // config.batch_size)
    pending = [[] for _ in range(n_batches)]  # (t, v) pairs per batch
    for i in range(n):
        batch = i // config.batch_size
        if batch + 1 < n_batches \
                and rng.random() < config.out_of_order_fraction:
            lag = int(rng.integers(1, config.max_lag_batches + 1))
            batch = min(batch + lag, n_batches - 1)
        pending[batch].append((int(base_t[i]), float(base_v[i])))

    # Duplicates: re-emit an already-scheduled timestamp in a *later or
    # equal* batch with a perturbed value, so the re-emission wins.
    n_dups = int(round(n * config.duplicate_fraction))
    if n_dups:
        for i in rng.choice(n, size=n_dups, replace=False):
            origin = i // config.batch_size
            batch = int(rng.integers(origin, n_batches))
            pending[batch].append(
                (int(base_t[i]), float(base_v[i]) + float(rng.normal(0, 1))))

    batches = []
    for group in pending:
        if not group:
            continue
        rng.shuffle(group)  # scramble order inside the batch too
        ts = np.array([p[0] for p in group], dtype=np.int64)
        vs = np.array([p[1] for p in group], dtype=np.float64)
        batches.append((ts, vs))
    return TortureStream(config, tuple(batches))
