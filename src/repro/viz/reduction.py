"""Data reduction baselines M4 is compared against (Section 5.1).

All reducers take time-ordered arrays plus the query geometry and return
a reduced :class:`TimeSeries`.  MinMax and PAA are the classic
visualization-oriented aggregations; systematic and random sampling are
the generic data mining reducers.  None of them is pixel-exact — the E8
bench quantifies their error next to M4's zero.
"""

from __future__ import annotations

import numpy as np

from ..core.series import TimeSeries
from ..core.spans import span_indices, validate_query


def _group_slices(timestamps, t_qs, t_qe, w):
    """Contiguous ``(span, start, end)`` slices of in-range points."""
    t = np.asarray(timestamps)
    lo = int(np.searchsorted(t, t_qs, side="left"))
    hi = int(np.searchsorted(t, t_qe, side="left"))
    if lo == hi:
        return t[:0], lo, []
    indices = span_indices(t[lo:hi], t_qs, t_qe, w)
    occupied, starts = np.unique(indices, return_index=True)
    ends = np.append(starts[1:], hi - lo)
    return t, lo, list(zip(occupied, starts + lo, ends + lo))


def minmax_reduce(timestamps, values, t_qs, t_qe, w):
    """Per span keep only a min-value and a max-value point."""
    validate_query(t_qs, t_qe, w)
    v = np.asarray(values)
    _t, _lo, slices = _group_slices(timestamps, t_qs, t_qe, w)
    t = np.asarray(timestamps)
    keep = []
    for _span, start, end in slices:
        seg = v[start:end]
        keep.append(start + int(np.argmin(seg)))
        keep.append(start + int(np.argmax(seg)))
    rows = np.unique(np.array(keep, dtype=np.int64))
    return TimeSeries(t[rows], v[rows], validate=False)


def paa_reduce(timestamps, values, t_qs, t_qe, w):
    """Piecewise Aggregate Approximation: one mean point per span,
    placed at the span's mean timestamp."""
    validate_query(t_qs, t_qe, w)
    t = np.asarray(timestamps)
    v = np.asarray(values)
    _t, _lo, slices = _group_slices(timestamps, t_qs, t_qe, w)
    out_t = []
    out_v = []
    for _span, start, end in slices:
        out_t.append(int(t[start:end].mean()))
        out_v.append(float(v[start:end].mean()))
    return TimeSeries(np.array(out_t, dtype=np.int64),
                      np.array(out_v, dtype=np.float64))


def systematic_sample(timestamps, values, target_points):
    """Every n-th point so roughly ``target_points`` survive."""
    t = np.asarray(timestamps)
    v = np.asarray(values)
    if target_points <= 0 or t.size == 0:
        return TimeSeries.empty()
    step = max(t.size // target_points, 1)
    rows = np.arange(0, t.size, step)
    return TimeSeries(t[rows], v[rows], validate=False)


def random_sample(timestamps, values, target_points, seed=0):
    """Uniform random sample of ``target_points`` points (time order kept)."""
    t = np.asarray(timestamps)
    v = np.asarray(values)
    if target_points <= 0 or t.size == 0:
        return TimeSeries.empty()
    rng = np.random.default_rng(seed)
    rows = np.sort(rng.choice(t.size, size=min(target_points, t.size),
                              replace=False))
    return TimeSeries(t[rows], v[rows], validate=False)


def m4_reduce(timestamps, values, t_qs, t_qe, w):
    """M4 reduction as a series (the paper's in-DB reducer)."""
    from ..core.m4 import m4_aggregate_arrays
    return m4_aggregate_arrays(timestamps, values, t_qs, t_qe, w).to_series()


#: Registry used by the pixel-accuracy bench: name -> reducer taking
#: ``(timestamps, values, t_qs, t_qe, w)``.
REDUCERS = {
    "M4": m4_reduce,
    "MinMax": minmax_reduce,
    "PAA": paa_reduce,
    "Systematic": lambda t, v, qs, qe, w: systematic_sample(t, v, 4 * w),
    "Random": lambda t, v, qs, qe, w: random_sample(t, v, 4 * w),
}
