"""Pixel-level comparison of rendered charts.

The paper's headline quality claim is that M4 is *error-free* in
two-color line visualization: the reduced series renders to exactly the
same pixel matrix as the full series.  These metrics quantify that —
zero for M4, non-zero for MinMax / sampling baselines.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ReproError


@dataclasses.dataclass(frozen=True)
class PixelComparison:
    """Result of comparing two binary pixel matrices."""

    width: int
    height: int
    differing_pixels: int
    missing_pixels: int      # lit in the reference, dark in the candidate
    spurious_pixels: int     # dark in the reference, lit in the candidate
    reference_lit: int

    @property
    def total_pixels(self):
        """Total pixels in the canvas."""
        return self.width * self.height

    @property
    def error_ratio(self):
        """Differing pixels over total pixels."""
        return self.differing_pixels / self.total_pixels

    @property
    def ssim_like(self):
        """Jaccard similarity of the lit pixel sets (1.0 = identical)."""
        union = (self.reference_lit + self.spurious_pixels)
        if union == 0:
            return 1.0
        return (self.reference_lit - self.missing_pixels) / union

    def is_exact(self):
        """True when the two renderings match pixel for pixel."""
        return self.differing_pixels == 0


def compare_pixels(reference, candidate):
    """Compare two binary matrices; returns :class:`PixelComparison`."""
    ref = np.asarray(reference, dtype=bool)
    cand = np.asarray(candidate, dtype=bool)
    if ref.shape != cand.shape:
        raise ReproError("pixel matrices differ in shape: %s vs %s"
                         % (ref.shape, cand.shape))
    missing = int(np.count_nonzero(ref & ~cand))
    spurious = int(np.count_nonzero(~ref & cand))
    return PixelComparison(
        width=ref.shape[1],
        height=ref.shape[0],
        differing_pixels=missing + spurious,
        missing_pixels=missing,
        spurious_pixels=spurious,
        reference_lit=int(np.count_nonzero(ref)),
    )


def column_value_extents(matrix):
    """Per-column ``(lowest lit row, highest lit row)`` pairs, ``(-1, -1)``
    for dark columns — a compact signature used in tests."""
    out = []
    for col in range(matrix.shape[1]):
        rows = np.flatnonzero(matrix[:, col])
        if rows.size:
            out.append((int(rows[0]), int(rows[-1])))
        else:
            out.append((-1, -1))
    return out
