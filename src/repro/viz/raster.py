"""Two-color line-chart rasterization.

M4's guarantee (Jugel et al., VLDB 2014) is stated for binary line
charts: rendering the M4-reduced series produces *exactly* the same
pixel matrix as rendering the full series.  To validate that claim we
need the renderer the guarantee speaks about: an *ideal* polyline
rasterizer that, for every pixel column a segment crosses, fills the
contiguous run of pixels the segment's y-extent covers in that column.

:func:`rasterize` implements that renderer; :func:`rasterize_bresenham`
is the classic integer line algorithm, kept for comparison (its pixel
choice differs slightly, but M4 remains pixel-exact under it in the
benches as well because both renderings consume the same four points).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


class PixelGrid:
    """Maps the data domain onto a ``width x height`` binary pixel matrix.

    Columns follow the M4 span rule (``floor(w * (t - t_qs) / D)``) so a
    pixel column corresponds exactly to one M4 span.  Rows map values
    linearly; row 0 is the bottom of the chart.
    """

    def __init__(self, t_qs, t_qe, v_min, v_max, width, height):
        if t_qe <= t_qs:
            raise ReproError("empty time range for rasterization")
        if width <= 0 or height <= 0:
            raise ReproError("pixel grid must have positive dimensions")
        if v_max < v_min:
            raise ReproError("v_max < v_min")
        self.t_qs = int(t_qs)
        self.t_qe = int(t_qe)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self.width = int(width)
        self.height = int(height)

    @classmethod
    def for_series(cls, series, width, height, t_qs=None, t_qe=None):
        """A grid covering a series' full time and value extent."""
        if len(series) == 0:
            raise ReproError("cannot build a grid for an empty series")
        t_qs = series.first().t if t_qs is None else t_qs
        t_qe = series.last().t + 1 if t_qe is None else t_qe
        return cls(t_qs, t_qe, float(series.values.min()),
                   float(series.values.max()), width, height)

    def column_of(self, t):
        """Pixel column of timestamp ``t`` (clamped to the grid)."""
        col = (int(t) - self.t_qs) * self.width // (self.t_qe - self.t_qs)
        return min(max(col, 0), self.width - 1)

    def x_of(self, t):
        """Continuous x coordinate (in pixel units) of timestamp ``t``."""
        return (t - self.t_qs) * self.width / (self.t_qe - self.t_qs)

    def row_of(self, v):
        """Pixel row of value ``v`` (row 0 = bottom, clamped)."""
        if self.v_max == self.v_min:
            return 0
        row = int((v - self.v_min) / (self.v_max - self.v_min)
                  * (self.height - 1) + 0.5)
        return min(max(row, 0), self.height - 1)

    def y_of(self, v):
        """Continuous y coordinate (in pixel rows) of value ``v``."""
        if self.v_max == self.v_min:
            return 0.0
        return (v - self.v_min) / (self.v_max - self.v_min) * (self.height - 1)

    def empty_matrix(self):
        """A blank ``height x width`` boolean canvas."""
        return np.zeros((self.height, self.width), dtype=bool)


def rasterize(series, grid):
    """Ideal two-color polyline rendering of a series onto ``grid``.

    Every segment between consecutive points contributes, per pixel
    column it crosses, the contiguous pixel run covering its y-extent in
    that column — the rendering model under which M4 is error-free.
    """
    matrix = grid.empty_matrix()
    n = len(series)
    if n == 0:
        return matrix
    t = series.timestamps
    v = series.values
    if n == 1:
        matrix[grid.row_of(float(v[0])), grid.column_of(int(t[0]))] = True
        return matrix
    for i in range(n - 1):
        _draw_segment(matrix, grid,
                      float(grid.x_of(int(t[i]))), grid.y_of(float(v[i])),
                      float(grid.x_of(int(t[i + 1]))),
                      grid.y_of(float(v[i + 1])))
    return matrix


def _draw_segment(matrix, grid, x0, y0, x1, y1):
    """Fill, per crossed column, the pixel run the segment covers."""
    col0 = min(max(int(x0), 0), grid.width - 1)
    col1 = min(max(int(x1), 0), grid.width - 1)
    if x1 == x0:
        lo, hi = sorted((int(y0 + 0.5), int(y1 + 0.5)))
        matrix[max(lo, 0):min(hi, grid.height - 1) + 1, col0] = True
        return
    slope = (y1 - y0) / (x1 - x0)
    for col in range(min(col0, col1), max(col0, col1) + 1):
        # y-extent of the segment within this column's x-range.
        x_lo = max(col, min(x0, x1))
        x_hi = min(col + 1, max(x0, x1))
        if x_hi < x_lo:
            x_lo = x_hi = max(min(x0, x1), min(col, max(x0, x1)))
        # Use endpoint heights verbatim where the clamp lands exactly on
        # an endpoint: re-interpolating them on steep segments loses a
        # few ulps, enough to flip a pixel at a .5 rounding boundary.
        y_a = y0 if x_lo == x0 else (y1 if x_lo == x1
                                     else y0 + slope * (x_lo - x0))
        y_b = y1 if x_hi == x1 else (y0 if x_hi == x0
                                     else y0 + slope * (x_hi - x0))
        lo = int(min(y_a, y_b) + 0.5)
        hi = int(max(y_a, y_b) + 0.5)
        matrix[max(lo, 0):min(hi, grid.height - 1) + 1, col] = True


def rasterize_bresenham(series, grid):
    """Classic Bresenham polyline rendering (for comparison only)."""
    matrix = grid.empty_matrix()
    n = len(series)
    if n == 0:
        return matrix
    t = series.timestamps
    v = series.values
    prev = None
    for i in range(n):
        col = grid.column_of(int(t[i]))
        row = grid.row_of(float(v[i]))
        if prev is not None:
            _bresenham(matrix, prev[0], prev[1], col, row)
        else:
            matrix[row, col] = True
        prev = (col, row)
    return matrix


def _bresenham(matrix, x0, y0, x1, y1):
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    step_x = 1 if x0 < x1 else -1
    step_y = 1 if y0 < y1 else -1
    error = dx + dy
    x, y = x0, y0
    while True:
        matrix[y, x] = True
        if x == x1 and y == y1:
            return
        doubled = 2 * error
        if doubled >= dy:
            error += dy
            x += step_x
        if doubled <= dx:
            error += dx
            y += step_y
