"""SVG line-chart export for M4-reduced series.

Dashboards render vector charts; this writer turns a (reduced) series
into a standalone SVG document with a polyline, axis frame and optional
tick labels.  Because M4 keeps at most ``4w`` points for a ``w``-pixel
chart, the emitted file stays small no matter how large the source
series was — the serving-size argument of the paper made tangible.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from ..errors import ReproError

_TEMPLATE = """<svg xmlns="http://www.w3.org/2000/svg" width="{width}" \
height="{height}" viewBox="0 0 {width} {height}">
  <rect x="0" y="0" width="{width}" height="{height}" fill="{background}"/>
{body}</svg>
"""


def series_to_svg(series, width=800, height=300, margin=40,
                  stroke="#1f77b4", stroke_width=1.0,
                  background="white", title=None, ticks=4):
    """Render a series as a standalone SVG document string.

    Args:
        series: a :class:`repro.core.series.TimeSeries` (typically the
            output of ``M4Result.to_series()``).
        width / height: document size in CSS pixels.
        margin: plot inset holding the axes and labels.
        ticks: number of tick labels per axis (0 disables).
    """
    if len(series) == 0:
        raise ReproError("cannot render an empty series")
    if width <= 2 * margin or height <= 2 * margin:
        raise ReproError("margins leave no plot area")
    t = series.timestamps
    v = series.values
    t_lo, t_hi = int(t[0]), int(t[-1])
    v_lo, v_hi = float(v.min()), float(v.max())
    t_span = max(t_hi - t_lo, 1)
    v_span = (v_hi - v_lo) or 1.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def sx(timestamp):
        return margin + (timestamp - t_lo) / t_span * plot_w

    def sy(value):
        return height - margin - (value - v_lo) / v_span * plot_h

    points = " ".join("%.2f,%.2f" % (sx(int(ts)), sy(float(val)))
                      for ts, val in zip(t, v))
    body = [
        '  <rect x="%d" y="%d" width="%d" height="%d" fill="none" '
        'stroke="#888"/>' % (margin, margin, plot_w, plot_h),
        '  <polyline fill="none" stroke="%s" stroke-width="%s" '
        'points="%s"/>' % (stroke, stroke_width, points),
    ]
    if title:
        body.insert(0, '  <text x="%d" y="%d" font-size="14" '
                       'font-family="sans-serif">%s</text>'
                       % (margin, margin - 10, escape(title)))
    for i in range(max(ticks, 0)):
        fraction = i / max(ticks - 1, 1)
        tick_t = t_lo + int(t_span * fraction)
        tick_v = v_lo + v_span * fraction
        body.append('  <text x="%.1f" y="%d" font-size="9" '
                    'text-anchor="middle" font-family="sans-serif">%d'
                    '</text>' % (sx(tick_t), height - margin + 14, tick_t))
        body.append('  <text x="%d" y="%.1f" font-size="9" '
                    'text-anchor="end" font-family="sans-serif">%.4g'
                    '</text>' % (margin - 4, sy(tick_v) + 3, tick_v))
    return _TEMPLATE.format(width=width, height=height,
                            background=background,
                            body="\n".join(body) + "\n")


def m4_result_to_svg(result, **kwargs):
    """Render an :class:`repro.core.result.M4Result` (its reduced
    series) as SVG."""
    return series_to_svg(result.to_series(), **kwargs)


def save_svg(series, path, **kwargs):
    """Write :func:`series_to_svg` output to a file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(series_to_svg(series, **kwargs))
