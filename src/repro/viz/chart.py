"""Human-viewable chart output: ASCII art and PBM image export.

These are convenience surfaces over the binary matrices produced by
:mod:`repro.viz.raster` — used by the examples to show, in a terminal,
that the M4 rendering of a million-point series is indistinguishable
from the full rendering.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def to_ascii(matrix, lit="#", dark=".", max_width=120):
    """Render a binary matrix as ASCII art (top row first).

    Wide matrices are downsampled column-wise by OR-ing neighbours so the
    art fits a terminal; that preserves lit-ness, not exact pixels.
    """
    m = np.asarray(matrix, dtype=bool)
    if m.ndim != 2:
        raise ReproError("expected a 2-D pixel matrix")
    if m.shape[1] > max_width:
        factor = -(-m.shape[1] // max_width)  # ceil division
        pad = (-m.shape[1]) % factor
        padded = np.pad(m, ((0, 0), (0, pad)))
        m = padded.reshape(m.shape[0], -1, factor).any(axis=2)
    rows = []
    for row in m[::-1]:  # row 0 is the chart bottom; print top first
        rows.append("".join(lit if cell else dark for cell in row))
    return "\n".join(rows)


def side_by_side(left, right, gap="   ", **kwargs):
    """Two matrices rendered next to each other for visual comparison."""
    a = to_ascii(left, **kwargs).splitlines()
    b = to_ascii(right, **kwargs).splitlines()
    if len(a) != len(b):
        raise ReproError("matrices differ in height")
    return "\n".join(la + gap + lb for la, lb in zip(a, b))


def to_pbm(matrix):
    """Serialize a binary matrix as a plain-text PBM (P1) image."""
    m = np.asarray(matrix, dtype=bool)[::-1]  # image origin is top-left
    header = "P1\n%d %d\n" % (m.shape[1], m.shape[0])
    body = "\n".join(" ".join("1" if cell else "0" for cell in row)
                     for row in m)
    return header + body + "\n"


def save_pbm(matrix, path):
    """Write a binary matrix as a PBM file."""
    with open(path, "w", encoding="ascii") as f:
        f.write(to_pbm(matrix))


def diff_overlay(reference, candidate):
    """Character matrix marking agreement: ``#`` both lit, ``-`` missing
    (reference only), ``+`` spurious (candidate only), ``.`` both dark."""
    ref = np.asarray(reference, dtype=bool)
    cand = np.asarray(candidate, dtype=bool)
    if ref.shape != cand.shape:
        raise ReproError("matrices differ in shape")
    out = np.full(ref.shape, ".", dtype="<U1")
    out[ref & cand] = "#"
    out[ref & ~cand] = "-"
    out[~ref & cand] = "+"
    return "\n".join("".join(row) for row in out[::-1])
