"""Multi-resolution M4 serving for interactive pan & zoom.

The paper's use case is an analyst zooming through a long series.  Every
viewport change is an M4 query; a :class:`ZoomService` wraps an engine
and serves viewports with two practical optimizations:

* **span-aligned requests** — viewports are snapped onto a power-of-two
  grid of span boundaries, so panning reuses previously computed spans
  instead of recomputing slightly-shifted ones;
* **a result cache** keyed by the aligned (level, start) tiles, bounded
  by tile count, and **invalidated on writes/deletes** through the
  engine's data version.

Tiles are deliberately M4 *results*, not pixels: the client can render
them at any height.
"""

from __future__ import annotations

import collections

from ..core.m4lsm import M4LSMOperator
from ..errors import ReproError


class ZoomService:
    """Viewport server over one series of one engine.

    Args:
        engine: the storage engine.
        series: series name.
        t_min / t_max: full extent served (defaults to the series
            extent at construction).
        tile_spans: spans per tile — also the per-tile M4 width.
        max_tiles: cache bound (LRU).
    """

    def __init__(self, engine, series, t_min=None, t_max=None,
                 tile_spans=256, max_tiles=64):
        self._engine = engine
        self._series = series
        self._operator = M4LSMOperator(engine)
        if t_min is None or t_max is None:
            chunks = engine.chunks_for(series)
            if not chunks:
                raise ReproError("series %r is empty" % series)
            t_min = min(c.start_time for c in chunks) if t_min is None \
                else t_min
            t_max = max(c.end_time for c in chunks) + 1 if t_max is None \
                else t_max
        if t_max <= t_min:
            raise ReproError("empty extent")
        self._t_min = int(t_min)
        self._t_max = int(t_max)
        self._tile_spans = int(tile_spans)
        self._tiles = collections.OrderedDict()
        self._max_tiles = int(max_tiles)
        self._data_version = self._current_data_version()
        self.tile_hits = 0
        self.tile_misses = 0

    # -- invalidation -------------------------------------------------------------

    def _current_data_version(self):
        chunks = self._engine.chunks_for(self._series)
        deletes = self._engine.deletes_for(self._series)
        last_chunk = max((c.version for c in chunks), default=0)
        last_delete = max((d.version for d in deletes), default=0)
        return (len(chunks), last_chunk, len(deletes), last_delete)

    def _check_freshness(self):
        version = self._current_data_version()
        if version != self._data_version:
            self._tiles.clear()
            self._data_version = version

    # -- tiles ---------------------------------------------------------------------

    def _level_duration(self, level):
        """Time covered by one tile at a zoom level (level 0 = full)."""
        full = self._t_max - self._t_min
        return max(full >> level, self._tile_spans)

    def max_level(self):
        """Deepest level at which a tile still spans >= tile_spans
        integer timestamps."""
        level = 0
        while (self._t_max - self._t_min) >> (level + 1) \
                >= self._tile_spans:
            level += 1
        return level

    def _tile(self, level, index):
        key = (level, index)
        if key in self._tiles:
            self._tiles.move_to_end(key)
            self.tile_hits += 1
            return self._tiles[key]
        self.tile_misses += 1
        duration = self._level_duration(level)
        start = self._t_min + index * duration
        end = min(start + duration, self._t_max)
        if start >= end:
            raise ReproError("tile (%d, %d) outside extent" % key)
        result = self._operator.query(self._series, start, end,
                                      self._tile_spans)
        self._tiles[key] = result
        while len(self._tiles) > self._max_tiles:
            self._tiles.popitem(last=False)
        return result

    # -- public API -------------------------------------------------------------------

    def viewport(self, t_start, t_end, width):
        """M4 data for a viewport, from cached aligned tiles.

        Picks the zoom level whose tiles give at least ``width`` spans
        across the viewport, fetches the covering tiles, and returns the
        concatenated reduced series clipped to the viewport.
        """
        self._check_freshness()
        t_start = max(int(t_start), self._t_min)
        t_end = min(int(t_end), self._t_max)
        if t_end <= t_start:
            raise ReproError("empty viewport")
        viewport_span = t_end - t_start
        level = 0
        deepest = self.max_level()
        # Deepest level whose tile still covers a decent share of the
        # viewport: resolution = tile_spans spans per tile duration.
        while (level < deepest
               and self._level_duration(level) > viewport_span):
            level += 1
        duration = self._level_duration(level)
        first = (t_start - self._t_min) // duration
        last = (t_end - 1 - self._t_min) // duration
        results = [self._tile(level, index)
                   for index in range(first, last + 1)]
        return _concat_clipped(results, t_start, t_end)

    def cache_stats(self):
        """Dict with tiles cached, hits and misses."""
        return {"tiles": len(self._tiles), "hits": self.tile_hits,
                "misses": self.tile_misses}


def _concat_clipped(results, t_start, t_end):
    """Merge tile results into one reduced series over [t_start, t_end)."""
    from ..core.series import TimeSeries, concat_series
    parts = []
    for result in results:
        series = result.to_series()
        clipped = series.slice_time(t_start, t_end)
        if len(clipped):
            parts.append(clipped)
    if not parts:
        return TimeSeries.empty()
    return concat_series(parts)


def pyramid(engine, series, t_qs, t_qe, widths=(100, 500, 2500)):
    """Precompute M4 results at several widths (coarse to fine).

    Returns ``{width: M4Result}`` — the static variant of
    :class:`ZoomService` for offline report generation.
    """
    operator = M4LSMOperator(engine)
    out = {}
    for width in widths:
        out[int(width)] = operator.query(series, t_qs, t_qe, int(width))
    return out
