"""Visualization substrate: rasterization, pixel metrics, reducers."""

from .chart import diff_overlay, save_pbm, side_by_side, to_ascii, to_pbm
from .pixels import PixelComparison, column_value_extents, compare_pixels
from .raster import PixelGrid, rasterize, rasterize_bresenham
from .multiscale import ZoomService, pyramid
from .svg import m4_result_to_svg, save_svg, series_to_svg
from .reduction import (
    REDUCERS,
    m4_reduce,
    minmax_reduce,
    paa_reduce,
    random_sample,
    systematic_sample,
)

__all__ = [
    "PixelComparison",
    "PixelGrid",
    "REDUCERS",
    "ZoomService",
    "column_value_extents",
    "compare_pixels",
    "diff_overlay",
    "m4_reduce",
    "m4_result_to_svg",
    "minmax_reduce",
    "paa_reduce",
    "pyramid",
    "random_sample",
    "rasterize",
    "rasterize_bresenham",
    "save_pbm",
    "save_svg",
    "series_to_svg",
    "side_by_side",
    "systematic_sample",
    "to_ascii",
    "to_pbm",
]
