"""Transport-independent request execution for the query service.

:class:`QueryService` turns endpoint payloads into :class:`Response`
objects; the HTTP layer only parses/serializes.  Heavy endpoints
(``query``, ``render``) go through the :class:`AdmissionController` —
bounded queue, worker pool, per-request deadline — while ``series``,
``stats`` and ``healthz`` are answered inline so the server stays
observable even when fully loaded.

Every request gets an id (``r000042``); it is returned in the response
body, stamped on the ``X-Repro-Request-Id`` header, and attached to any
slow-query log entry the request produces, so a slow dashboard frame
can be traced from client to engine.

Requests are also *traced* end to end: the service parses the client's
W3C ``traceparent`` header (or mints a trace id itself), opens a
request-scoped root span around admission, and the worker re-roots the
engine's spans under it — so one tree shows admission queue wait,
worker hand-off, lock waits, per-chunk pipeline items and tile-cache
lookups.  Completed trees land in the engine's
:class:`~repro.obs.TraceStore` and are served by ``GET /trace`` (with
Chrome ``trace_event`` export) plus joined to the slow-query log via
the trace id.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import time

from ..errors import (
    DeadlineExceededError,
    IngestBackpressureError,
    QueryError,
    ReplicationError,
    ReproError,
    SeriesNotFoundError,
    ServerOverloadedError,
    ShardDownError,
)
from ..ingest import IngestController, LiveFeed
from ..obs import (
    SamplingProfiler,
    make_traceparent,
    parse_traceparent,
    to_chrome_trace,
    to_prometheus,
)
from ..query.executor import Executor
from ..query.sql import parse as parse_sql
from ..storage.deadline import Deadline, check_deadline
from .admission import AdmissionController

_JSON = "application/json"
_PBM = "image/x-portable-bitmap"


@dataclasses.dataclass
class ServerConfig:
    """Tunable knobs of the query service."""

    host: str = "127.0.0.1"
    port: int = 8731
    workers: int = 4                     # admission worker pool size
    queue_depth: int = 16                # queued jobs before shedding
    default_timeout_seconds: float = 10.0
    max_timeout_seconds: float = 60.0    # per-request cap
    retry_after_seconds: int = 1         # suggested back-off on 503
    debug_hooks: bool = False            # honor test-only sleep_ms
    quiet: bool = False                  # suppress per-request log lines
    strict: bool = False                 # corrupt chunk -> 500, no skip
    ingest_queue_bytes: int = 8 << 20    # streaming ingest queue bound
    ingest_tenant_budget_bytes: int = 0  # per-tenant share (0 = off)
    live_max_subscribers: int = 64       # concurrent /live waiters
    live_poll_seconds: float = 10.0      # default /live long-poll wait
    # -- replication (DESIGN.md §14) ------------------------------------
    standby: bool = False                # boot as a read-only replica
    replicate_to: tuple = ()             # replica base URLs (primary)
    node_id: str = ""                    # stable node name ("" = random)
    advertise_url: str = ""              # URL replicas hand to clients
    lease_seconds: float = 5.0           # primary-silence promotion lease
    auto_promote: bool = False           # standby self-promotes on lease
    ingest_ack: str = "queued"           # queued | applied | replicated

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.default_timeout_seconds <= 0:
            raise ValueError("default_timeout_seconds must be positive")
        if self.max_timeout_seconds < self.default_timeout_seconds:
            raise ValueError("max_timeout_seconds must be >= default")
        if self.ingest_queue_bytes <= 0:
            raise ValueError("ingest_queue_bytes must be positive")
        if self.ingest_tenant_budget_bytes < 0:
            raise ValueError("ingest_tenant_budget_bytes must be >= 0")
        if self.live_max_subscribers < 1:
            raise ValueError("live_max_subscribers must be >= 1")
        if self.live_poll_seconds <= 0:
            raise ValueError("live_poll_seconds must be positive")
        self.replicate_to = tuple(self.replicate_to)
        if self.standby and self.replicate_to:
            raise ValueError("a node is a standby or ships to replicas, "
                             "not both (promote first)")
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.ingest_ack not in ("queued", "applied", "replicated"):
            raise ValueError("ingest_ack must be queued, applied or "
                             "replicated")
        if self.ingest_ack == "replicated" and not self.replicate_to:
            raise ValueError("ingest_ack='replicated' requires "
                             "replicate_to")


@dataclasses.dataclass
class Response:
    """One finished response, ready for any transport."""

    status: int
    body: bytes
    content_type: str = _JSON
    headers: dict = dataclasses.field(default_factory=dict)


def render_chart(engine, series, width, height, t_qs=None, t_qe=None,
                 degraded=None):
    """The shared render pipeline: M4-LSM reduce, then rasterize.

    Used verbatim by both ``repro render`` and ``GET /render`` so the
    two surfaces are byte-identical by construction.  Returns
    ``(matrix, result)``: the binary pixel matrix and the
    :class:`~repro.core.result.M4Result` it was drawn from.

    ``degraded`` is passed through to the operator (``None`` follows
    the engine config); a fully-skipped series renders an empty chart
    rather than crashing on the empty value range.
    """
    from ..core.m4lsm import M4LSMOperator
    from ..viz.raster import PixelGrid, rasterize
    chunks = engine.chunks_for(series)
    if not chunks:
        raise QueryError("series %r is empty" % series)
    if t_qs is None:
        t_qs = min(c.start_time for c in chunks)
    if t_qe is None:
        t_qe = max(c.end_time for c in chunks) + 1
    if getattr(engine, "tile_cache", None) is not None:
        from ..core.tiles import TiledM4Operator
        operator = TiledM4Operator(engine, degraded=degraded)
    else:
        operator = M4LSMOperator(engine, degraded=degraded)
    result = operator.query(series, int(t_qs), int(t_qe), int(width))
    reduced = result.to_series()
    if len(reduced):
        v_lo, v_hi = float(reduced.values.min()), \
            float(reduced.values.max())
    else:
        v_lo, v_hi = 0.0, 1.0  # every chunk skipped: blank canvas
    grid = PixelGrid(int(t_qs), int(t_qe), v_lo, v_hi,
                     int(width), int(height))
    return rasterize(reduced, grid), result


def _degraded_warning(ranges):
    """The human-readable warning attached to a degraded response."""
    return ("degraded result: %d damaged chunk range(s) skipped (%s)"
            % (len(ranges),
               ", ".join("[%d, %d)" % (s, e) for s, e in ranges)))


def _spans_as_json(result):
    """Per-pixel-column representation points, empty spans skipped."""
    spans = []
    for i, span in enumerate(result.spans):
        if span.is_empty():
            continue
        spans.append({"span": i,
                      "first": [span.first.t, span.first.v],
                      "last": [span.last.t, span.last.v],
                      "bottom": [span.bottom.t, span.bottom.v],
                      "top": [span.top.t, span.top.v]})
    return spans


class QueryService:
    """Endpoint execution against one engine, behind admission control.

    The service does not own the engine's lifecycle beyond
    :meth:`shutdown`, which drains the admission queue (in-flight
    requests complete) without closing the engine — the
    :class:`~repro.server.http.ServerHandle` sequences the full
    drain → flush → close.
    """

    def __init__(self, engine, config=None):
        self._engine = engine
        self._config = config if config is not None else ServerConfig()
        # A ShardRouter engine turns this service into the stateless
        # scatter-gather tier: SQL/render route to owning shards,
        # series/stats/healthz aggregate across them.
        self._sharded = bool(getattr(engine, "is_sharded", False))
        if self._sharded and (self._config.standby
                              or self._config.replicate_to):
            raise ValueError(
                "replication and a sharded store cannot be combined on "
                "one node; run one replicated pair per shard instead "
                "(docs/OPERATIONS.md)")
        # Strict servers disable degraded reads outright: a checksum
        # failure surfaces as a 500 instead of a flagged 200.
        self._executor = None if self._sharded else Executor(
            engine, degraded=False if self._config.strict else None)
        self._metrics = engine.metrics
        self._tracer = engine.tracer
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._profiler = SamplingProfiler()
        self._admission = AdmissionController(
            workers=self._config.workers,
            queue_depth=self._config.queue_depth,
            metrics=engine.metrics,
            tracer=engine.tracer,
            retry_after=self._config.retry_after_seconds)
        self._live_feed = LiveFeed(
            metrics=engine.metrics,
            max_subscribers=self._config.live_max_subscribers)
        self._replication = None
        if self._config.standby or self._config.replicate_to:
            from ..replication import ReplicationManager
            self._replication = ReplicationManager(
                engine,
                role="standby" if self._config.standby else "primary",
                replicate_to=self._config.replicate_to,
                node_id=self._config.node_id or None,
                advertise=self._config.advertise_url or None,
                lease_seconds=self._config.lease_seconds,
                auto_promote=self._config.auto_promote,
                registry=engine.metrics)
        ship_wait = self._replication.wait_shipped \
            if (self._replication is not None
                and self._config.ingest_ack == "replicated") else None
        self._ingest = IngestController(
            engine,
            queue_bytes=self._config.ingest_queue_bytes,
            tenant_budget_bytes=self._config.ingest_tenant_budget_bytes,
            retry_after_seconds=self._config.retry_after_seconds,
            live_feed=self._live_feed,
            ack_mode=self._config.ingest_ack,
            ship_wait=ship_wait)

    @property
    def config(self):
        """The service's :class:`ServerConfig`."""
        return self._config

    @property
    def engine(self):
        """The served :class:`~repro.storage.engine.StorageEngine`."""
        return self._engine

    @property
    def admission(self):
        """The service's :class:`AdmissionController`."""
        return self._admission

    @property
    def profiler(self):
        """The service-owned :class:`~repro.obs.SamplingProfiler`."""
        return self._profiler

    @property
    def ingest_controller(self):
        """The service's :class:`~repro.ingest.IngestController`."""
        return self._ingest

    @property
    def live_feed(self):
        """The service's :class:`~repro.ingest.LiveFeed`."""
        return self._live_feed

    @property
    def replication(self):
        """The node's :class:`~repro.replication.ReplicationManager`
        (None on an unreplicated server)."""
        return self._replication

    def shutdown(self):
        """Drain admission + ingest (blocks until in-flight work ends).

        Order matters: the live feed is released *first* so blocked
        long-poll/SSE followers wake immediately instead of riding out
        their poll timeout while the drain proceeds; then the ingest
        queue drains (buffered batches become durable), shipped frames
        get a bounded chance to reach the replicas, and finally the
        admission queue drains.
        """
        self._profiler.stop()
        self._live_feed.close()
        self._ingest.close()
        if self._replication is not None:
            self._replication.wait_shipped(timeout=5.0)
            self._replication.stop()
        self._admission.shutdown()

    # -- endpoints ---------------------------------------------------------------------

    def query(self, payload, headers=None):
        """``POST /query``: ``{"sql": ..., "timeout_ms": optional}``."""
        if not isinstance(payload, dict) or "sql" not in payload:
            return self._error(400, None, "body must be a JSON object "
                                          "with an 'sql' field")
        sql = payload["sql"]
        rid = self._next_id()
        trace = self._trace_context(headers)
        sleep_s = self._debug_sleep(payload)
        strict = self._strict(payload)
        executor = None if self._sharded else \
            self._request_executor(payload)

        def run():
            slow_info = {"request_id": rid, "endpoint": "query",
                         "trace_id": trace.trace_id}
            if self._sharded:
                # The debug sleep runs worker-side so tests can drive a
                # deadline expiry across the shard pipe, not just here.
                table = self._engine.execute_sql(
                    sql, strict=strict, slow_info=slow_info,
                    debug_sleep_s=sleep_s)
            else:
                if sleep_s:
                    self._sleep_checked(sleep_s)
                parsed = parse_sql(sql)
                table = executor.execute(parsed, statement=sql,
                                         slow_info=slow_info)
            body = {
                "request_id": rid,
                "columns": list(table.columns),
                "rows": [list(row) for row in table.rows],
                "degraded": bool(table.meta.get("degraded", False))}
            headers = {}
            if body["degraded"]:
                body["skipped_ranges"] = table.meta["skipped_ranges"]
                body["warning"] = table.meta.get("warning") \
                    or _degraded_warning(table.meta["skipped_ranges"])
                headers["X-Repro-Degraded"] = "1"
                if table.meta.get("shard_down") is not None:
                    headers["X-Repro-Shard-Down"] = str(
                        table.meta["shard_down"])
            return Response(200, _json_bytes(body), headers=headers)

        return self._admit("query", rid, run,
                           timeout_ms=payload.get("timeout_ms"),
                           trace=trace)

    def render(self, params, headers=None):
        """``GET /render``: M4-reduce a series to pixel columns.

        Params: ``series`` (required), ``width``/``height``,
        ``format`` = ``json`` (pixel-column aggregates) or ``pbm``
        (image bytes, byte-identical to ``repro render --out``),
        ``timeout_ms``.
        """
        series = params.get("series")
        if not series:
            return self._error(400, None, "missing 'series' parameter")
        try:
            width = int(params.get("width", 256))
            height = int(params.get("height", 64))
        except ValueError:
            return self._error(400, None, "width/height must be integers")
        fmt = params.get("format", "json")
        if fmt not in ("json", "pbm"):
            return self._error(400, None, "format must be json or pbm")
        rid = self._next_id()
        trace = self._trace_context(headers)
        sleep_s = self._debug_sleep(params)
        strict = self._strict(params)

        def run():
            if sleep_s:
                self._sleep_checked(sleep_s)
            started = time.perf_counter()
            if self._sharded:
                try:
                    matrix, result = self._engine.render_series(
                        series, width, height, strict=strict)
                except ShardDownError as exc:
                    if strict:
                        raise
                    return self._shard_down_render(rid, series, width,
                                                   height, fmt, exc)
            else:
                matrix, result = render_chart(
                    self._engine, series, width, height,
                    degraded=False if strict else None)
            self._engine.slow_log.record(
                "RENDER %s %dx%d" % (series, width, height),
                time.perf_counter() - started,
                endpoint="render", request_id=rid, series=series,
                trace_id=trace.trace_id)
            headers = {}
            if result.degraded:
                # Binary formats carry the flag in headers only.
                headers["X-Repro-Degraded"] = "1"
                headers["X-Repro-Skipped-Ranges"] = ",".join(
                    "%d-%d" % (s, e) for s, e in result.skipped)
            if fmt == "pbm":
                from ..viz.chart import to_pbm
                return Response(200, to_pbm(matrix).encode("ascii"),
                                content_type=_PBM, headers=headers)
            body = {
                "request_id": rid, "series": series,
                "width": width, "height": height,
                "t_qs": result.t_qs, "t_qe": result.t_qe,
                "spans": _spans_as_json(result),
                "degraded": result.degraded}
            if result.degraded:
                ranges = [[int(s), int(e)] for s, e in result.skipped]
                body["skipped_ranges"] = ranges
                body["warning"] = _degraded_warning(ranges)
            return Response(200, _json_bytes(body), headers=headers)

        return self._admit("render", rid, run,
                           timeout_ms=params.get("timeout_ms"),
                           trace=trace)

    def _shard_down_render(self, rid, series, width, height, fmt, exc):
        """The degraded ``/render`` answer for a dead owning shard.

        Mirrors the corrupt-chunk contract: HTTP 200, an empty (blank)
        chart, ``X-Repro-Degraded`` set — plus ``X-Repro-Shard-Down``
        naming the shard so the operator knows which drill to run.
        """
        headers = {"X-Repro-Degraded": "1"}
        if exc.shard is not None:
            headers["X-Repro-Shard-Down"] = str(exc.shard)
        if fmt == "pbm":
            import numpy as np

            from ..viz.chart import to_pbm
            blank = np.zeros((int(height), int(width)), dtype=bool)
            return Response(200, to_pbm(blank).encode("ascii"),
                            content_type=_PBM, headers=headers)
        body = {"request_id": rid, "series": series,
                "width": width, "height": height,
                "t_qs": 0, "t_qe": 0, "spans": [],
                "degraded": True, "skipped_ranges": [],
                "warning": "degraded result: %s" % exc}
        return Response(200, _json_bytes(body), headers=headers)

    def series(self):
        """``GET /series``: name + time range per series (inline).

        Against a sharded store the listing is a scatter-gather merge;
        shards whose worker died are skipped and reported in
        ``shards_down`` with ``degraded: true`` (same contract as a
        degraded query: answer what is answerable, flag the rest).
        """
        if self._sharded:
            rows, down = self._engine.series_info()
            out = [{key: row[key] for key in ("name", "start_time",
                                              "end_time", "chunks",
                                              "points")}
                   for row in rows]
            body = {"series": out}
            if down:
                body["degraded"] = True
                body["shards_down"] = down
            self._count("series", 200)
            return Response(200, _json_bytes(body))
        out = []
        for name in sorted(self._engine.series_names()):
            try:
                chunks = self._engine.chunks_for(name)
            except ReproError:
                continue  # unflushed or racing a writer: skip, not fail
            if chunks:
                out.append({
                    "name": name,
                    "start_time": min(c.start_time for c in chunks),
                    "end_time": max(c.end_time for c in chunks),
                    "chunks": len(chunks),
                    "points": sum(c.n_points for c in chunks)})
            else:
                out.append({"name": name, "start_time": None,
                            "end_time": None, "chunks": 0, "points": 0})
        self._count("series", 200)
        return Response(200, _json_bytes({"series": out}))

    def stats(self, params=None):
        """``GET /stats``: obs snapshot + server section (inline).

        ``?format=prometheus`` answers text exposition format 0.0.4
        instead of JSON, so a scraper can target a live server directly
        (previously only ``repro stats --format prometheus`` over a
        closed store could).
        """
        fmt = (params or {}).get("format", "json")
        if fmt not in ("json", "prometheus"):
            return self._error(400, None,
                               "format must be json or prometheus")
        if fmt == "prometheus":
            # Same canonical source as the JSON path: the engine's
            # observability snapshot.  Rendering the raw registry here
            # used to drop the engine-lifetime io_*_total counters and
            # made the two formats disagree; snapshotting at request
            # time also means instruments registered after server
            # start (live_subscribers, ingest gauges) appear without a
            # restart.
            text = to_prometheus(
                self._engine.observability_snapshot()["metrics"])
            self._count("stats", 200)
            return Response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        snapshot = self._engine.observability_snapshot()
        snapshot["ingest"] = self._ingest.stats()
        snapshot["ingest"]["live_subscribers"] = \
            self._live_feed.subscribers
        snapshot["server"] = {
            "workers": self._admission.workers,
            "queue_depth_limit": self._admission.queue_depth,
            "default_timeout_seconds":
                self._config.default_timeout_seconds,
            "strict": self._config.strict,
        }
        quarantine = getattr(self._engine, "quarantine", None)
        if quarantine is not None:
            snapshot["quarantine"] = {
                "chunks": len(quarantine),
                "entries": quarantine.entries(),
            }
        if self._replication is not None:
            snapshot["replication"] = self._replication.status()
        self._count("stats", 200)
        return Response(200, _json_bytes(snapshot))

    def healthz(self):
        """``GET /healthz``: cheap liveness + load signals (inline).

        ``workers`` maps every long-lived worker thread (the ingest
        writer, replication shippers, the lease monitor) to its
        liveness; any dead worker on a live server flips ``status`` to
        ``"degraded"`` — a stalled queue must be visible, not silent.
        """
        metrics = self._metrics
        quarantine = getattr(self._engine, "quarantine", None)
        queue_wait = metrics.histogram("server_queue_wait_seconds")
        workers = {"ingest-writer": bool(self._ingest.writer_alive
                                         or self._ingest.closed)}
        if self._replication is not None:
            workers.update(self._replication.workers())
        if self._sharded:
            # One entry per shard worker process; a dead shard flips
            # status to "degraded" exactly like a dead ingest writer.
            workers.update(self._engine.shard_workers())
        body = {
            "status": "ok" if all(workers.values()) else "degraded",
            "workers": workers,
            "series": len(self._engine.series_names()),
            "queue_depth": metrics.gauge("server_queue_depth").value,
            "inflight": metrics.gauge("server_inflight").value,
            "shed_total": metrics.counter("server_shed_total").value,
            "timeout_total": metrics.counter("server_timeout_total").value,
            "queue_wait_p50_seconds": queue_wait.quantile(0.50),
            "queue_wait_p99_seconds": queue_wait.quantile(0.99),
            "quarantined_chunks":
                len(quarantine) if quarantine is not None else 0,
            "ingest_pending_bytes":
                metrics.gauge("ingest_queue_bytes").value,
            "ingest_points_total":
                metrics.counter("ingest_points_total").value,
            "ingest_sheds_total":
                metrics.counter("ingest_sheds_total").value,
            "live_subscribers": self._live_feed.subscribers,
        }
        if self._replication is not None:
            body["replication_role"] = self._replication.role
        if self._sharded:
            body["shards"] = {
                "total": self._engine.n_shards,
                "alive": len(self._engine.alive_shards())}
        return Response(200, _json_bytes(body))

    def traces(self, params=None):
        """``GET /trace``: newest-first listing of retained traces.

        Summaries only (id, endpoint, status, latency); fetch one by id
        via ``GET /trace/<request_id-or-trace_id>``.
        """
        params = params or {}
        try:
            limit = int(params.get("limit", 50))
        except ValueError:
            return self._error(400, None, "limit must be an integer")
        store = self._engine.traces
        entries = store.entries()[:max(limit, 0)]
        body = {
            "traces": [{
                "request_id": e["request_id"],
                "trace_id": e["trace_id"],
                "endpoint": e["endpoint"],
                "status": e["status"],
                "seconds": e["seconds"],
                "sampled": e["sampled"],
                "unix_time": e["unix_time"],
            } for e in entries],
            "store": store.stats(),
        }
        self._count("trace", 200)
        return Response(200, _json_bytes(body))

    def trace(self, key, params=None):
        """``GET /trace/<id>``: one retained trace, by request or trace
        id.  ``?format=chrome`` answers Chrome ``trace_event`` JSON
        (loadable in about:tracing / Perfetto) instead of the raw span
        tree."""
        fmt = (params or {}).get("format", "json")
        if fmt not in ("json", "chrome"):
            return self._error(400, None, "format must be json or chrome")
        entry = self._engine.traces.get(key)
        if entry is None:
            response = self._error(404, None, "no retained trace %r" % key)
            self._count("trace", 404)
            return response
        self._count("trace", 200)
        if fmt == "chrome":
            return Response(200, _json_bytes(to_chrome_trace(entry)))
        return Response(200, _json_bytes(entry))

    def profile(self, payload):
        """``POST /profile``: ``{"action": "start"|"stop",
        "interval_ms": optional}`` driving the sampling profiler.

        ``start`` is idempotent (409 when already running); ``stop``
        returns the collapsed-stack text (flamegraph.pl format) in the
        ``collapsed`` field.
        """
        if not isinstance(payload, dict):
            return self._error(400, None, "body must be a JSON object")
        action = payload.get("action")
        if action == "start":
            interval = None
            if payload.get("interval_ms") is not None:
                try:
                    interval = float(payload["interval_ms"]) / 1000.0
                except (TypeError, ValueError):
                    return self._error(400, None,
                                       "interval_ms must be a number")
                if interval <= 0:
                    return self._error(400, None,
                                       "interval_ms must be positive")
            if not self._profiler.start(interval=interval):
                return self._error(409, None, "profiler already running")
            self._count("profile", 200)
            return Response(200, _json_bytes(
                {"status": "started", "profile": self._profiler.stats()}))
        if action == "stop":
            if not self._profiler.running:
                return self._error(409, None, "profiler is not running")
            collapsed = self._profiler.stop()
            self._count("profile", 200)
            return Response(200, _json_bytes(
                {"status": "stopped", "collapsed": collapsed,
                 "profile": self._profiler.stats()}))
        return self._error(400, None, "action must be start or stop")

    def profile_status(self):
        """``GET /profile``: sampler state (and collapsed stacks once
        stopped)."""
        body = {"profile": self._profiler.stats()}
        if not self._profiler.running:
            collapsed = self._profiler.collapsed()
            if collapsed:
                body["collapsed"] = collapsed
        self._count("profile", 200)
        return Response(200, _json_bytes(body))

    # -- streaming ingest + live feed --------------------------------------------------

    def ingest(self, payload):
        """``POST /ingest``: one batch of points into one series.

        Body: ``{"series": ..., "timestamps": [...], "values": [...]}``
        (or ``"points": [[t, v], ...]``), optional ``"tenant"``.
        Backpressure answers 429 with ``Retry-After`` — the client
        must back off and resend; admission control is bypassed (the
        ingest queue *is* the bounded buffer).
        """
        rejected = self._reject_standby_write("ingest")
        if rejected is not None:
            return rejected
        parsed = self._parse_batch(payload)
        if isinstance(parsed, Response):
            self._count("ingest", parsed.status)
            return parsed
        series, t, v, tenant = parsed
        try:
            ack = self._ingest.submit(series, t, v, tenant=tenant)
        except IngestBackpressureError as exc:
            self._count("ingest", 429)
            response = self._error(429, None, str(exc))
            response.headers["Retry-After"] = str(exc.retry_after)
            return response
        except ShardDownError as exc:
            self._count("ingest", 503)
            response = self._error(503, None, str(exc))
            response.headers["Retry-After"] = str(
                self._config.retry_after_seconds)
            return response
        except (SeriesNotFoundError, ValueError) as exc:
            self._count("ingest", 400)
            return self._error(400, None, str(exc))
        self._count("ingest", 200)
        body = dict(ack)
        body["series"] = series
        return Response(200, _json_bytes(body))

    def ingest_stream(self, raw):
        """``POST /ingest/stream``: line-delimited batches (NDJSON).

        Each line is one ``/ingest`` body; the response carries one
        result per line (ack or error) plus totals.  The whole request
        answers 429 only when *every* line was shed, so a partially
        accepted stream still returns its per-line outcomes.
        """
        rejected = self._reject_standby_write("ingest_stream")
        if rejected is not None:
            return rejected
        results = []
        accepted = shed = errors = 0
        retry_after = self._config.retry_after_seconds
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                errors += 1
                results.append({"status": 400,
                                "error": "line is not JSON"})
                continue
            parsed = self._parse_batch(payload)
            if isinstance(parsed, Response):
                errors += 1
                results.append({"status": parsed.status,
                                "error": json.loads(
                                    parsed.body).get("error")})
                continue
            series, t, v, tenant = parsed
            try:
                ack = self._ingest.submit(series, t, v, tenant=tenant)
            except IngestBackpressureError as exc:
                shed += 1
                retry_after = max(retry_after, exc.retry_after)
                results.append({"status": 429, "error": str(exc)})
                continue
            except ShardDownError as exc:
                errors += 1
                results.append({"status": 503, "error": str(exc)})
                continue
            except (SeriesNotFoundError, ValueError) as exc:
                errors += 1
                results.append({"status": 400, "error": str(exc)})
                continue
            accepted += ack["accepted"]
            results.append({"status": 200, "accepted": ack["accepted"]})
        body = {"results": results, "accepted_points": accepted,
                "shed": shed, "errors": errors}
        if results and shed == len(results):
            self._count("ingest_stream", 429)
            response = Response(429, _json_bytes(body))
            response.headers["Retry-After"] = str(retry_after)
            return response
        self._count("ingest_stream", 200)
        return Response(200, _json_bytes(body))

    def _parse_batch(self, payload):
        """``(series, timestamps, values, tenant)`` or a 400 Response."""
        if not isinstance(payload, dict) or not payload.get("series"):
            return self._error(400, None, "body must be a JSON object "
                                          "with a 'series' field")
        series = str(payload["series"])
        tenant = str(payload.get("tenant", "default"))
        if "points" in payload:
            points = payload["points"]
            if not isinstance(points, list) or not points:
                return self._error(400, None,
                                   "'points' must be a non-empty list")
            try:
                t = [int(p[0]) for p in points]
                v = [float(p[1]) for p in points]
            except (TypeError, ValueError, IndexError):
                return self._error(400, None,
                                   "'points' must be [t, v] pairs")
        else:
            try:
                t = [int(x) for x in payload.get("timestamps", ())]
                v = [float(x) for x in payload.get("values", ())]
            except (TypeError, ValueError):
                return self._error(400, None, "timestamps/values must "
                                              "be numeric arrays")
            if not t or len(t) != len(v):
                return self._error(400, None, "timestamps/values must "
                                              "be equal-length and "
                                              "non-empty")
        return series, t, v, tenant

    def live(self, params):
        """``GET /live``: long-poll for span deltas past a cursor.

        Params: ``series`` (required), ``cursor`` (0 = from now),
        ``timeout_ms`` (long-poll wait, default
        ``live_poll_seconds``), ``span`` (optional cell width: the
        response then carries freshly computed M4 spans over the
        changed ranges, grid-aligned so they splice byte-identically
        into any chart on the same grid).
        """
        series = params.get("series")
        if not series:
            return self._error(400, None, "missing 'series' parameter")
        try:
            cursor = int(params.get("cursor", 0))
            span = int(params["span"]) if params.get("span") else None
        except ValueError:
            return self._error(400, None,
                               "cursor/span must be integers")
        if span is not None and span <= 0:
            return self._error(400, None, "span must be positive")
        timeout = self._live_timeout(params.get("timeout_ms"))
        try:
            body = self.live_delta(series, cursor, timeout, span=span)
        except ServerOverloadedError as exc:
            self._count("live", 503)
            response = self._error(503, None, str(exc))
            response.headers["Retry-After"] = str(exc.retry_after)
            return response
        self._count("live", 200)
        return Response(200, _json_bytes(body))

    def live_delta(self, series, cursor, timeout, span=None):
        """One long-poll step (shared by ``/live`` JSON and SSE).

        Blocks up to ``timeout`` seconds for the series to move past
        ``cursor``; returns the JSON-able delta document.  Raises
        :class:`ServerOverloadedError` past the subscriber cap.
        """
        with self._live_feed.subscriber():
            head, ranges, reset = self._live_feed.wait(series, cursor,
                                                       timeout)
        body = {"series": series, "cursor": head,
                "ranges": [[int(lo), int(hi)] for lo, hi in ranges],
                "reset": bool(reset)}
        if span is not None and ranges:
            body["span"] = span
            body["deltas"] = self.delta_spans(series, ranges, span)
        return body

    def delta_spans(self, series, ranges, span):
        """Grid-aligned M4 spans over each changed range (sharded:
        computed on the owning shard; see :func:`compute_delta_spans`
        for the grid contract)."""
        if self._sharded:
            try:
                return self._engine.delta_spans(series, ranges, span)
            except ShardDownError as exc:
                return [{"t_qs": int(lo), "t_qe": int(hi),
                         "error": str(exc)} for lo, hi in ranges]
        return compute_delta_spans(self._engine, series, ranges, span)

    def _live_timeout(self, timeout_ms):
        """The long-poll wait: default ``live_poll_seconds``, capped
        by ``max_timeout_seconds`` (0 = non-blocking peek)."""
        if timeout_ms is None:
            return self._config.live_poll_seconds
        try:
            seconds = float(timeout_ms) / 1000.0
        except (TypeError, ValueError):
            return self._config.live_poll_seconds
        if seconds < 0:
            return self._config.live_poll_seconds
        return min(seconds, self._config.max_timeout_seconds)

    # -- replication -------------------------------------------------------------------

    def _reject_standby_write(self, endpoint):
        """A 409 redirect-on-write response when this node is a
        standby; None when writes are allowed.  The body carries the
        advertised primary URL (when known) and the ``Location``
        header mirrors it — urllib will not auto-follow a redirected
        POST, so :class:`ReproClient` follows the JSON field
        explicitly."""
        if self._replication is None \
                or self._replication.role != "standby":
            return None
        primary = self._replication.applier.primary_url \
            if self._replication.applier is not None else None
        self._count(endpoint, 409)
        self._metrics.counter("replication_write_redirects_total").inc()
        response = Response(409, _json_bytes(
            {"error": "this node is a standby replica; writes go to "
                      "the primary",
             "role": "standby", "primary": primary}))
        if primary:
            response.headers["Location"] = primary
        return response

    def replicate(self, raw):
        """``POST /replicate``: one shipped frame batch (binary body).

        Protocol replies (``ok`` / ``resync`` / ``frozen``) all answer
        HTTP 200 — the shipper reads ``state`` from the JSON body;
        non-200 is reserved for malformed bodies, which the shipper
        treats as transport errors and retries."""
        if self._replication is None:
            self._count("replicate", 200)
            return Response(200, _json_bytes(
                {"state": "frozen",
                 "error": "replication not configured on this node"}))
        try:
            reply = self._replication.apply(raw)
        except ReplicationError as exc:
            self._count("replicate", 400)
            return self._error(400, None, str(exc))
        self._count("replicate", 200)
        return Response(200, _json_bytes(reply))

    def replication_status(self):
        """``GET /replication``: role, lag, replicas, lease (inline)."""
        self._count("replication", 200)
        if self._replication is None:
            return Response(200, _json_bytes({"role": "none"}))
        return Response(200, _json_bytes(self._replication.status()))

    def replication_fingerprint(self):
        """``GET /replication/fingerprint``: per-series content hashes
        (comparable across nodes; used by the anti-entropy sweep)."""
        from ..replication import content_fingerprint
        self._count("replication_fingerprint", 200)
        return Response(200, _json_bytes(
            {"fingerprint": content_fingerprint(self._engine)}))

    def promote(self):
        """``POST /replication/promote``: standby → writable primary."""
        if self._replication is None:
            self._count("promote", 409)
            return self._error(409, None,
                               "replication not configured on this node")
        status = self._replication.promote(reason="manual")
        self._count("promote", 200)
        return Response(200, _json_bytes(status))

    def replication_sweep(self):
        """``POST /replication/sweep``: one anti-entropy pass (primary
        only); answers the repair report."""
        if self._replication is None:
            self._count("sweep", 409)
            return self._error(409, None,
                               "replication not configured on this node")
        try:
            report = self._replication.sweep()
        except ReplicationError as exc:
            self._count("sweep", 409)
            return self._error(409, None, str(exc))
        self._count("sweep", 200)
        return Response(200, _json_bytes(report))

    # -- admission plumbing ------------------------------------------------------------

    def _trace_context(self, headers):
        """The request's trace context: the client's ``traceparent``
        when present and valid, else a server-minted unsampled one."""
        ctx = parse_traceparent((headers or {}).get("traceparent"))
        if ctx is None:
            ctx = parse_traceparent(make_traceparent(sampled=False))
        return ctx

    def _admit(self, endpoint, rid, fn, timeout_ms=None, trace=None):
        deadline = Deadline(self._timeout_seconds(timeout_ms))
        started = time.perf_counter()
        root = self._tracer.root_span(
            "request", endpoint=endpoint, request_id=rid,
            trace_id=trace.trace_id if trace is not None else None)
        job = shed = None
        with root:
            try:
                job = self._admission.submit(
                    fn, deadline=deadline, request_id=rid,
                    span=root if self._tracer.enabled else None)
            except ServerOverloadedError as exc:
                shed = exc
            if job is not None:
                # Fulfilment is guaranteed: run, queued-expiry or drain.
                job.wait()
                if job.finished_at is not None:
                    # Worker -> submitter hand-off: the gap between the
                    # job being fulfilled and this thread resuming.
                    now = time.perf_counter()
                    self._metrics.histogram("server_handoff_seconds") \
                        .observe(max(now - job.finished_at, 0.0))
                    self._tracer.timed_span(
                        "server.handoff", job.finished_at, now,
                        parent=root)
        if shed is not None:
            response = self._error(503, rid, str(shed))
            response.headers["Retry-After"] = str(shed.retry_after)
            return self._finish(endpoint, rid, started, response,
                                trace=trace, root=root)
        if job.error is not None:
            return self._finish(endpoint, rid, started,
                                self._map_error(rid, job.error),
                                trace=trace, root=root)
        response = job.result
        response.headers.setdefault("X-Repro-Request-Id", rid)
        return self._finish(endpoint, rid, started, response,
                            trace=trace, root=root)

    def _finish(self, endpoint, rid, started, response, trace=None,
                root=None):
        seconds = time.perf_counter() - started
        self._metrics.histogram("server_request_seconds",
                                endpoint=endpoint).observe(seconds)
        self._count(endpoint, response.status)
        response.headers.setdefault("X-Repro-Request-Id", rid or "-")
        if trace is not None:
            response.headers.setdefault("X-Repro-Trace-Id",
                                        trace.trace_id)
            if root is not None and self._tracer.enabled:
                self._engine.traces.record(
                    root, trace.trace_id, rid, endpoint,
                    response.status, sampled=trace.sampled)
        return response

    def _count(self, endpoint, status):
        self._metrics.counter("server_requests_total", endpoint=endpoint,
                              status=str(status)).inc()

    def _map_error(self, rid, error):
        if isinstance(error, DeadlineExceededError):
            return self._error(504, rid, str(error))
        if isinstance(error, ShardDownError):
            # Strict mode (or a write) against a dead shard: the data
            # is temporarily unavailable, not gone — 503 + Retry-After
            # so clients back off until the operator restarts.
            response = self._error(503, rid, str(error))
            response.headers["Retry-After"] = str(
                self._config.retry_after_seconds)
            return response
        if isinstance(error, (QueryError, SeriesNotFoundError,
                              ValueError)):
            return self._error(400, rid, str(error))
        if isinstance(error, ReproError):
            return self._error(500, rid, str(error))
        return self._error(500, rid, "%s: %s"
                           % (type(error).__name__, error))

    def _error(self, status, rid, message):
        return Response(status, _json_bytes({"error": message,
                                             "request_id": rid}))

    def _timeout_seconds(self, timeout_ms):
        if timeout_ms is None:
            return self._config.default_timeout_seconds
        try:
            seconds = float(timeout_ms) / 1000.0
        except (TypeError, ValueError):
            return self._config.default_timeout_seconds
        if seconds <= 0:
            return self._config.default_timeout_seconds
        return min(seconds, self._config.max_timeout_seconds)

    def _next_id(self):
        with self._id_lock:
            return "r%06d" % next(self._ids)

    def _strict(self, params):
        """Per-request strictness: ``strict`` param overrides config."""
        value = params.get("strict")
        if value is None:
            return self._config.strict
        if isinstance(value, bool):
            return value
        return str(value).lower() in ("1", "true", "yes", "on")

    def _request_executor(self, payload):
        """The shared executor, or a strict one for this request."""
        if self._strict(payload) and not self._config.strict:
            return Executor(self._engine, degraded=False)
        return self._executor

    def _debug_sleep(self, params):
        """Seconds of test-only artificial work (0 unless enabled)."""
        if not self._config.debug_hooks:
            return 0.0
        try:
            return max(float(params.get("sleep_ms", 0)) / 1000.0, 0.0)
        except (TypeError, ValueError):
            return 0.0

    @staticmethod
    def _sleep_checked(seconds):
        """Sleep in slices so the request's deadline still cancels it."""
        end = time.monotonic() + seconds
        while True:
            check_deadline()
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.01))


def compute_delta_spans(engine, series, ranges, span):
    """Grid-aligned M4 spans over each changed range of ``series``.

    Cells are computed on the absolute ``span``-width grid — the same
    cell argument as the tile cache — so a client chart on that grid
    can splice them in and stay byte-identical to a full refetch.  A
    range the engine cannot answer yet (e.g. memtable racing a flush)
    reports an ``error`` for that delta instead of failing the poll.

    Module-level (not a service method) because the shard worker runs
    it against its local engine for routed ``/live`` deltas.
    """
    from ..core.m4lsm import M4LSMOperator
    if getattr(engine, "tile_cache", None) is not None:
        from ..core.tiles import TiledM4Operator
        operator = TiledM4Operator(engine)
    else:
        operator = M4LSMOperator(engine)
    deltas = []
    for lo, hi in ranges:
        lo_g = (int(lo) // span) * span
        hi_g = -(-int(hi) // span) * span
        delta = {"t_qs": lo_g, "t_qe": hi_g}
        try:
            result = operator.query(series, lo_g, hi_g,
                                    (hi_g - lo_g) // span)
            delta["spans"] = _spans_as_json(result)
            if result.degraded:
                delta["skipped_ranges"] = [
                    [int(s), int(e)] for s, e in result.skipped]
        except ReproError as exc:
            delta["error"] = str(exc)
        deltas.append(delta)
    return deltas


def _json_bytes(obj):
    return json.dumps(obj, sort_keys=True).encode("utf-8")
