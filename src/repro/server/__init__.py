"""repro.server — the network query service over the storage engine.

Four pieces, stdlib-only (``http.server`` + ``urllib`` + the engine):

* :mod:`repro.server.admission` — the bounded admission queue and
  worker pool: load shedding (503 + ``Retry-After``) when the queue is
  full, per-request deadlines enforced while queued *and* while
  executing (cooperative cancellation through the chunk pipeline);
* :mod:`repro.server.service` — transport-independent request
  execution: SQL queries, M4 chart renders, the observability
  snapshot, health; every response carries a request id and lands in
  the per-endpoint latency histograms;
* :mod:`repro.server.http` — the ``ThreadingHTTPServer`` front end
  (``POST /query``, ``GET /render``, ``GET /series``, ``GET /stats``,
  ``GET /healthz``) with graceful drain-then-close shutdown;
* :mod:`repro.server.client` / :mod:`repro.server.workload` — the
  urllib client and the seeded pan/zoom session load generator
  (closed- and open-loop).

See README.md § Serving and DESIGN.md § 8 for the design.
"""

from .admission import AdmissionController, Job
from .client import ClientResponse, ReproClient
from .http import ReproServer, ServerHandle, start_server
from .service import QueryService, Response, ServerConfig
from .workload import (
    SessionWorkload,
    WorkloadReport,
    zoom_pan_session,
)

__all__ = [
    "AdmissionController",
    "ClientResponse",
    "Job",
    "QueryService",
    "ReproClient",
    "ReproServer",
    "Response",
    "ServerConfig",
    "ServerHandle",
    "SessionWorkload",
    "WorkloadReport",
    "start_server",
    "zoom_pan_session",
]
