"""Seeded dashboard-session workloads and the load-test runner.

A *session* models what the paper's interactive-visualization story
actually produces at a server: a user opens the full range, zooms in a
couple of levels around some focus point, pans sideways at the deep
level, then zooms back out.  :func:`zoom_pan_session` generates that
viewport sequence deterministically from a seeded RNG (the same
trajectory logic as ``benchmarks/test_interactive_zoom.py``, made
per-user random), and every viewport becomes one M4 query over the
wire.

Two driving modes, the standard pair from load-testing practice:

* **closed-loop** — N users, each issuing its next request only after
  the previous one returns.  Measures capacity under think-time-free
  users; offered load self-limits to server speed.
* **open-loop** — a fixed arrival rate, independent of server speed.
  This is the mode that exposes overload behaviour: when the rate
  exceeds capacity the admission queue fills, requests shed with 503,
  and the latency of *accepted* requests must stay bounded by the
  deadline (the acceptance criterion of a load-shedding design).

Latencies are measured from the *scheduled* arrival in open-loop mode
(so coordinated omission cannot hide queueing delay) and from the
request start in closed-loop mode.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import threading
import time

from .client import ReproClient


def zoom_pan_session(t_qs, t_qe, rng, zoom_levels=2, pans=6,
                     zoom_factor=4):
    """One user's viewport sequence over ``[t_qs, t_qe)``.

    Returns a list of ``(start, end)`` half-open viewports: overview,
    ``zoom_levels`` zoom-ins around an rng-chosen focus, ``pans``
    half-window pans at the deepest level, then the overview again
    (zoom-out).  Deterministic for a given rng state.
    """
    t_qs, t_qe = int(t_qs), int(t_qe)
    duration = t_qe - t_qs
    if duration <= 0:
        raise ValueError("empty time range for a session")
    sequence = [(t_qs, t_qe)]
    window = duration
    start = t_qs
    for _ in range(max(zoom_levels, 0)):
        window = max(window // zoom_factor, 1)
        focus = t_qs + int(rng.random() * max(duration - window, 1))
        start = min(max(focus, t_qs), t_qe - window)
        sequence.append((start, start + window))
    step = max(window // 2, 1)
    for _ in range(max(pans, 0)):
        start = min(start + step, max(t_qe - window, t_qs))
        sequence.append((start, start + window))
    sequence.append((t_qs, t_qe))
    return sequence


@dataclasses.dataclass
class WorkloadReport:
    """Outcome of one workload run."""

    mode: str
    users: int
    rate: float            # requests/s offered (open-loop; 0 = closed)
    duration_seconds: float
    total: int = 0
    ok: int = 0
    shed: int = 0          # 503: admission queue full
    timeouts: int = 0      # 504: deadline exceeded
    errors: int = 0        # anything else (transport, 4xx/5xx)
    latencies: list = dataclasses.field(default_factory=list)
    #: per accepted request: {"latency", "request_id", "trace_id",
    #: "sampled"} — the join key back to the server's /trace store and
    #: slow-query log.
    samples: list = dataclasses.field(default_factory=list)

    @property
    def throughput(self):
        """Completed (200) requests per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.ok / self.duration_seconds

    @property
    def shed_rate(self):
        """Fraction of requests answered 503."""
        return self.shed / self.total if self.total else 0.0

    def percentile(self, q):
        """Nearest-rank percentile of accepted-request latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(int(q * len(ordered) + 0.5), 1)
        return ordered[min(rank, len(ordered)) - 1]

    def slowest(self, n=5):
        """The ``n`` slowest accepted samples, with their server-side
        request/trace ids (the join key for ``GET /trace/<id>``)."""
        return sorted(self.samples, key=lambda s: -s["latency"])[:n]

    def as_dict(self):
        """A JSON-able summary row."""
        return {
            "mode": self.mode,
            "users": self.users,
            "rate": self.rate,
            "duration_seconds": self.duration_seconds,
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "throughput": self.throughput,
            "shed_rate": self.shed_rate,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            "slowest": self.slowest(),
        }

    def render(self):
        """One human line, loadgen's stdout format."""
        return ("%s users=%d rate=%s: %d req in %.2fs | %.1f req/s | "
                "ok=%d shed=%d timeout=%d error=%d | "
                "p50=%.3fs p95=%.3fs p99=%.3fs"
                % (self.mode, self.users,
                   ("%.0f/s" % self.rate) if self.rate else "-",
                   self.total, self.duration_seconds, self.throughput,
                   self.ok, self.shed, self.timeouts, self.errors,
                   self.percentile(0.5), self.percentile(0.95),
                   self.percentile(0.99)))


class SessionWorkload:
    """Drive a server with seeded pan/zoom sessions.

    Args:
        base_url: the server to load.
        series: series names to use; discovered via ``GET /series``
            when omitted.
        width: spans per query (the dashboard's pixel width).
        seed: base RNG seed; user ``i`` uses ``seed * 1000 + i`` so
            runs are reproducible and users decorrelated.
        timeout_ms: per-request deadline passed to the server.
        render_every: every n-th viewport issues ``GET /render``
            instead of SQL, mixing both heavy endpoints (0 = never).
        align: snap every viewport to the power-of-two span grid
            (:func:`repro.core.tiles.snap_viewport`) so a tile-cached
            server reuses tiles across the session's pans and zooms.
        trace_every: set the traceparent sampled flag on every n-th
            request (across all users), asking the server to retain
            those traces; 0 never samples.
    """

    def __init__(self, base_url, series=None, width=256, seed=0,
                 timeout_ms=None, client_timeout=30.0, render_every=8,
                 align=False, trace_every=16):
        self._base_url = base_url
        self._series = list(series) if series else None
        self._width = int(width)
        self._seed = int(seed)
        self._timeout_ms = timeout_ms
        self._client_timeout = float(client_timeout)
        self._render_every = int(render_every)
        self._align = bool(align)
        self._trace_every = int(trace_every)
        self._issued = itertools.count(1)
        self._lock = threading.Lock()

    def _client(self):
        return ReproClient(self._base_url, timeout=self._client_timeout)

    def _targets(self):
        """``(name, t_qs, t_qe)`` per usable series."""
        listing = self._client().series()
        targets = []
        for entry in listing:
            if entry["start_time"] is None:
                continue
            if self._series and entry["name"] not in self._series:
                continue
            targets.append((entry["name"], int(entry["start_time"]),
                            int(entry["end_time"]) + 1))
        if not targets:
            raise ValueError("no loaded series to generate load against "
                             "(asked for %r)" % (self._series,))
        return targets

    def _session_ops(self, rng, targets):
        """One session's request closures' arguments as a list."""
        name, t_qs, t_qe = targets[rng.randrange(len(targets))]
        ops = []
        for i, (start, end) in enumerate(
                zoom_pan_session(t_qs, t_qe, rng)):
            if self._align:
                from ..core.tiles import snap_viewport
                start, end = snap_viewport(start, end, self._width)
            if self._render_every and i and i % self._render_every == 0:
                ops.append(("render", name, start, end))
            else:
                ops.append(("query", name, start, end))
        return ops

    def _issue(self, client, op):
        kind, name, start, end = op
        sampled = bool(self._trace_every) and \
            next(self._issued) % self._trace_every == 0
        if kind == "render":
            response = client.render_response(
                name, width=self._width, height=64, fmt="json",
                timeout_ms=self._timeout_ms, sampled=sampled)
        else:
            sql = ("SELECT M4(v) FROM %s WHERE time >= %d AND time < %d "
                   "GROUP BY SPANS(%d)" % (name, start, end, self._width))
            response = client.query_response(
                sql, timeout_ms=self._timeout_ms, sampled=sampled)
        return response, sampled

    def _record(self, report, status, latency, request_id=None,
                trace_id=None, sampled=False):
        with self._lock:
            report.total += 1
            if status == 200:
                report.ok += 1
                report.latencies.append(latency)
                report.samples.append({
                    "latency": latency,
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "sampled": sampled,
                })
            elif status == 503:
                report.shed += 1
            elif status == 504:
                report.timeouts += 1
            else:
                report.errors += 1

    # -- closed loop -------------------------------------------------------------------

    def run_closed(self, users=4, duration=5.0):
        """N think-time-free users issuing sessions back to back."""
        targets = self._targets()
        report = WorkloadReport(mode="closed", users=int(users), rate=0.0,
                                duration_seconds=float(duration))
        stop_at = time.monotonic() + float(duration)

        def user_loop(index):
            rng = random.Random(self._seed * 1000 + index)
            client = self._client()
            while time.monotonic() < stop_at:
                for op in self._session_ops(rng, targets):
                    if time.monotonic() >= stop_at:
                        return
                    started = time.monotonic()
                    request_id = trace_id = None
                    sampled = False
                    try:
                        response, sampled = self._issue(client, op)
                        status = response.status
                        request_id = response.request_id
                        trace_id = response.trace_id
                    except OSError:
                        status = -1
                    self._record(report, status,
                                 time.monotonic() - started,
                                 request_id=request_id,
                                 trace_id=trace_id, sampled=sampled)

        threads = [threading.Thread(target=user_loop, args=(i,),
                                    daemon=True)
                   for i in range(int(users))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return report

    # -- open loop ---------------------------------------------------------------------

    def run_open(self, rate, duration=5.0, users=0):
        """Fixed arrival rate, independent of server speed.

        Each arrival runs in its own thread; latency counts from the
        *scheduled* arrival time, so server-side queueing delay is
        fully visible.  ``users`` only labels the report.
        """
        if rate <= 0:
            raise ValueError("open-loop mode needs a positive rate")
        targets = self._targets()
        report = WorkloadReport(mode="open", users=int(users),
                                rate=float(rate),
                                duration_seconds=float(duration))
        rng = random.Random(self._seed)
        interval = 1.0 / float(rate)
        begin = time.monotonic()
        end = begin + float(duration)
        ops = self._session_ops(rng, targets)
        threads = []
        k = 0
        while True:
            scheduled = begin + k * interval
            if scheduled >= end:
                break
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            op = ops[k % len(ops)]
            if (k + 1) % len(ops) == 0:  # fresh session trajectory
                ops = self._session_ops(rng, targets)

            def fire(op=op, scheduled=scheduled):
                client = self._client()
                request_id = trace_id = None
                sampled = False
                try:
                    response, sampled = self._issue(client, op)
                    status = response.status
                    request_id = response.request_id
                    trace_id = response.trace_id
                except OSError:
                    status = -1
                self._record(report, status,
                             time.monotonic() - scheduled,
                             request_id=request_id,
                             trace_id=trace_id, sampled=sampled)

            thread = threading.Thread(target=fire, daemon=True)
            thread.start()
            threads.append(thread)
            k += 1
        for thread in threads:
            thread.join(timeout=self._client_timeout + 5.0)
        return report

    def run(self, mode="closed", users=4, rate=None, duration=5.0):
        """Dispatch on mode; returns a :class:`WorkloadReport`."""
        if mode == "closed":
            return self.run_closed(users=users, duration=duration)
        if mode == "open":
            if rate is None:
                raise ValueError("open-loop mode needs --rate")
            return self.run_open(rate, duration=duration, users=users)
        raise ValueError("unknown workload mode %r" % mode)
