"""Seeded dashboard-session workloads and the load-test runner.

A *session* models what the paper's interactive-visualization story
actually produces at a server: a user opens the full range, zooms in a
couple of levels around some focus point, pans sideways at the deep
level, then zooms back out.  :func:`zoom_pan_session` generates that
viewport sequence deterministically from a seeded RNG (the same
trajectory logic as ``benchmarks/test_interactive_zoom.py``, made
per-user random), and every viewport becomes one M4 query over the
wire.

Two driving modes, the standard pair from load-testing practice:

* **closed-loop** — N users, each issuing its next request only after
  the previous one returns.  Measures capacity under think-time-free
  users; offered load self-limits to server speed.
* **open-loop** — a fixed arrival rate, independent of server speed.
  This is the mode that exposes overload behaviour: when the rate
  exceeds capacity the admission queue fills, requests shed with 503,
  and the latency of *accepted* requests must stay bounded by the
  deadline (the acceptance criterion of a load-shedding design).

Latencies are measured from the *scheduled* arrival in open-loop mode
(so coordinated omission cannot hide queueing delay) and from the
request start in closed-loop mode.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import threading
import time

from ..backoff import Backoff
from ..errors import (
    IngestBackpressureError,
    ReproError,
    ServerOverloadedError,
)
from .client import ReproClient


def zoom_pan_session(t_qs, t_qe, rng, zoom_levels=2, pans=6,
                     zoom_factor=4):
    """One user's viewport sequence over ``[t_qs, t_qe)``.

    Returns a list of ``(start, end)`` half-open viewports: overview,
    ``zoom_levels`` zoom-ins around an rng-chosen focus, ``pans``
    half-window pans at the deepest level, then the overview again
    (zoom-out).  Deterministic for a given rng state.
    """
    t_qs, t_qe = int(t_qs), int(t_qe)
    duration = t_qe - t_qs
    if duration <= 0:
        raise ValueError("empty time range for a session")
    sequence = [(t_qs, t_qe)]
    window = duration
    start = t_qs
    for _ in range(max(zoom_levels, 0)):
        window = max(window // zoom_factor, 1)
        focus = t_qs + int(rng.random() * max(duration - window, 1))
        start = min(max(focus, t_qs), t_qe - window)
        sequence.append((start, start + window))
    step = max(window // 2, 1)
    for _ in range(max(pans, 0)):
        start = min(start + step, max(t_qe - window, t_qs))
        sequence.append((start, start + window))
    sequence.append((t_qs, t_qe))
    return sequence


@dataclasses.dataclass
class WorkloadReport:
    """Outcome of one workload run."""

    mode: str
    users: int
    rate: float            # requests/s offered (open-loop; 0 = closed)
    duration_seconds: float
    total: int = 0
    ok: int = 0
    shed: int = 0          # 503: admission queue full
    timeouts: int = 0      # 504: deadline exceeded
    errors: int = 0        # anything else (transport, 4xx/5xx)
    ingest_rate: float = 0.0       # offered ingest points/s (0 = none)
    ingest_batches: int = 0        # accepted POST /ingest batches
    ingest_points: int = 0         # accepted points
    ingest_shed: int = 0           # 429: ingest backpressure answers
    ingest_errors: int = 0         # other ingest failures
    failovers: int = 0             # client endpoint switches
    redirects: int = 0             # 409 write redirects followed
    ingest_latencies: list = dataclasses.field(default_factory=list)
    latencies: list = dataclasses.field(default_factory=list)
    #: per accepted request: {"latency", "request_id", "trace_id",
    #: "sampled"} — the join key back to the server's /trace store and
    #: slow-query log.
    samples: list = dataclasses.field(default_factory=list)

    @property
    def throughput(self):
        """Completed (200) requests per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.ok / self.duration_seconds

    @property
    def shed_rate(self):
        """Fraction of requests answered 503."""
        return self.shed / self.total if self.total else 0.0

    def percentile(self, q):
        """Nearest-rank percentile of accepted-request latency."""
        return _percentile(self.latencies, q)

    def ingest_percentile(self, q):
        """Nearest-rank percentile of accepted ingest-ack latency."""
        return _percentile(self.ingest_latencies, q)

    @property
    def ingest_throughput(self):
        """Accepted ingest points per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.ingest_points / self.duration_seconds

    def slowest(self, n=5):
        """The ``n`` slowest accepted samples, with their server-side
        request/trace ids (the join key for ``GET /trace/<id>``)."""
        return sorted(self.samples, key=lambda s: -s["latency"])[:n]

    def as_dict(self):
        """A JSON-able summary row."""
        return {
            "mode": self.mode,
            "users": self.users,
            "rate": self.rate,
            "duration_seconds": self.duration_seconds,
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "throughput": self.throughput,
            "shed_rate": self.shed_rate,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            "ingest_rate": self.ingest_rate,
            "ingest_batches": self.ingest_batches,
            "ingest_points": self.ingest_points,
            "ingest_shed": self.ingest_shed,
            "ingest_errors": self.ingest_errors,
            "failovers": self.failovers,
            "redirects": self.redirects,
            "ingest_throughput": self.ingest_throughput,
            "ingest_ack_p50_seconds": self.ingest_percentile(0.50),
            "ingest_ack_p99_seconds": self.ingest_percentile(0.99),
            "slowest": self.slowest(),
        }

    def render(self):
        """One human line, loadgen's stdout format."""
        line = ("%s users=%d rate=%s: %d req in %.2fs | %.1f req/s | "
                "ok=%d shed=%d timeout=%d error=%d | "
                "p50=%.3fs p95=%.3fs p99=%.3fs"
                % (self.mode, self.users,
                   ("%.0f/s" % self.rate) if self.rate else "-",
                   self.total, self.duration_seconds, self.throughput,
                   self.ok, self.shed, self.timeouts, self.errors,
                   self.percentile(0.5), self.percentile(0.95),
                   self.percentile(0.99)))
        if self.ingest_rate:
            line += (" | ingest %.0f pts/s offered: %d pts in %d "
                     "batches, shed=%d error=%d, ack p99=%.3fs"
                     % (self.ingest_rate, self.ingest_points,
                        self.ingest_batches, self.ingest_shed,
                        self.ingest_errors, self.ingest_percentile(0.99)))
        if self.failovers or self.redirects:
            line += (" | failovers=%d redirects=%d"
                     % (self.failovers, self.redirects))
        return line


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(q * len(ordered) + 0.5), 1)
    return ordered[min(rank, len(ordered)) - 1]


class SessionWorkload:
    """Drive a server with seeded pan/zoom sessions.

    Args:
        base_url: the server to load — a URL, or a list of URLs for
            client-side read failover (the report's ``failovers`` /
            ``redirects`` count the switches).
        series: series names to use; discovered via ``GET /series``
            when omitted.
        width: spans per query (the dashboard's pixel width).
        seed: base RNG seed; user ``i`` uses ``seed * 1000 + i`` so
            runs are reproducible and users decorrelated.
        timeout_ms: per-request deadline passed to the server.
        render_every: every n-th viewport issues ``GET /render``
            instead of SQL, mixing both heavy endpoints (0 = never).
        align: snap every viewport to the power-of-two span grid
            (:func:`repro.core.tiles.snap_viewport`) so a tile-cached
            server reuses tiles across the session's pans and zooms.
        trace_every: set the traceparent sampled flag on every n-th
            request (across all users), asking the server to retain
            those traces; 0 never samples.
        ingest_rate: offered streaming-write rate in points/s (0 =
            read-only).  A background pump thread POSTs tail-append
            batches to ``ingest_series`` for the whole run, so the
            report measures dashboards-while-ingesting; 429 sheds and
            ack latencies land in the ``ingest_*`` report fields.
        ingest_batch: points per ``POST /ingest`` batch.
        ingest_series: the series the pump appends to (kept separate
            from the dashboard series by default so read-side metrics
            stay attributable).
    """

    def __init__(self, base_url, series=None, width=256, seed=0,
                 timeout_ms=None, client_timeout=30.0, render_every=8,
                 align=False, trace_every=16, ingest_rate=0.0,
                 ingest_batch=200, ingest_series="ingest-feed"):
        self._base_url = base_url
        self._series = list(series) if series else None
        self._width = int(width)
        self._seed = int(seed)
        self._timeout_ms = timeout_ms
        self._client_timeout = float(client_timeout)
        self._render_every = int(render_every)
        self._align = bool(align)
        self._trace_every = int(trace_every)
        self._ingest_rate = float(ingest_rate)
        self._ingest_batch = max(int(ingest_batch), 1)
        self._ingest_series = str(ingest_series)
        self._issued = itertools.count(1)
        self._lock = threading.Lock()

    def _client(self):
        return ReproClient(self._base_url, timeout=self._client_timeout)

    def _note_client(self, report, client):
        """Fold one client's failover/redirect counters into the report."""
        with self._lock:
            report.failovers += client.failovers
            report.redirects += client.redirects

    def _targets(self):
        """``(name, t_qs, t_qe)`` per usable series."""
        listing = self._client().series()
        targets = []
        for entry in listing:
            if entry["start_time"] is None:
                continue
            if self._series and entry["name"] not in self._series:
                continue
            targets.append((entry["name"], int(entry["start_time"]),
                            int(entry["end_time"]) + 1))
        if not targets:
            raise ValueError("no loaded series to generate load against "
                             "(asked for %r)" % (self._series,))
        return targets

    def _session_ops(self, rng, targets):
        """One session's request closures' arguments as a list."""
        name, t_qs, t_qe = targets[rng.randrange(len(targets))]
        ops = []
        for i, (start, end) in enumerate(
                zoom_pan_session(t_qs, t_qe, rng)):
            if self._align:
                from ..core.tiles import snap_viewport
                start, end = snap_viewport(start, end, self._width)
            if self._render_every and i and i % self._render_every == 0:
                ops.append(("render", name, start, end))
            else:
                ops.append(("query", name, start, end))
        return ops

    def _issue(self, client, op):
        kind, name, start, end = op
        sampled = bool(self._trace_every) and \
            next(self._issued) % self._trace_every == 0
        if kind == "render":
            response = client.render_response(
                name, width=self._width, height=64, fmt="json",
                timeout_ms=self._timeout_ms, sampled=sampled)
        else:
            sql = ("SELECT M4(v) FROM %s WHERE time >= %d AND time < %d "
                   "GROUP BY SPANS(%d)" % (name, start, end, self._width))
            response = client.query_response(
                sql, timeout_ms=self._timeout_ms, sampled=sampled)
        return response, sampled

    def _record(self, report, status, latency, request_id=None,
                trace_id=None, sampled=False):
        with self._lock:
            report.total += 1
            if status == 200:
                report.ok += 1
                report.latencies.append(latency)
                report.samples.append({
                    "latency": latency,
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "sampled": sampled,
                })
            elif status == 503:
                report.shed += 1
            elif status == 504:
                report.timeouts += 1
            else:
                report.errors += 1

    # -- ingest pump -------------------------------------------------------------------

    def _start_ingest(self, report, duration):
        """Launch the background write pump (None when rate is 0).

        Open-loop in points: batches fire on their offered schedule
        regardless of ack latency, so backpressure shows up as 429
        counts instead of silently slowing the offered load.  The pump
        resumes after the series' current tail so repeated runs against
        one store keep appending rather than rewriting.
        """
        if self._ingest_rate <= 0:
            return None
        report.ingest_rate = self._ingest_rate
        stop_at = time.monotonic() + float(duration)

        def pump():
            client = self._client()
            backoff = Backoff(base=0.05, cap=1.0,
                              rng=random.Random(self._seed ^ 0xBACC0FF))
            rng = random.Random(self._seed ^ 0x16E57)
            t_next = 0
            try:
                for entry in client.series():
                    if entry["name"] == self._ingest_series \
                            and entry["end_time"] is not None:
                        t_next = int(entry["end_time"]) + 1
            except Exception:
                pass  # fresh series; start at 0
            batch = self._ingest_batch
            interval = batch / self._ingest_rate
            begin = time.monotonic()
            k = 0
            value = 100.0
            while True:
                scheduled = begin + k * interval
                if scheduled >= stop_at:
                    self._note_client(report, client)
                    return
                delay = scheduled - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                ts = list(range(t_next, t_next + batch))
                vs = []
                for _ in range(batch):
                    value += rng.gauss(0, 1)
                    vs.append(value)
                t_next += batch
                started = time.monotonic()
                retries_before = client.ingest_retries
                # The shared retry loop: a couple of backoff-paced
                # attempts keep the pump open-loop-ish while riding
                # out brief sheds; an exhausted batch is dropped (the
                # offered schedule marches on regardless).
                try:
                    client.ingest_retry(self._ingest_series, ts, vs,
                                        attempts=3, backoff=backoff)
                    status = 200
                except (IngestBackpressureError,
                        ServerOverloadedError):
                    status = 429
                except (OSError, ReproError):
                    status = -1
                latency = time.monotonic() - started
                with self._lock:
                    report.ingest_shed += \
                        client.ingest_retries - retries_before
                    if status == 200:
                        report.ingest_batches += 1
                        report.ingest_points += batch
                        report.ingest_latencies.append(latency)
                    elif status == 429:
                        report.ingest_shed += 1  # the dropping answer
                    else:
                        report.ingest_errors += 1
                k += 1

        thread = threading.Thread(target=pump, daemon=True,
                                  name="loadgen-ingest-pump")
        thread.start()
        return thread

    # -- closed loop -------------------------------------------------------------------

    def run_closed(self, users=4, duration=5.0):
        """N think-time-free users issuing sessions back to back."""
        targets = self._targets()
        report = WorkloadReport(mode="closed", users=int(users), rate=0.0,
                                duration_seconds=float(duration))
        pump = self._start_ingest(report, duration)
        stop_at = time.monotonic() + float(duration)

        def user_loop(index):
            rng = random.Random(self._seed * 1000 + index)
            client = self._client()
            try:
                while time.monotonic() < stop_at:
                    for op in self._session_ops(rng, targets):
                        if time.monotonic() >= stop_at:
                            return
                        started = time.monotonic()
                        request_id = trace_id = None
                        sampled = False
                        try:
                            response, sampled = self._issue(client, op)
                            status = response.status
                            request_id = response.request_id
                            trace_id = response.trace_id
                        except OSError:
                            status = -1
                        self._record(report, status,
                                     time.monotonic() - started,
                                     request_id=request_id,
                                     trace_id=trace_id, sampled=sampled)
            finally:
                self._note_client(report, client)

        threads = [threading.Thread(target=user_loop, args=(i,),
                                    daemon=True)
                   for i in range(int(users))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if pump is not None:
            pump.join(timeout=self._client_timeout + 5.0)
        return report

    # -- open loop ---------------------------------------------------------------------

    def run_open(self, rate, duration=5.0, users=0):
        """Fixed arrival rate, independent of server speed.

        Each arrival runs in its own thread; latency counts from the
        *scheduled* arrival time, so server-side queueing delay is
        fully visible.  ``users`` only labels the report.
        """
        if rate <= 0:
            raise ValueError("open-loop mode needs a positive rate")
        targets = self._targets()
        report = WorkloadReport(mode="open", users=int(users),
                                rate=float(rate),
                                duration_seconds=float(duration))
        pump = self._start_ingest(report, duration)
        rng = random.Random(self._seed)
        interval = 1.0 / float(rate)
        begin = time.monotonic()
        end = begin + float(duration)
        ops = self._session_ops(rng, targets)
        threads = []
        k = 0
        while True:
            scheduled = begin + k * interval
            if scheduled >= end:
                break
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            op = ops[k % len(ops)]
            if (k + 1) % len(ops) == 0:  # fresh session trajectory
                ops = self._session_ops(rng, targets)

            def fire(op=op, scheduled=scheduled):
                client = self._client()
                request_id = trace_id = None
                sampled = False
                try:
                    response, sampled = self._issue(client, op)
                    status = response.status
                    request_id = response.request_id
                    trace_id = response.trace_id
                except OSError:
                    status = -1
                self._record(report, status,
                             time.monotonic() - scheduled,
                             request_id=request_id,
                             trace_id=trace_id, sampled=sampled)
                self._note_client(report, client)

            thread = threading.Thread(target=fire, daemon=True)
            thread.start()
            threads.append(thread)
            k += 1
        for thread in threads:
            thread.join(timeout=self._client_timeout + 5.0)
        if pump is not None:
            pump.join(timeout=self._client_timeout + 5.0)
        return report

    def run(self, mode="closed", users=4, rate=None, duration=5.0):
        """Dispatch on mode; returns a :class:`WorkloadReport`."""
        if mode == "closed":
            return self.run_closed(users=users, duration=duration)
        if mode == "open":
            if rate is None:
                raise ValueError("open-loop mode needs --rate")
            return self.run_open(rate, duration=duration, users=users)
        raise ValueError("unknown workload mode %r" % mode)
