"""The HTTP front end: routing, serialization, graceful shutdown.

A :class:`ReproServer` is a stdlib ``ThreadingHTTPServer`` — one
handler thread per connection — but handler threads do no engine work:
they parse the request, hand a closure to the service's admission
controller, and block until the job is fulfilled.  Concurrency is
therefore governed by the worker pool + bounded queue, not by the
accept loop, which is what keeps overload behaviour shaped (503s with
``Retry-After``) instead of unbounded thread pile-ups.

Endpoints::

    POST /query    {"sql": ..., "timeout_ms": ...}  -> JSON rows
    GET  /render?series=..&width=..&height=..&format=json|pbm
    GET  /series   registered series + time ranges
    GET  /stats    observability snapshot (?format=prometheus for text)
    GET  /healthz  liveness and load signals
    GET  /trace    retained request traces (newest first)
    GET  /trace/<id>  one trace (?format=chrome for trace_event JSON)
    GET  /profile  sampling profiler status
    POST /profile  {"action": "start"|"stop", "interval_ms": ...}
    POST /ingest   {"series": .., "timestamps": [..], "values": [..]}
                   (backpressure answers 429 with Retry-After)
    POST /ingest/stream   NDJSON: one /ingest body per line
    GET  /live?series=..&cursor=..&timeout_ms=..&span=..
                   long-poll span deltas; &mode=sse streams
                   text/event-stream events instead
    POST /replicate   binary frame batch from a primary's shipper
    GET  /replication             role / lag / replica status
    GET  /replication/fingerprint per-series content fingerprints
    POST /replication/promote     turn this standby into a primary
    POST /replication/sweep       anti-entropy pass (primary only)

``query`` and ``render`` accept a W3C ``traceparent`` request header;
the response carries ``X-Repro-Trace-Id`` so clients can fetch their
own trace back.

Shutdown (:meth:`ServerHandle.stop`) is a strict sequence: stop
accepting, drain the admission queue (in-flight requests complete and
are answered), close the listening socket, then flush the engine and
close it — which persists ``obs.json`` — so a drained server never
loses buffered writes or tears its observability snapshot.
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..errors import ServerOverloadedError
from .service import QueryService, Response, ServerConfig


class _Handler(BaseHTTPRequestHandler):
    """Thin request handler: parse, dispatch to the service, serialize."""

    server_version = "repro-server"
    protocol_version = "HTTP/1.1"

    def do_GET(self):
        with self.server.track_request():
            split = urlsplit(self.path)
            params = dict(parse_qsl(split.query))
            service = self.server.service
            if split.path == "/render":
                self._send(service.render(params,
                                          headers=self._trace_headers()))
            elif split.path == "/series":
                self._send(service.series())
            elif split.path == "/stats":
                self._send(service.stats(params))
            elif split.path == "/healthz":
                self._send(service.healthz())
            elif split.path == "/trace":
                self._send(service.traces(params))
            elif split.path.startswith("/trace/"):
                key = split.path[len("/trace/"):]
                self._send(service.trace(key, params))
            elif split.path == "/profile":
                self._send(service.profile_status())
            elif split.path == "/replication":
                self._send(service.replication_status())
            elif split.path == "/replication/fingerprint":
                self._send(service.replication_fingerprint())
            elif split.path == "/live":
                accept = self.headers.get("Accept", "")
                if params.get("mode") == "sse" \
                        or "text/event-stream" in accept:
                    self._serve_sse(service, params)
                else:
                    self._send(service.live(params))
            else:
                self._send(Response(404,
                                    b'{"error": "no such endpoint"}'))

    def do_POST(self):
        with self.server.track_request():
            split = urlsplit(self.path)
            if split.path not in ("/query", "/profile", "/ingest",
                                  "/ingest/stream", "/replicate",
                                  "/replication/promote",
                                  "/replication/sweep"):
                self._send(Response(404,
                                    b'{"error": "no such endpoint"}'))
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length)
            except (ValueError, TypeError):
                self._send(Response(400,
                                    b'{"error": "bad Content-Length"}'))
                return
            service = self.server.service
            if split.path == "/replicate":
                # Binary frame batch — never JSON-parsed.
                self._send(service.replicate(raw))
                return
            if split.path == "/replication/promote":
                self._send(service.promote())
                return
            if split.path == "/replication/sweep":
                self._send(service.replication_sweep())
                return
            if split.path == "/ingest/stream":
                # NDJSON: parsed line by line by the service, so one
                # bad line answers per-line, not a whole-request 400.
                self._send(service.ingest_stream(
                    raw.decode("utf-8", "replace")))
                return
            try:
                payload = json.loads(raw or b"{}")
            except ValueError:
                self._send(Response(400,
                                    b'{"error": "body is not JSON"}'))
                return
            if split.path == "/profile":
                self._send(service.profile(payload))
                return
            if split.path == "/ingest":
                self._send(service.ingest(payload))
                return
            self._send(service.query(payload,
                                     headers=self._trace_headers()))

    def _serve_sse(self, service, params):
        """``GET /live?mode=sse``: push deltas until duration elapses.

        The connection is closed at the end (no Content-Length on a
        stream); a quiet period emits a keep-alive comment so proxies
        and clients can distinguish idle from dead.
        """
        series = params.get("series")
        if not series:
            self._send(Response(400,
                                b'{"error": "missing series parameter"}'))
            return
        try:
            cursor = int(params.get("cursor", 0))
            duration = float(params.get("duration", 30.0))
            span = int(params["span"]) if params.get("span") else None
        except ValueError:
            self._send(Response(
                400, b'{"error": "cursor/duration/span malformed"}'))
            return
        duration = min(max(duration, 0.0), 300.0)
        feed = service.live_feed
        try:
            subscription = feed.subscriber()
            subscription.__enter__()
        except ServerOverloadedError as exc:
            response = Response(503, b'{"error": "live feed at max '
                                     b'subscribers"}')
            response.headers["Retry-After"] = str(exc.retry_after)
            self._send(response)
            return
        try:
            self.close_connection = True
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            end = time.monotonic() + duration
            while not feed.closed:
                step = min(end - time.monotonic(),
                           service.config.live_poll_seconds)
                if step <= 0:
                    break
                head, ranges, reset = feed.wait(series, cursor, step)
                if head <= cursor and not reset:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                body = {"series": series, "cursor": head,
                        "ranges": [[int(lo), int(hi)]
                                   for lo, hi in ranges],
                        "reset": bool(reset)}
                if span is not None and ranges:
                    body["span"] = span
                    body["deltas"] = service.delta_spans(
                        series, ranges, span)
                cursor = head
                self.wfile.write(b"data: "
                                 + json.dumps(body,
                                              sort_keys=True).encode()
                                 + b"\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        finally:
            subscription.__exit__(None, None, None)

    def _trace_headers(self):
        """The request headers the service cares about (lower-cased)."""
        traceparent = self.headers.get("traceparent")
        return {"traceparent": traceparent} if traceparent else {}

    def _send(self, response):
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to answer

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if not self.server.service.config.quiet:
            sys.stderr.write("[repro-server] %s %s\n"
                             % (self.address_string(), format % args))


class ReproServer(ThreadingHTTPServer):
    """The listening socket + accept loop around one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service, address=None):
        self.service = service
        config = service.config
        self._active_requests = 0
        self._active_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        if address is None:
            address = (config.host, config.port)
        super().__init__(address, _Handler)

    @contextlib.contextmanager
    def track_request(self):
        """Count a request from dispatch through response write.

        Handler threads are daemons (a stalled client must not be able
        to hold shutdown hostage), so stdlib ``server_close`` does not
        join them; this counter is what lets :meth:`wait_idle` sequence
        "every answered request is fully written and observed" before
        the engine snapshots ``obs.json``.
        """
        with self._active_lock:
            self._active_requests += 1
            self._idle.clear()
        try:
            yield
        finally:
            with self._active_lock:
                self._active_requests -= 1
                if self._active_requests == 0:
                    self._idle.set()

    def wait_idle(self, timeout=10.0):
        """Block until no request is mid-dispatch (True on success)."""
        return self._idle.wait(timeout)


class ServerHandle:
    """A running server: its thread, address and graceful stop."""

    def __init__(self, server, own_engine=False):
        self._server = server
        self._own_engine = own_engine
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="repro-server-accept",
                                        daemon=True)
        self._stopped = False
        self._lock = threading.Lock()
        self._thread.start()

    @property
    def service(self):
        """The underlying :class:`QueryService`."""
        return self._server.service

    @property
    def address(self):
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        return self._server.server_address[:2]

    @property
    def url(self):
        """Base URL clients should use."""
        host, port = self.address
        return "http://%s:%d" % (host, port)

    def stop(self):
        """Graceful shutdown: drain in-flight requests, then close.

        Idempotent.  When the handle owns the engine (the CLI path),
        the engine is flushed and closed last, persisting ``obs.json``.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._server.shutdown()           # 1. stop accepting
        self.service.shutdown()           # 2. drain admitted jobs
        self._server.wait_idle()          # 3. responses written + observed
        self._server.server_close()       # 4. release the socket
        self._thread.join(timeout=10)
        if self._own_engine:
            engine = self.service.engine  # 5. flush WAL state + obs.json
            engine.flush_all()
            engine.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


def start_server(engine, config=None, own_engine=False):
    """Start serving ``engine`` in a background thread.

    Pass ``port=0`` in the config for an ephemeral port (tests); read
    the actual one back from ``handle.address``.  The engine must be
    flushed (``flush_all``) before queries will succeed; the caller
    keeps ownership unless ``own_engine`` is set.
    """
    config = config if config is not None else ServerConfig()
    service = QueryService(engine, config)
    server = ReproServer(service)
    return ServerHandle(server, own_engine=own_engine)
