"""A small urllib-based client for the query service.

Two layers: :meth:`ReproClient.request` returns the raw
:class:`ClientResponse` (status + headers + body) without raising — the
load generator needs to *count* 503s and 504s, not die on them — while
the typed helpers (:meth:`query`, :meth:`render`, ...) raise
:class:`~repro.errors.ServerError` subclasses on non-200 so scripts get
clean failures.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

from ..errors import (
    IngestBackpressureError,
    ServerError,
    ServerOverloadedError,
)
from ..obs import make_traceparent


class ClientResponse:
    """One HTTP exchange: status, headers, raw body."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status, headers, body):
        self.status = int(status)
        self.headers = dict(headers)
        self.body = body

    @property
    def ok(self):
        """True for a 2xx status."""
        return 200 <= self.status < 300

    def json(self):
        """The body decoded as JSON."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def request_id(self):
        """The server-assigned request id, when present."""
        return self.headers.get("X-Repro-Request-Id")

    @property
    def trace_id(self):
        """The request's trace id, when present (join key for
        ``GET /trace/<id>`` and the slow-query log)."""
        return self.headers.get("X-Repro-Trace-Id")


class ReproClient:
    """Typed access to a running :class:`~repro.server.http.ReproServer`.

    Args:
        base_url: the server root, e.g. ``"http://127.0.0.1:8731"``
            (a trailing slash is stripped).
        timeout: socket timeout in seconds for every request.

    The typed helpers (:meth:`query`, :meth:`render`, :meth:`series`,
    :meth:`stats`, :meth:`healthz`) raise
    :class:`~repro.errors.ServerOverloadedError` on 503 and
    :class:`~repro.errors.ServerError` on any other non-2xx status;
    transport failures raise ``urllib.error.URLError`` / ``OSError``.

    >>> # client = ReproClient("http://127.0.0.1:8731")
    >>> # client.query("SELECT M4(s) FROM x GROUP BY SPANS(100)")
    """

    def __init__(self, base_url, timeout=30.0):
        self._base = base_url.rstrip("/")
        self._timeout = float(timeout)

    # -- raw layer ---------------------------------------------------------------------

    def request(self, method, path, body=None, headers=None):
        """One exchange; HTTP error statuses return, they don't raise.

        Transport failures (connection refused, socket timeout) still
        raise ``urllib.error.URLError`` / ``OSError`` — there is no
        response to return.
        """
        req = urllib.request.Request(self._base + path, data=body,
                                     headers=headers or {}, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self._timeout) as r:
                return ClientResponse(r.status, r.headers.items(), r.read())
        except urllib.error.HTTPError as exc:
            with exc:
                return ClientResponse(exc.code,
                                      (exc.headers or {}).items()
                                      if exc.headers else [],
                                      exc.read())

    def query_response(self, sql, timeout_ms=None, sleep_ms=None,
                       strict=None, sampled=None):
        """``POST /query`` returning the raw :class:`ClientResponse`.

        ``strict``: override the server's degraded-read policy for this
        request (True: a corrupt chunk fails with 500 instead of a
        flagged partial answer).

        Every request carries a fresh W3C ``traceparent`` header;
        ``sampled=True`` sets its sampled flag, asking the server to
        retain the request's trace unconditionally (fetch it back via
        ``response.trace_id``).
        """
        payload = {"sql": sql}
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if sleep_ms is not None:
            payload["sleep_ms"] = sleep_ms
        if strict is not None:
            payload["strict"] = bool(strict)
        headers = {"Content-Type": "application/json",
                   "traceparent": make_traceparent(sampled=bool(sampled))}
        return self.request("POST", "/query",
                            body=json.dumps(payload).encode("utf-8"),
                            headers=headers)

    def render_response(self, series, width=256, height=64, fmt="json",
                        timeout_ms=None, sleep_ms=None, strict=None,
                        sampled=None):
        """``GET /render`` returning the raw :class:`ClientResponse`.

        ``sampled`` as for :meth:`query_response`.
        """
        params = {"series": series, "width": width, "height": height,
                  "format": fmt}
        if timeout_ms is not None:
            params["timeout_ms"] = timeout_ms
        if sleep_ms is not None:
            params["sleep_ms"] = sleep_ms
        if strict is not None:
            params["strict"] = "1" if strict else "0"
        headers = {"traceparent": make_traceparent(sampled=bool(sampled))}
        return self.request("GET", "/render?"
                            + urllib.parse.urlencode(params),
                            headers=headers)

    # -- typed layer -------------------------------------------------------------------

    def query(self, sql, timeout_ms=None, sampled=None):
        """Run one SQL query.

        Args:
            sql: the M4/aggregate dialect of Appendix A.1, e.g.
                ``SELECT M4(v) FROM s GROUP BY SPANS(100)``.
            timeout_ms: optional server-side deadline; exceeding it
                answers 504 (raised as :class:`ServerError`).
            sampled: ask the server to retain this request's trace
                (fetch it back with :meth:`trace`).

        Returns:
            The decoded response body: ``{"request_id", "columns",
            "rows", "degraded", ...}``.

        Raises:
            ServerOverloadedError: the admission queue was full (503).
            ServerError: any other non-2xx answer (bad SQL, unknown
                series, deadline exceeded, strict-mode corruption).
        """
        return self._checked(self.query_response(
            sql, timeout_ms=timeout_ms, sampled=sampled)).json()

    def render(self, series, width=256, height=64, fmt="json",
               timeout_ms=None, sampled=None):
        """Render a series to pixel columns server-side.

        Args:
            series: series name; its whole time range is rendered.
            width / height: chart dimensions in pixels.
            fmt: ``"json"`` (per-column point dict) or ``"pbm"``
                (portable bitmap bytes).
            timeout_ms: optional server-side deadline.
            sampled: ask the server to retain this request's trace.

        Returns:
            A dict for ``json``, raw bytes for ``pbm``.

        Raises:
            ServerOverloadedError / ServerError: as for :meth:`query`.
        """
        response = self._checked(self.render_response(
            series, width=width, height=height, fmt=fmt,
            timeout_ms=timeout_ms, sampled=sampled))
        return response.body if fmt == "pbm" else response.json()

    def series(self):
        """Registered series with their time ranges."""
        return self._checked(self.request("GET", "/series")) \
            .json()["series"]

    def stats(self, fmt="json"):
        """The server's observability snapshot.

        ``fmt="prometheus"`` returns exposition text (str) instead of
        the JSON document.
        """
        if fmt == "prometheus":
            response = self._checked(
                self.request("GET", "/stats?format=prometheus"))
            return response.body.decode("utf-8")
        return self._checked(self.request("GET", "/stats")).json()

    def healthz(self):
        """The health/load document."""
        return self._checked(self.request("GET", "/healthz")).json()

    def trace_list(self, limit=50):
        """Summaries of retained request traces (newest first)."""
        return self._checked(self.request(
            "GET", "/trace?limit=%d" % int(limit))).json()

    def trace(self, key, fmt="json"):
        """One retained trace by request id or trace id.

        ``fmt="chrome"`` returns the Chrome ``trace_event`` document
        (a dict with ``traceEvents``) instead of the raw span tree.

        Raises :class:`ServerError` (404) when the trace was not
        retained — ask for it with ``sampled=True`` at query time.
        """
        path = "/trace/" + urllib.parse.quote(str(key))
        if fmt == "chrome":
            path += "?format=chrome"
        return self._checked(self.request("GET", path)).json()

    # -- streaming ingest + live -------------------------------------------------------

    def ingest_response(self, series, timestamps, values, tenant=None):
        """``POST /ingest`` returning the raw :class:`ClientResponse`
        (a 429 shed returns, it does not raise — loadgen counts it)."""
        payload = {"series": series,
                   "timestamps": [int(t) for t in timestamps],
                   "values": [float(v) for v in values]}
        if tenant is not None:
            payload["tenant"] = str(tenant)
        return self.request(
            "POST", "/ingest",
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})

    def ingest(self, series, timestamps, values, tenant=None):
        """Submit one batch of points to the streaming ingest queue.

        Returns the ack dict (``accepted``, ``pending_bytes``, ...).

        Raises:
            IngestBackpressureError: the queue or tenant budget was
                full (429); honor ``retry_after`` and resend.
            ServerError: any other non-2xx answer.
        """
        return self._checked(self.ingest_response(
            series, timestamps, values, tenant=tenant)).json()

    def ingest_stream(self, batches):
        """``POST /ingest/stream``: many batches in one NDJSON request.

        ``batches`` is an iterable of ``(series, timestamps, values)``
        triples (or dicts already shaped like an ``/ingest`` body).
        Returns the per-line results document; raises
        :class:`IngestBackpressureError` only when every line shed.
        """
        lines = []
        for batch in batches:
            if isinstance(batch, dict):
                payload = batch
            else:
                series, timestamps, values = batch
                payload = {"series": series,
                           "timestamps": [int(t) for t in timestamps],
                           "values": [float(v) for v in values]}
            lines.append(json.dumps(payload))
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return self._checked(self.request(
            "POST", "/ingest/stream", body=body,
            headers={"Content-Type": "application/x-ndjson"})).json()

    def live_poll(self, series, cursor=0, timeout_ms=None, span=None):
        """``GET /live``: long-poll for changes past ``cursor``.

        Returns ``{"cursor", "ranges", "reset", ...}``; with ``span``
        the document carries grid-aligned M4 ``deltas`` ready to
        splice into a chart on that grid.  Resume the next poll from
        the returned ``cursor``.
        """
        params = {"series": series, "cursor": int(cursor)}
        if timeout_ms is not None:
            params["timeout_ms"] = int(timeout_ms)
        if span is not None:
            params["span"] = int(span)
        return self._checked(self.request(
            "GET", "/live?" + urllib.parse.urlencode(params))).json()

    def live_events(self, series, cursor=0, duration=30.0, span=None):
        """``GET /live?mode=sse``: yield delta documents as they occur.

        A generator over the server-sent event stream; terminates when
        the server ends the stream (after ``duration`` seconds) or the
        connection drops.  Keep-alive comments are filtered out.
        """
        params = {"series": series, "cursor": int(cursor),
                  "duration": float(duration), "mode": "sse"}
        if span is not None:
            params["span"] = int(span)
        req = urllib.request.Request(
            self._base + "/live?" + urllib.parse.urlencode(params),
            headers={"Accept": "text/event-stream"})
        stream_timeout = max(self._timeout, float(duration) + 5.0)
        with urllib.request.urlopen(req, timeout=stream_timeout) as r:
            if r.status != 200:
                raise ServerError("live stream failed", status=r.status)
            for raw in r:
                line = raw.decode("utf-8").strip()
                if line.startswith("data: "):
                    yield json.loads(line[len("data: "):])

    def profile_start(self, interval_ms=None):
        """Start the server's sampling profiler."""
        payload = {"action": "start"}
        if interval_ms is not None:
            payload["interval_ms"] = interval_ms
        return self._checked(self.request(
            "POST", "/profile",
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})).json()

    def profile_stop(self):
        """Stop the profiler; the result's ``collapsed`` field holds
        flamegraph.pl-compatible collapsed stacks."""
        return self._checked(self.request(
            "POST", "/profile",
            body=json.dumps({"action": "stop"}).encode("utf-8"),
            headers={"Content-Type": "application/json"})).json()

    def _checked(self, response):
        if response.ok:
            return response
        try:
            message = response.json().get("error", "unknown error")
        except ValueError:
            message = response.body.decode("utf-8", "replace")
        if response.status == 503:
            raise ServerOverloadedError(
                message,
                retry_after=int(response.headers.get("Retry-After", 1)))
        if response.status == 429:
            raise IngestBackpressureError(
                message,
                retry_after=int(response.headers.get("Retry-After", 1)))
        raise ServerError("%s (HTTP %d)" % (message, response.status),
                          status=response.status)
